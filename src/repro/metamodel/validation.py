"""Schema well-formedness validation.

Operators assume their input schemas are sane; this checker makes the
assumptions explicit and reportable: dangling constraint references,
keys over nullable or missing attributes, arity mismatches in inclusion
dependencies, hierarchy constraints naming unrelated entities,
containment/association ends pointing outside the schema, and
metamodel-construct violations.
"""

from __future__ import annotations

from repro.metamodel.constraints import (
    Covering,
    Disjointness,
    InclusionDependency,
    KeyConstraint,
    NotNull,
)
from repro.metamodel.schema import Schema


def schema_violations(schema: Schema) -> list[str]:
    """All well-formedness problems, as human-readable messages."""
    problems: list[str] = []
    problems.extend(_construct_violations(schema))
    problems.extend(_key_violations(schema))
    problems.extend(_constraint_violations(schema))
    problems.extend(_hierarchy_violations(schema))
    return problems


def validate_schema(schema: Schema) -> None:
    """Raise :class:`~repro.errors.SchemaError` on the first problem."""
    from repro.errors import SchemaError

    problems = schema_violations(schema)
    if problems:
        raise SchemaError(problems[0])


def _construct_violations(schema: Schema) -> list[str]:
    allowed = Schema.METAMODEL_CONSTRUCTS[schema.metamodel]
    illegal = schema.constructs_used() - allowed
    if illegal:
        return [
            f"schema uses constructs {sorted(illegal)} not allowed by "
            f"metamodel {schema.metamodel!r}"
        ]
    return []


def _key_violations(schema: Schema) -> list[str]:
    problems = []
    for entity in schema.entities.values():
        for key_attr in entity.key:
            if not entity.has_attribute(key_attr):
                problems.append(
                    f"entity {entity.name!r}: key attribute {key_attr!r} "
                    "does not exist"
                )
            else:
                attribute = entity.attribute(key_attr)
                if attribute.nullable:
                    problems.append(
                        f"entity {entity.name!r}: key attribute "
                        f"{key_attr!r} is nullable"
                    )
        if entity.parent is not None and entity.key:
            if entity.key != entity.root().key:
                problems.append(
                    f"entity {entity.name!r}: subtype declares its own key "
                    f"{entity.key}; keys belong to the hierarchy root"
                )
    return problems


def _constraint_violations(schema: Schema) -> list[str]:
    problems = []
    for constraint in schema.constraints:
        if isinstance(constraint, KeyConstraint):
            if constraint.entity not in schema.entities:
                problems.append(
                    f"key constraint on unknown entity {constraint.entity!r}"
                )
                continue
            entity = schema.entity(constraint.entity)
            for attr in constraint.attributes:
                if not entity.has_attribute(attr):
                    problems.append(
                        f"key {constraint.describe()}: attribute {attr!r} "
                        "does not exist"
                    )
        elif isinstance(constraint, InclusionDependency):
            for role, entity_name, attrs in (
                ("source", constraint.source, constraint.source_attributes),
                ("target", constraint.target, constraint.target_attributes),
            ):
                if entity_name not in schema.entities:
                    problems.append(
                        f"inclusion {constraint.describe()}: unknown {role} "
                        f"entity {entity_name!r}"
                    )
                    continue
                entity = schema.entity(entity_name)
                for attr in attrs:
                    if not entity.has_attribute(attr):
                        problems.append(
                            f"inclusion {constraint.describe()}: {role} "
                            f"attribute {attr!r} does not exist"
                        )
            if len(constraint.source_attributes) != len(
                constraint.target_attributes
            ):
                problems.append(
                    f"inclusion {constraint.describe()}: arity mismatch"
                )
        elif isinstance(constraint, Disjointness):
            known = [e for e in constraint.entities if e in schema.entities]
            if len(known) != len(constraint.entities):
                problems.append(
                    f"disjointness {constraint.describe()}: unknown entity"
                )
            elif len(constraint.entities) < 2:
                problems.append(
                    f"disjointness {constraint.describe()}: needs ≥2 entities"
                )
        elif isinstance(constraint, Covering):
            if constraint.entity not in schema.entities:
                problems.append(
                    f"covering {constraint.describe()}: unknown entity"
                )
            else:
                parent = schema.entity(constraint.entity)
                for child_name in constraint.covered_by:
                    if child_name not in schema.entities:
                        problems.append(
                            f"covering {constraint.describe()}: unknown "
                            f"entity {child_name!r}"
                        )
                    elif not schema.entity(child_name).is_subtype_of(parent):
                        problems.append(
                            f"covering {constraint.describe()}: "
                            f"{child_name!r} is not a subtype of "
                            f"{constraint.entity!r}"
                        )
        elif isinstance(constraint, NotNull):
            if constraint.entity not in schema.entities or not schema.entity(
                constraint.entity
            ).has_attribute(constraint.attribute):
                problems.append(
                    f"not-null {constraint.describe()}: dangling reference"
                )
    return problems


def _hierarchy_violations(schema: Schema) -> list[str]:
    problems = []
    for entity in schema.entities.values():
        if entity.parent is not None and entity.parent.name not in (
            schema.entities
        ):
            problems.append(
                f"entity {entity.name!r}: parent {entity.parent.name!r} is "
                "not in the schema"
            )
        if entity.parent is not None:
            inherited = set(entity.parent.all_attribute_names())
            shadowed = inherited & set(entity.own_attribute_names())
            if shadowed:
                problems.append(
                    f"entity {entity.name!r}: shadows inherited attributes "
                    f"{sorted(shadowed)}"
                )
        root = entity.root()
        if (entity.children() or entity.parent) and not root.key:
            problems.append(
                f"hierarchy rooted at {root.name!r} has no key; most "
                "operators require one"
            )
    for containment in schema.containments.values():
        for end_name in (containment.parent.name, containment.child.name):
            if end_name not in schema.entities:
                problems.append(
                    f"containment {containment.name!r}: end {end_name!r} "
                    "is not in the schema"
                )
    for association in schema.associations.values():
        for end in association.ends():
            if end.entity.name not in schema.entities:
                problems.append(
                    f"association {association.name!r}: end "
                    f"{end.entity.name!r} is not in the schema"
                )
    return problems
