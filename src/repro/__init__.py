"""repro — a generic model management engine.

A production-quality reproduction of the system envisioned in:

    Philip A. Bernstein, Sergey Melnik.
    "Model Management 2.0: Manipulating Richer Mappings." SIGMOD 2007.

The package implements the full architecture of the paper's Figure 1:

* a **universal metamodel** (:mod:`repro.metamodel`) with importers and
  exporters for relational, ER, nested (XML-like) and object-oriented
  schemas (:mod:`repro.metamodels`);
* **database instances** with labeled nulls (:mod:`repro.instances`);
* a **relational algebra** engine (:mod:`repro.algebra`) and a
  **logic layer** with tgds, second-order tgds and the chase
  (:mod:`repro.logic`);
* **mappings** at three levels of refinement — correspondences,
  constraints, transformations (:mod:`repro.mappings`);
* the **model management operators** — Match, ModelGen, TransGen,
  Compose, Invert/Inverse, Diff, Extract, Merge
  (:mod:`repro.operators`);
* the **mapping runtime** — execution, query answering, update
  propagation, provenance, debugging, notifications, access control,
  integrity checking, peer-to-peer chains, batch loading
  (:mod:`repro.runtime`);
* the **engine facade and metadata repository** (:mod:`repro.core`) and
  the tool layer built on it (:mod:`repro.tools`).

Quickstart::

    from repro import ModelManagementEngine
    engine = ModelManagementEngine()

See ``examples/quickstart.py`` for a complete walk-through.
"""

__version__ = "1.0.0"

from repro.errors import ModelManagementError

__all__ = ["ModelManagementError", "__version__"]


def __getattr__(name):
    # The engine facade pulls in every subsystem; import it lazily so
    # that `import repro` stays cheap for clients that only need one
    # layer.
    if name == "ModelManagementEngine":
        from repro.core.engine import ModelManagementEngine

        return ModelManagementEngine
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
