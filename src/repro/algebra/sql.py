"""SQL rendering of algebra expressions.

The paper's TransGen emits concrete query text (Figure 3 is an Entity
SQL query).  ``to_sql`` renders any algebra tree as nested standard
SQL — good enough to paste into a relational engine for the flat
fragments, and demonstrably faithful for inspection.  Entity
constructors and ``IS OF`` tests are rendered in Entity SQL style.
"""

from __future__ import annotations

import itertools

from repro.algebra import expressions as E
from repro.algebra import scalars as S
from repro.instances.database import TYPE_FIELD


def to_sql(expr: E.RelExpr, pretty: bool = True) -> str:
    """Render ``expr`` as a SQL query string."""
    counter = itertools.count(1)
    text = _render(expr, counter)
    if pretty:
        return text
    return " ".join(text.split())


def _alias(counter) -> str:
    return f"T{next(counter)}"


def _scalar_sql(scalar: S.Scalar) -> str:
    if isinstance(scalar, S.Col):
        if scalar.name == TYPE_FIELD:
            return "TYPE_OF(t)"
        return _quote_identifier(scalar.name)
    if isinstance(scalar, S.Lit):
        return _literal(scalar.value)
    if isinstance(scalar, S._Bool):
        return "TRUE" if scalar.value else "FALSE"
    if isinstance(scalar, S.Func):
        args = ", ".join(_scalar_sql(a) for a in scalar.args)
        return f"{scalar.name.upper()}({args})"
    if isinstance(scalar, S.Arith):
        return f"({_scalar_sql(scalar.left)} {scalar.op} {_scalar_sql(scalar.right)})"
    if isinstance(scalar, S.Comparison):
        op = "<>" if scalar.op == "!=" else scalar.op
        return f"{_scalar_sql(scalar.left)} {op} {_scalar_sql(scalar.right)}"
    if isinstance(scalar, S.And):
        return "(" + " AND ".join(_scalar_sql(p) for p in scalar.operands) + ")"
    if isinstance(scalar, S.Or):
        return "(" + " OR ".join(_scalar_sql(p) for p in scalar.operands) + ")"
    if isinstance(scalar, S.Not):
        return f"NOT ({_scalar_sql(scalar.operand)})"
    if isinstance(scalar, S.IsNull):
        verb = "IS NOT NULL" if scalar.negated else "IS NULL"
        return f"{_scalar_sql(scalar.operand)} {verb}"
    if isinstance(scalar, S.IsOf):
        only = "ONLY " if scalar.only else ""
        return f"t IS OF ({only}{scalar.entity})"
    if isinstance(scalar, S.In):
        values = ", ".join(
            _literal(v) for v in sorted(scalar.values, key=repr)
        )
        return f"{_scalar_sql(scalar.operand)} IN ({values})"
    if isinstance(scalar, S.Case):
        parts = [
            f"WHEN {_scalar_sql(p)} THEN {_scalar_sql(v)}" for p, v in scalar.whens
        ]
        return (
            "CASE " + " ".join(parts) + f" ELSE {_scalar_sql(scalar.default)} END"
        )
    if isinstance(scalar, E._JoinEq):
        return (
            f"L.{_quote_identifier(scalar.left_col)} = "
            f"R.{_quote_identifier(scalar.right_col)}"
        )
    raise TypeError(f"cannot render scalar {type(scalar).__name__}")


def _literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)


def _quote_identifier(name: str) -> str:
    if name.isidentifier():
        return name
    return '"' + name.replace('"', '""') + '"'


def _render(expr: E.RelExpr, counter) -> str:
    if isinstance(expr, E.Scan):
        return f"SELECT * FROM {_quote_identifier(expr.relation)}"
    if isinstance(expr, E.EntityScan):
        only = "ONLY " if expr.only else ""
        return (
            f"SELECT t.* FROM {_quote_identifier(expr.entity)} AS t "
            f"WHERE t IS OF ({only}{expr.entity})"
        )
    if isinstance(expr, E.Values):
        if not expr.rows:
            return "SELECT NULL WHERE FALSE"
        columns = sorted({k for row in expr.rows for k in row})
        tuples = ", ".join(
            "(" + ", ".join(_literal(row.get(c)) for c in columns) + ")"
            for row in expr.rows
        )
        column_list = ", ".join(_quote_identifier(c) for c in columns)
        return f"SELECT * FROM (VALUES {tuples}) AS v({column_list})"
    if isinstance(expr, E.Select):
        alias = _alias(counter)
        return (
            f"SELECT * FROM ({_render(expr.input, counter)}) AS {alias}\n"
            f"WHERE {_scalar_sql(expr.predicate)}"
        )
    if isinstance(expr, E.Project):
        alias = _alias(counter)
        outputs = ", ".join(
            f"{_scalar_sql(s)} AS {_quote_identifier(name)}"
            for name, s in expr.outputs
        )
        return f"SELECT {outputs} FROM ({_render(expr.input, counter)}) AS {alias}"
    if isinstance(expr, E.Extend):
        alias = _alias(counter)
        return (
            f"SELECT *, {_scalar_sql(expr.scalar)} AS "
            f"{_quote_identifier(expr.name)} "
            f"FROM ({_render(expr.input, counter)}) AS {alias}"
        )
    if isinstance(expr, E.Join):
        left_alias, right_alias = "L", "R"
        join_kw = "LEFT OUTER JOIN" if expr.kind == "left" else "INNER JOIN"
        condition = _scalar_sql(expr.predicate)
        return (
            f"SELECT * FROM ({_render(expr.left, counter)}) AS {left_alias}\n"
            f"{join_kw} ({_render(expr.right, counter)}) AS {right_alias}\n"
            f"ON {condition}"
        )
    if isinstance(expr, E.UnionAll):
        return (
            f"({_render(expr.left, counter)})\nUNION ALL\n"
            f"({_render(expr.right, counter)})"
        )
    if isinstance(expr, E.Difference):
        return (
            f"({_render(expr.left, counter)})\nEXCEPT\n"
            f"({_render(expr.right, counter)})"
        )
    if isinstance(expr, E.Distinct):
        alias = _alias(counter)
        return (
            f"SELECT DISTINCT * FROM ({_render(expr.input, counter)}) AS {alias}"
        )
    if isinstance(expr, E.Rename):
        alias = _alias(counter)
        # Without schema info we emit a star-with-renames comment form.
        renames = ", ".join(
            f"{_quote_identifier(old)} AS {_quote_identifier(new)}"
            for old, new in sorted(expr.mapping.items())
        )
        return (
            f"SELECT {renames} FROM ({_render(expr.input, counter)}) AS {alias}"
        )
    if isinstance(expr, E.Aggregate):
        alias = _alias(counter)
        selects = [
            _quote_identifier(c) for c in expr.group_by
        ]
        for name, func, scalar in expr.aggregations:
            inner = "*" if scalar is None else _scalar_sql(scalar)
            selects.append(f"{func.upper()}({inner}) AS {_quote_identifier(name)}")
        sql = (
            f"SELECT {', '.join(selects)} "
            f"FROM ({_render(expr.input, counter)}) AS {alias}"
        )
        if expr.group_by:
            sql += " GROUP BY " + ", ".join(
                _quote_identifier(c) for c in expr.group_by
            )
        return sql
    if isinstance(expr, E.Sort):
        alias = _alias(counter)
        keys = ", ".join(
            f"{_quote_identifier(k[1:])} DESC" if k.startswith("-")
            else _quote_identifier(k)
            for k in expr.keys
        )
        return (
            f"SELECT * FROM ({_render(expr.input, counter)}) AS {alias} "
            f"ORDER BY {keys}"
        )
    raise TypeError(f"cannot render {type(expr).__name__}")
