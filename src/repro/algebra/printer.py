"""Pretty-printing of algebra expressions.

Two renderings: a compact Greek-letter algebra notation (``to_text``,
used in logs, reprs and the figure reproductions, matching the paper's
Figure 4 notation like ``π_{EID,City}(Empl ⋈ Addr)``) and, in
:mod:`repro.algebra.sql`, a SQL rendering for the Figure 3 view.
"""

from __future__ import annotations

from repro.algebra import expressions as E
from repro.algebra import scalars as S


def scalar_text(scalar: S.Scalar) -> str:
    """Render a scalar expression as compact text."""
    if isinstance(scalar, S.Col):
        return scalar.name
    if isinstance(scalar, S.Lit):
        return repr(scalar.value)
    if isinstance(scalar, S._Bool):
        return "TRUE" if scalar.value else "FALSE"
    if isinstance(scalar, S.Func):
        args = ", ".join(scalar_text(a) for a in scalar.args)
        return f"{scalar.name}({args})"
    if isinstance(scalar, S.Arith):
        return (
            f"({scalar_text(scalar.left)} {scalar.op} "
            f"{scalar_text(scalar.right)})"
        )
    if isinstance(scalar, S.Comparison):
        return (
            f"{scalar_text(scalar.left)} {scalar.op} "
            f"{scalar_text(scalar.right)}"
        )
    if isinstance(scalar, S.And):
        return "(" + " AND ".join(scalar_text(p) for p in scalar.operands) + ")"
    if isinstance(scalar, S.Or):
        return "(" + " OR ".join(scalar_text(p) for p in scalar.operands) + ")"
    if isinstance(scalar, S.Not):
        return f"NOT({scalar_text(scalar.operand)})"
    if isinstance(scalar, S.IsNull):
        verb = "IS NOT NULL" if scalar.negated else "IS NULL"
        return f"{scalar_text(scalar.operand)} {verb}"
    if isinstance(scalar, S.IsOf):
        only = "ONLY " if scalar.only else ""
        return f"IS OF ({only}{scalar.entity})"
    if isinstance(scalar, S.In):
        values = ", ".join(repr(v) for v in sorted(scalar.values, key=repr))
        return f"{scalar_text(scalar.operand)} IN ({values})"
    if isinstance(scalar, S.Case):
        parts = [
            f"WHEN {scalar_text(p)} THEN {scalar_text(v)}"
            for p, v in scalar.whens
        ]
        return "CASE " + " ".join(parts) + f" ELSE {scalar_text(scalar.default)} END"
    if isinstance(scalar, E._JoinEq):
        return f"{scalar.left_col} = {scalar.right_col}"
    return f"<{type(scalar).__name__}>"


def to_text(expr: E.RelExpr) -> str:
    """Render a relational expression in algebra notation."""
    if isinstance(expr, E.Scan):
        return expr.relation
    if isinstance(expr, E.EntityScan):
        suffix = "!" if expr.only else ""
        return f"{expr.entity}{suffix}"
    if isinstance(expr, E.Values):
        return f"VALUES[{len(expr.rows)}]"
    if isinstance(expr, E.Select):
        return f"σ[{scalar_text(expr.predicate)}]({to_text(expr.input)})"
    if isinstance(expr, E.Project):
        cols = ", ".join(
            name if isinstance(s, S.Col) and s.name == name
            else f"{name}:={scalar_text(s)}"
            for name, s in expr.outputs
        )
        return f"π[{cols}]({to_text(expr.input)})"
    if isinstance(expr, E.Extend):
        return (
            f"ε[{expr.name}:={scalar_text(expr.scalar)}]({to_text(expr.input)})"
        )
    if isinstance(expr, E.Join):
        symbol = "⟕" if expr.kind == "left" else "⋈"
        condition = scalar_text(expr.predicate)
        return (
            f"({to_text(expr.left)} {symbol}[{condition}] {to_text(expr.right)})"
        )
    if isinstance(expr, E.UnionAll):
        return f"({to_text(expr.left)} ∪ {to_text(expr.right)})"
    if isinstance(expr, E.Difference):
        return f"({to_text(expr.left)} − {to_text(expr.right)})"
    if isinstance(expr, E.Distinct):
        return f"δ({to_text(expr.input)})"
    if isinstance(expr, E.Rename):
        pairs = ", ".join(f"{o}→{n}" for o, n in sorted(expr.mapping.items()))
        return f"ρ[{pairs}]({to_text(expr.input)})"
    if isinstance(expr, E.Aggregate):
        groups = ", ".join(expr.group_by)
        aggs = ", ".join(
            f"{name}:={func}({scalar_text(s) if s is not None else '*'})"
            for name, func, s in expr.aggregations
        )
        return f"γ[{groups}; {aggs}]({to_text(expr.input)})"
    if isinstance(expr, E.Sort):
        return f"τ[{', '.join(expr.keys)}]({to_text(expr.input)})"
    return f"<{type(expr).__name__}>"


def node_label(expr: E.RelExpr, max_width: int = 48) -> str:
    """A one-line label for a single plan node (no recursion into
    inputs) — the operator head of :func:`to_text`, truncated.  Used
    by the compiler's plan registry and the EXPLAIN renderings."""
    if isinstance(expr, E.Scan):
        label = f"Scan({expr.relation})"
    elif isinstance(expr, E.EntityScan):
        only = ", only" if expr.only else ""
        label = f"EntityScan({expr.entity}{only})"
    elif isinstance(expr, E.Values):
        label = f"Values[{len(expr.rows)}]"
    elif isinstance(expr, E.Select):
        label = f"σ[{scalar_text(expr.predicate)}]"
    elif isinstance(expr, E.Project):
        cols = ", ".join(
            name if isinstance(s, S.Col) and s.name == name
            else f"{name}:={scalar_text(s)}"
            for name, s in expr.outputs
        )
        label = f"π[{cols}]"
    elif isinstance(expr, E.Extend):
        label = f"ε[{expr.name}:={scalar_text(expr.scalar)}]"
    elif isinstance(expr, E.Join):
        symbol = "⟕" if expr.kind == "left" else "⋈"
        label = f"{symbol}[{scalar_text(expr.predicate)}]"
    elif isinstance(expr, E.UnionAll):
        label = "∪"
    elif isinstance(expr, E.Difference):
        label = "−"
    elif isinstance(expr, E.Distinct):
        label = "δ"
    elif isinstance(expr, E.Rename):
        pairs = ", ".join(f"{o}→{n}" for o, n in sorted(expr.mapping.items()))
        label = f"ρ[{pairs}]"
    elif isinstance(expr, E.Aggregate):
        groups = ", ".join(expr.group_by)
        aggs = ", ".join(
            f"{name}:={func}({scalar_text(s) if s is not None else '*'})"
            for name, func, s in expr.aggregations
        )
        label = f"γ[{groups}; {aggs}]"
    elif isinstance(expr, E.Sort):
        label = f"τ[{', '.join(expr.keys)}]"
    else:
        label = f"<{type(expr).__name__}>"
    if len(label) > max_width:
        label = label[: max_width - 1] + "…"
    return label


def render_plan(
    nodes,
    root_id: int,
    profile=None,
    estimates=None,
    divergence_factor=None,
) -> str:
    """Render a compiled plan's node tree (EXPLAIN), optionally
    annotated with a :class:`~repro.algebra.compiler.PlanProfile`
    (EXPLAIN ANALYZE) and/or per-node cardinality ``estimates``
    (``est_rows`` indexed by node id, from
    :func:`repro.algebra.estimate.annotate_plan`).  When both are
    given, each node also shows its estimate↔actual divergence ratio,
    with ``⚠`` marking nodes at or beyond ``divergence_factor``.

    ``nodes`` is any sequence of objects with ``node_id`` / ``label`` /
    ``strategy`` / ``children`` / ``shared`` attributes — duck-typed so
    this module never imports the compiler (the compiler imports us).
    Shared (CSE) subtrees are expanded once; later references render as
    ``↻ see #n``."""
    self_ms = profile.self_time_ms() if profile is not None else None
    lines: list[str] = []
    expanded: set[int] = set()

    def emit(node_id: int, prefix: str, tail: str) -> None:
        node = nodes[node_id]
        connector = prefix + tail
        if node_id in expanded:
            lines.append(f"{connector}↻ see #{node_id} [{node.label}]")
            return
        expanded.add(node_id)
        mark = " ⊛" if node.shared else ""
        head = f"{connector}#{node_id} {node.label}  ({node.strategy}){mark}"
        est = estimates[node_id] if estimates is not None else None
        if est is not None:
            head += f"  est={est:.0f}"
        if profile is not None:
            actual = profile.rows_out(node_id)
            head += (
                f"  rows={actual}"
                f" calls={profile.calls(node_id)}"
                f" time={profile.time_ms(node_id):.2f}ms"
                f" self={self_ms[node_id]:.2f}ms"
            )
            if est is not None:
                # Same smoothing as estimate.divergence_ratio (not
                # imported here — the compiler imports this module).
                over = (est + 1.0) / (actual + 1.0)
                ratio = max(over, 1.0 / over)
                head += f" div=×{ratio:.1f}"
                if divergence_factor is not None and ratio >= divergence_factor:
                    head += " ⚠"
            hits = profile.memo_hits(node_id)
            if hits:
                head += f" memo_hits={hits}"
        lines.append(head)
        if tail == "":
            child_prefix = prefix
        elif tail == "└─ ":
            child_prefix = prefix + "   "
        else:
            child_prefix = prefix + "│  "
        for position, child in enumerate(node.children):
            last = position == len(node.children) - 1
            emit(child, child_prefix, "└─ " if last else "├─ ")

    emit(root_id, "", "")
    return "\n".join(lines)
