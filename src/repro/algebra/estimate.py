"""Cardinality estimation over relational plans.

Classical selectivity rules evaluated against the per-relation
statistics service (:mod:`repro.observability.stats`, maintained by
:meth:`repro.instances.database.Instance.relation_stats`): scans read
observed row counts, selections multiply in predicate selectivities
(exact frequencies for equality against literals, min/max
interpolation for ranges, null fractions for ``IS NULL``), and
equi-joins divide by the larger distinct count per join pair.

Plans are compiled once and cached *instance-independently*, so
estimates cannot be fixed at lowering time: every ``PlanNode`` carries
the ``RelExpr`` it was lowered from (``node.expr``) and
:func:`annotate_plan` walks those anchors against a concrete instance,
refreshing ``node.est_rows`` per EXPLAIN / EXPLAIN ANALYZE call.  CSE
shares subtrees between parents, so the walk memoizes by expression
identity — a shared subtree is estimated once.

:func:`divergence_ratio` and :func:`worst_divergent` compare estimates
with a ``PlanProfile``'s actual row counts; nodes beyond
``ESTIMATION.divergence_factor`` are the feedback hook the PlanCache
evict/refingerprint loop (ROADMAP: cost-based optimization) will key
on.
"""

from __future__ import annotations

import weakref
from typing import Optional

from repro.algebra import expressions as E
from repro.algebra import scalars as S
from repro.algebra.compiler import PlanNode, equality_pairs
from repro.observability.stats import ESTIMATION, RelationStats
from repro.instances.database import TYPE_FIELD

#: Fallback selectivity for predicates the rules can't score.
DEFAULT_SELECTIVITY = 1.0 / 3.0
#: Fallback selectivity for equality tests without usable statistics.
DEFAULT_EQ_SELECTIVITY = 0.1


class _ColRef:
    """A column's statistics plus the base-relation row count its
    frequency table was measured over (selectivities are fractions of
    the *base* rows, applied multiplicatively as estimates shrink)."""

    __slots__ = ("stats", "base_rows")

    def __init__(self, stats, base_rows: int) -> None:
        self.stats = stats
        self.base_rows = base_rows


class _Est:
    """Estimated row count and the column environment flowing out of
    one expression node."""

    __slots__ = ("rows", "cols")

    def __init__(self, rows: float, cols: dict[str, _ColRef]) -> None:
        self.rows = max(0.0, rows)
        self.cols = cols


def _clamp(fraction: float) -> float:
    return min(1.0, max(0.0, fraction))


def _from_relation_stats(rs: RelationStats) -> _Est:
    cols = {
        name: _ColRef(stats, rs.rows) for name, stats in rs.columns.items()
    }
    return _Est(float(rs.rows), cols)


def _distinct(est: _Est, name: str) -> float:
    """Distinct-count guess for ``name``, capped at the current row
    estimate; unknown columns assume a unique key (the conservative
    choice for join denominators)."""
    ref = est.cols.get(name)
    if ref is None:
        return max(est.rows, 1.0)
    return max(1.0, min(float(ref.stats.distinct), max(est.rows, 1.0)))


# ----------------------------------------------------------------------
# predicate selectivity
# ----------------------------------------------------------------------
def _entity_member_fraction(
    est: _Est, entity: str, only: bool, schema
) -> Optional[float]:
    """Fraction of rows whose ``$type`` designates (a subtype of)
    ``entity`` — shared by ``IsOf`` predicates and ``EntityScan``."""
    if schema is None:
        return None
    try:
        node = schema.entity(entity)
        root = node.root().name
        members = {node.name} | {d.name for d in node.descendants()}
    except Exception:
        return None
    ref = est.cols.get(TYPE_FIELD)
    base = ref.base_rows if ref is not None else est.rows
    if base <= 0:
        return 0.0
    if ref is None:
        # No ``$type`` column observed anywhere: every row defaults to
        # the root type.
        if only:
            return 0.0
        return 1.0 if root in members else 0.0
    if only:
        matched = float(ref.stats.frequency(entity) or 0)
    else:
        matched = float(
            sum(ref.stats.frequency(m) or 0 for m in members)
        )
        if root in members:
            # Rows lacking the column default to the root type.
            matched += max(0, base - ref.stats.present)
    return _clamp(matched / base)


def _comparison_selectivity(pred: S.Comparison, est: _Est) -> float:
    op, left, right = pred.op, pred.left, pred.right
    if isinstance(left, S.Lit) and isinstance(right, S.Col):
        flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        left, right = right, left
        op = flip.get(op, op)
    if isinstance(left, S.Col) and isinstance(right, S.Lit):
        ref = est.cols.get(left.name)
        stats = ref.stats if ref is not None else None
        if op in ("=", "!="):
            if ref is None or ref.base_rows <= 0:
                eq = DEFAULT_EQ_SELECTIVITY
            else:
                freq = stats.frequency(right.value)
                if freq is None:
                    eq = DEFAULT_EQ_SELECTIVITY
                else:
                    eq = _clamp(freq / ref.base_rows)
            return eq if op == "=" else _clamp(1.0 - eq)
        if op in ("<", "<=", ">", ">="):
            value = right.value
            if (
                ref is not None
                and ref.base_rows > 0
                and stats.kind == "num"
                and stats.ordered
                and isinstance(value, (int, float))
                and not isinstance(value, bool)
            ):
                lo, hi = stats.lo, stats.hi
                if hi == lo:
                    holds = {
                        "<": lo < value,
                        "<=": lo <= value,
                        ">": lo > value,
                        ">=": lo >= value,
                    }[op]
                    frac = 1.0 if holds else 0.0
                else:
                    below = _clamp((value - lo) / (hi - lo))
                    frac = below if op in ("<", "<=") else 1.0 - below
                # Null / absent cells never satisfy a comparison.
                return _clamp(frac * stats.non_null / ref.base_rows)
            return DEFAULT_SELECTIVITY
    if isinstance(left, S.Col) and isinstance(right, S.Col):
        if op == "=":
            d = max(_distinct(est, left.name), _distinct(est, right.name))
            return _clamp(1.0 / d)
    return DEFAULT_SELECTIVITY


def _selectivity(pred, est: _Est, schema) -> float:
    """Estimated fraction of ``est``'s rows satisfying ``pred``."""
    if isinstance(pred, S._Bool):
        return 1.0 if pred.value else 0.0
    if isinstance(pred, S.And):
        out = 1.0
        for operand in pred.operands:
            out *= _selectivity(operand, est, schema)
        return out
    if isinstance(pred, S.Or):
        miss = 1.0
        for operand in pred.operands:
            miss *= 1.0 - _selectivity(operand, est, schema)
        return _clamp(1.0 - miss)
    if isinstance(pred, S.Not):
        return _clamp(1.0 - _selectivity(pred.operand, est, schema))
    if isinstance(pred, S.IsNull):
        fraction = None
        if isinstance(pred.operand, S.Col):
            ref = est.cols.get(pred.operand.name)
            if ref is not None and ref.base_rows > 0:
                fraction = _clamp(
                    (ref.base_rows - ref.stats.non_null) / ref.base_rows
                )
            elif ref is None and est.cols:
                # Statistics exist but never saw this column: always
                # absent, hence always null.
                fraction = 1.0
        if fraction is None:
            fraction = DEFAULT_EQ_SELECTIVITY
        return _clamp(1.0 - fraction) if pred.negated else fraction
    if isinstance(pred, S.Comparison):
        return _clamp(_comparison_selectivity(pred, est))
    if isinstance(pred, S.In):
        if isinstance(pred.operand, S.Col):
            ref = est.cols.get(pred.operand.name)
            if ref is not None and ref.base_rows > 0 and ref.stats.present:
                matched = sum(
                    ref.stats.frequency(v) or 0 for v in pred.values
                )
                return _clamp(matched / ref.base_rows)
        return _clamp(DEFAULT_EQ_SELECTIVITY * len(pred.values))
    if isinstance(pred, S.IsOf):
        fraction = _entity_member_fraction(
            est, pred.entity, pred.only, schema
        )
        return fraction if fraction is not None else DEFAULT_SELECTIVITY
    pairs = equality_pairs(pred)
    if pairs:
        out = 1.0
        for left_col, right_col, _ in pairs:
            d = max(_distinct(est, left_col), _distinct(est, right_col))
            out *= 1.0 / d
        return _clamp(out)
    return DEFAULT_SELECTIVITY


# ----------------------------------------------------------------------
# expression estimates
# ----------------------------------------------------------------------
def _join_estimate(expr: E.Join, left: _Est, right: _Est, schema) -> _Est:
    pairs = equality_pairs(expr.predicate)
    cross = left.rows * right.rows
    if pairs is None:
        rows = cross * _selectivity(expr.predicate, left, schema)
    elif not pairs:
        rows = cross
    else:
        rows = cross
        for left_col, right_col, _ in pairs:
            rows /= max(
                _distinct(left, left_col), _distinct(right, right_col)
            )
    if expr.kind == "left":
        rows = max(rows, left.rows)
    cols = dict(left.cols)
    for name, ref in right.cols.items():
        if name in left.cols:
            if expr.right_prefix:
                cols[f"{expr.right_prefix}.{name}"] = ref
        else:
            cols[name] = ref
    return _Est(rows, cols)


def _distinct_groups(est: _Est, names) -> float:
    """Estimated group count for a set of grouping columns: product of
    distinct counts, capped at the input rows."""
    if est.rows <= 0:
        return 0.0
    product = 1.0
    for name in names:
        product *= _distinct(est, name)
        if product >= est.rows:
            return est.rows
    return max(1.0, min(product, est.rows))


def _estimate(expr: E.RelExpr, instance, schema, memo: dict) -> _Est:
    key = id(expr)
    hit = memo.get(key)
    if hit is not None:
        return hit
    est = _estimate_uncached(expr, instance, schema, memo)
    memo[key] = est
    return est


def _estimate_uncached(
    expr: E.RelExpr, instance, schema, memo: dict
) -> _Est:
    if isinstance(expr, E.Scan):
        return _from_relation_stats(instance.relation_stats(expr.relation))
    if isinstance(expr, E.EntityScan):
        if schema is None and getattr(instance, "schema", None) is not None:
            schema = instance.schema
        if schema is None:
            return _Est(0.0, {})
        try:
            root = schema.entity(expr.entity).root().name
        except Exception:
            return _Est(0.0, {})
        base = _from_relation_stats(instance.relation_stats(root))
        fraction = _entity_member_fraction(
            base, expr.entity, expr.only, schema
        )
        if fraction is None:
            fraction = 1.0
        return _Est(base.rows * fraction, base.cols)
    if isinstance(expr, E.Values):
        return _from_relation_stats(
            RelationStats.from_rows("<values>", expr.rows)
        )
    if isinstance(expr, E.Select):
        inner = _estimate(expr.input, instance, schema, memo)
        fraction = _clamp(_selectivity(expr.predicate, inner, schema))
        return _Est(inner.rows * fraction, inner.cols)
    if isinstance(expr, E.Project):
        inner = _estimate(expr.input, instance, schema, memo)
        cols = {}
        for name, scalar in expr.outputs:
            if isinstance(scalar, S.Col):
                ref = inner.cols.get(scalar.name)
                if ref is not None:
                    cols[name] = ref
        return _Est(inner.rows, cols)
    if isinstance(expr, E.Extend):
        inner = _estimate(expr.input, instance, schema, memo)
        cols = dict(inner.cols)
        cols.pop(expr.name, None)
        if isinstance(expr.scalar, S.Col):
            ref = inner.cols.get(expr.scalar.name)
            if ref is not None:
                cols[expr.name] = ref
        return _Est(inner.rows, cols)
    if isinstance(expr, E.Rename):
        inner = _estimate(expr.input, instance, schema, memo)
        mapping = expr.mapping
        cols = {
            mapping.get(name, name): ref
            for name, ref in inner.cols.items()
        }
        return _Est(inner.rows, cols)
    if isinstance(expr, E.Sort):
        return _estimate(expr.input, instance, schema, memo)
    if isinstance(expr, E.Join):
        left = _estimate(expr.left, instance, schema, memo)
        right = _estimate(expr.right, instance, schema, memo)
        return _join_estimate(expr, left, right, schema)
    if isinstance(expr, E.UnionAll):
        left = _estimate(expr.left, instance, schema, memo)
        right = _estimate(expr.right, instance, schema, memo)
        cols = {
            name: ref
            for name, ref in left.cols.items()
            if name in right.cols
        }
        return _Est(left.rows + right.rows, cols)
    if isinstance(expr, E.Difference):
        left = _estimate(expr.left, instance, schema, memo)
        _estimate(expr.right, instance, schema, memo)
        return _Est(left.rows, left.cols)
    if isinstance(expr, E.Distinct):
        inner = _estimate(expr.input, instance, schema, memo)
        if not inner.cols:
            return _Est(inner.rows, inner.cols)
        return _Est(_distinct_groups(inner, inner.cols), inner.cols)
    if isinstance(expr, E.Aggregate):
        inner = _estimate(expr.input, instance, schema, memo)
        cols = {
            name: ref
            for name, ref in inner.cols.items()
            if name in expr.group_by
        }
        if not expr.group_by:
            # Ungrouped aggregates emit exactly one row, even on empty
            # input.
            return _Est(1.0, cols)
        return _Est(_distinct_groups(inner, expr.group_by), cols)
    # Unknown node: no estimate basis — report empty environment and
    # zero rows rather than guessing.
    return _Est(0.0, {})


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------
class Estimator:
    """A reusable estimation context for the cost-based optimizer.

    Wraps one ``(instance, schema)`` pair with a memo that persists
    across calls, so the join-order search can score thousands of
    candidate trees without re-estimating shared subtrees, and applies
    *actuals-corrected* cardinalities: ``corrections`` maps subtree
    fingerprints to row counts observed by a profiled execution (the
    adaptive re-optimization feedback of
    :meth:`repro.algebra.plan_cache.PlanCache.note_divergence`).  A
    corrected subtree overrides its statistics-derived estimate, and
    the override propagates into every parent estimated afterwards.

    The memo is keyed by expression identity, so every estimated root
    is pinned for the estimator's lifetime — otherwise a discarded
    candidate's ``id`` could be recycled and alias a stale entry.
    """

    __slots__ = ("instance", "schema", "corrections", "_memo", "_fps",
                 "_pins")

    def __init__(self, instance, schema=None, corrections=None) -> None:
        self.instance = instance
        self.schema = schema
        self.corrections = dict(corrections) if corrections else {}
        self._memo: dict[int, _Est] = {}
        self._fps: dict[int, str] = {}
        self._pins: list[E.RelExpr] = []

    def fingerprint(self, expr: E.RelExpr) -> str:
        fp = self._fps.get(id(expr))
        if fp is None:
            fp = expr.fingerprint()
            self._fps[id(expr)] = fp
        return fp

    def est(self, expr: E.RelExpr) -> _Est:
        self._pins.append(expr)
        if self.corrections:
            self._correct(expr)
        return _estimate(expr, self.instance, self.schema, self._memo)

    def rows(self, expr: E.RelExpr) -> float:
        """Estimated output rows (corrections applied)."""
        return self.est(expr).rows

    def _correct(self, expr: E.RelExpr) -> None:
        """Post-order pass seeding the memo with actuals-corrected
        estimates, children first so parents see corrected inputs."""
        if id(expr) in self._memo:
            return
        for child in expr.inputs():
            self._correct(child)
        est = _estimate(expr, self.instance, self.schema, self._memo)
        actual = self.corrections.get(self.fingerprint(expr))
        if actual is not None and est.rows != actual:
            self._memo[id(expr)] = _Est(float(actual), est.cols)


def estimate_expr(
    expr: E.RelExpr, instance, schema=None
) -> float:
    """Estimated output rows for one expression tree."""
    return _estimate(expr, instance, schema, {}).rows


def _annotation_key(plan, instance) -> Optional[tuple]:
    """A cheap validity key for memoized plan annotations: the
    instance identity plus its dirty epoch and each base relation's
    row-list identity and length.  Any mutation path — append, delete,
    list replacement, ``mark_dirty`` — changes at least one component.
    Returns ``None`` for instance-likes without the expected shape
    (no memoization then)."""
    relations = getattr(instance, "relations", None)
    epoch = getattr(instance, "_dirty_epoch", None)
    if not isinstance(relations, dict) or epoch is None:
        return None
    return (
        epoch,
        tuple(
            (name, id(rows), len(rows))
            for name, rows in relations.items()
        ),
    )


def annotate_plan(
    plan, instance, schema=None
) -> list[Optional[float]]:
    """Refresh ``node.est_rows`` on every node of a compiled plan
    against ``instance`` and return the estimates indexed by node id.

    Estimates are instance-dependent while plans are cached
    instance-independently, so they cannot be fixed at lowering time.
    The walk (memoized per shared subtree) runs once per (instance
    state, plan) pair: the result is cached on the plan keyed by the
    instance's identity, dirty epoch and per-relation row-list
    identity/length, so the warm query path — same plan, unchanged
    data, one annotation per query — pays a key comparison instead of
    a full re-estimation.  Nodes lowered without an expression anchor
    keep ``est_rows = None``.
    """
    key = _annotation_key(plan, instance)
    memoized = getattr(plan, "_annotate_memo", None)
    if (
        key is not None
        and memoized is not None
        and memoized[0]() is instance
        and memoized[1] == key
    ):
        estimates = memoized[2]
        for node, est in zip(plan.nodes, estimates):
            node.est_rows = est
        return list(estimates)
    memo: dict[int, _Est] = {}
    estimates = []
    for node in plan.nodes:
        if node.expr is None:
            node.est_rows = None
        else:
            node.est_rows = _estimate(
                node.expr, instance, schema, memo
            ).rows
        estimates.append(node.est_rows)
    if key is not None:
        try:
            plan._annotate_memo = (
                weakref.ref(instance), key, list(estimates)
            )
        except TypeError:
            pass                    # non-weakrefable instance-like
    return estimates


def divergence_ratio(est: float, actual: int) -> float:
    """Symmetric estimate↔actual divergence, ≥ 1.0; the +1 smoothing
    keeps zero-row estimates comparable."""
    over = (est + 1.0) / (actual + 1.0)
    return max(over, 1.0 / over)


def worst_divergent(
    nodes: list[PlanNode],
    profile,
    factor: Optional[float] = None,
) -> Optional[dict]:
    """The node whose estimate diverges worst from the profiled actual
    rows, as a summary dict, or None when nothing is comparable.

    ``flagged`` marks ratios at or beyond ``factor`` (default
    :data:`ESTIMATION.divergence_factor`) — the re-optimization
    feedback signal.
    """
    if factor is None:
        factor = ESTIMATION.divergence_factor
    worst: Optional[dict] = None
    for node in nodes:
        est = node.est_rows
        if est is None:
            continue
        actual = profile.rows_out(node.node_id)
        ratio = divergence_ratio(est, actual)
        if worst is None or ratio > worst["ratio"]:
            worst = {
                "node_id": node.node_id,
                "label": node.label,
                "est_rows": est,
                "actual_rows": actual,
                "ratio": ratio,
                "flagged": ratio >= factor,
            }
    return worst
