"""Relational algebra expression trees.

These are the transformations that TransGen produces and the mapping
runtime evaluates.  The node set is exactly what the paper's generated
views need: the Figure 3 query is a union-all of a left-outer-join
branch and a plain scan branch, with extends computing the ``_fromN``
discriminators and a case-projection constructing typed entities.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional, Sequence

from repro.algebra.scalars import (
    And,
    Col,
    Comparison,
    Predicate,
    Scalar,
    TRUE,
    conjunction,
    eq,
)
from repro.errors import EvaluationError
from repro.instances.database import Row


def _fingerprint_walk(obj, emit) -> None:
    """Feed a canonical token stream for ``obj`` into ``emit``.

    The stream is derived from the same ``_key()`` structure that
    drives ``__eq__``/``__hash__``, so two expressions that compare
    equal produce the same stream.  ``Func`` nodes contribute only
    their declared name (matching ``Func.__eq__``): the cache contract
    is that a function's name identifies its semantics.
    """
    if isinstance(obj, (RelExpr, Scalar)):
        emit(f"({type(obj).__name__}".encode())
        _fingerprint_walk(obj._key(), emit)
        emit(b")")
    elif isinstance(obj, (tuple, list)):
        emit(b"[")
        for part in obj:
            _fingerprint_walk(part, emit)
            emit(b",")
        emit(b"]")
    elif isinstance(obj, (set, frozenset)):
        # Order-insensitive collections get a canonical order.
        emit(b"{")
        for token in sorted(_collect_tokens(part) for part in obj):
            emit(token)
            emit(b",")
        emit(b"}")
    elif isinstance(obj, dict):
        emit(b"<")
        for key in sorted(obj, key=repr):
            emit(f"{key!r}:".encode())
            _fingerprint_walk(obj[key], emit)
            emit(b";")
        emit(b">")
    else:
        emit(f"{type(obj).__name__}:{obj!r}|".encode())


def _collect_tokens(obj) -> bytes:
    chunks: list[bytes] = []
    _fingerprint_walk(obj, chunks.append)
    return b"".join(chunks)


class RelExpr:
    """Base class of relational expressions."""

    def inputs(self) -> tuple["RelExpr", ...]:
        return ()

    def fingerprint(self) -> str:
        """A structural fingerprint of this expression tree.

        Equal expressions (per ``__eq__``) have equal fingerprints; the
        digest is the plan-cache key, so it must not depend on object
        identity or construction order of unordered parts.

        Memoized per instance: expressions are value objects (hashable,
        compared structurally, never mutated after construction), and
        the warm query path fingerprints the same tree on every call —
        the walk would otherwise dominate the enabled-observability
        overhead budget.
        """
        cached = getattr(self, "_fingerprint_memo", None)
        if cached is None:
            hasher = hashlib.blake2b(digest_size=16)
            _fingerprint_walk(self, hasher.update)
            cached = self._fingerprint_memo = hasher.hexdigest()
        return cached

    def relations(self) -> set[str]:
        """Names of base relations/entities this expression reads —
        used by access control, provenance and the optimizer."""
        found: set[str] = set()
        stack: list[RelExpr] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Scan):
                found.add(node.relation)
            elif isinstance(node, EntityScan):
                found.add(node.entity)
            stack.extend(node.inputs())
        return found

    def depth(self) -> int:
        if not self.inputs():
            return 1
        return 1 + max(child.depth() for child in self.inputs())

    def size(self) -> int:
        """Number of operator nodes (benchmarks report view sizes)."""
        return 1 + sum(child.size() for child in self.inputs())

    def __repr__(self) -> str:
        from repro.algebra.printer import to_text

        return to_text(self)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self):
        raise NotImplementedError


class Scan(RelExpr):
    """Read a base relation verbatim."""

    def __init__(self, relation: str):
        self.relation = relation

    def _key(self):
        return (self.relation,)


class EntityScan(RelExpr):
    """Read the (polymorphic) extent of an entity with inheritance.

    ``only=True`` restricts to direct instances — ``IS OF ONLY`` applied
    at the scan.  Requires a schema-bound instance at evaluation time.
    """

    def __init__(self, entity: str, only: bool = False):
        self.entity = entity
        self.only = only

    def _key(self):
        return (self.entity, self.only)


class Values(RelExpr):
    """A literal relation (used by tests and the batch loader)."""

    def __init__(self, rows: Sequence[Row]):
        self.rows = tuple(dict(r) for r in rows)

    def _key(self):
        return tuple(frozenset(r.items()) for r in self.rows)


class Select(RelExpr):
    """σ — keep rows satisfying ``predicate``."""

    def __init__(self, input: RelExpr, predicate: Predicate):
        self.input = input
        self.predicate = predicate

    def inputs(self):
        return (self.input,)

    def _key(self):
        return (self.input, self.predicate)


class Project(RelExpr):
    """π — compute output columns ``outputs`` as (name, scalar) pairs.

    Bag semantics (no implicit duplicate elimination); wrap in
    :class:`Distinct` for set semantics.
    """

    def __init__(self, input: RelExpr, outputs: Sequence[tuple[str, Scalar]]):
        names = [name for name, _ in outputs]
        if len(names) != len(set(names)):
            raise EvaluationError(f"duplicate output columns: {names}")
        self.input = input
        self.outputs = tuple(outputs)

    @property
    def output_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.outputs)

    def inputs(self):
        return (self.input,)

    def _key(self):
        return (self.input, self.outputs)


class Extend(RelExpr):
    """Add a computed column, keeping existing ones."""

    def __init__(self, input: RelExpr, name: str, scalar: Scalar):
        self.input = input
        self.name = name
        self.scalar = scalar

    def inputs(self):
        return (self.input,)

    def _key(self):
        return (self.input, self.name, self.scalar)


class Join(RelExpr):
    """⋈ — inner or left-outer join on an arbitrary predicate.

    Column collisions: the right side's colliding columns are dropped
    unless ``right_prefix`` is given, in which case they are exposed as
    ``prefix.column``.  Equality joins should be built with
    :func:`eq_join`, which the optimizer and SQL emitter understand.
    """

    def __init__(
        self,
        left: RelExpr,
        right: RelExpr,
        predicate: Predicate = TRUE,
        kind: str = "inner",
        right_prefix: Optional[str] = None,
    ):
        if kind not in ("inner", "left"):
            raise EvaluationError(f"unsupported join kind {kind!r}")
        self.left = left
        self.right = right
        self.predicate = predicate
        self.kind = kind
        self.right_prefix = right_prefix

    def inputs(self):
        return (self.left, self.right)

    def _key(self):
        return (self.left, self.right, self.predicate, self.kind, self.right_prefix)


class UnionAll(RelExpr):
    """∪ (bag union). Branch schemas should agree; missing columns are
    filled with ``None`` so the Figure 3-style padded unions work."""

    def __init__(self, left: RelExpr, right: RelExpr):
        self.left = left
        self.right = right

    def inputs(self):
        return (self.left, self.right)

    def _key(self):
        return (self.left, self.right)


class Difference(RelExpr):
    """Set difference (left rows not present in right)."""

    def __init__(self, left: RelExpr, right: RelExpr):
        self.left = left
        self.right = right

    def inputs(self):
        return (self.left, self.right)

    def _key(self):
        return (self.left, self.right)


class Distinct(RelExpr):
    """Duplicate elimination."""

    def __init__(self, input: RelExpr):
        self.input = input

    def inputs(self):
        return (self.input,)

    def _key(self):
        return (self.input,)


class Rename(RelExpr):
    """ρ — rename columns per ``mapping`` (old → new)."""

    def __init__(self, input: RelExpr, mapping: dict[str, str]):
        self.input = input
        self.mapping = dict(mapping)

    def inputs(self):
        return (self.input,)

    def _key(self):
        return (self.input, frozenset(self.mapping.items()))


class Aggregate(RelExpr):
    """γ — group by ``group_by`` columns and compute aggregates.

    ``aggregations`` are (output_name, function, scalar) with function
    one of ``count``, ``sum``, ``min``, ``max``, ``avg``; for ``count``
    the scalar may be ``None`` (count rows).
    """

    FUNCTIONS = ("count", "sum", "min", "max", "avg")

    def __init__(
        self,
        input: RelExpr,
        group_by: Sequence[str],
        aggregations: Sequence[tuple[str, str, Optional[Scalar]]],
    ):
        for _, func, _ in aggregations:
            if func not in self.FUNCTIONS:
                raise EvaluationError(f"unknown aggregate {func!r}")
        self.input = input
        self.group_by = tuple(group_by)
        self.aggregations = tuple(aggregations)

    def inputs(self):
        return (self.input,)

    def _key(self):
        return (self.input, self.group_by, self.aggregations)


class Sort(RelExpr):
    """Order rows by ``keys`` (column names; descending with ``-name``)."""

    def __init__(self, input: RelExpr, keys: Sequence[str]):
        self.input = input
        self.keys = tuple(keys)

    def inputs(self):
        return (self.input,)

    def _key(self):
        return (self.input, self.keys)


# ----------------------------------------------------------------------
# construction helpers
# ----------------------------------------------------------------------
def project_names(input: RelExpr, names: Iterable[str]) -> Project:
    """πnames — plain projection onto existing columns."""
    return Project(input, [(n, Col(n)) for n in names])


def eq_join(
    left: RelExpr,
    right: RelExpr,
    pairs: Sequence[tuple[str, str]],
    kind: str = "inner",
    right_prefix: Optional[str] = None,
) -> Join:
    """Equality join on (left_column, right_column) pairs.

    When a right column must be compared against a left column of the
    same name, the predicate references the prefixed name if a prefix
    is given; otherwise the evaluator compares pre-merge values.
    """
    predicate = conjunction(
        [
            _JoinEq(left_col, right_col)
            for left_col, right_col in pairs
        ]
    )
    return Join(left, right, predicate, kind=kind, right_prefix=right_prefix)


class _JoinEq(Predicate):
    """Equality between a left-side and a right-side column, evaluated
    against the *pair* of rows during the join (so same-named columns
    on both sides compare correctly even without prefixes)."""

    def __init__(self, left_col: str, right_col: str):
        self.left_col = left_col
        self.right_col = right_col

    def eval(self, row: Row, ctx) -> bool:
        # The evaluator passes a combined row with side-tagged copies.
        lhs = row.get(f"$left.{self.left_col}", row.get(self.left_col))
        rhs = row.get(f"$right.{self.right_col}", row.get(self.right_col))
        if lhs is None or rhs is None:
            return False
        return lhs == rhs

    def columns(self) -> set[str]:
        return {self.left_col, self.right_col}

    def _key(self):
        return (self.left_col, self.right_col)


class ValueJoinEq(Predicate):
    """Null-*tolerant* equality between a left-side and a right-side
    column: plain Python equality, so ``None == None`` matches and
    labeled nulls match by label.

    This is the join semantics of variable binding in the homomorphism
    search — the CQ-to-algebra translation joins atom plans with it so
    the compiled path reproduces naive evaluation exactly.  Both
    engines give it the hash-join fast path.
    """

    def __init__(self, left_col: str, right_col: str):
        self.left_col = left_col
        self.right_col = right_col

    def eval(self, row: Row, ctx) -> bool:
        left_key = f"$left.{self.left_col}"
        right_key = f"$right.{self.right_col}"
        lhs = row[left_key] if left_key in row else row.get(self.left_col)
        rhs = row[right_key] if right_key in row else row.get(self.right_col)
        # Binding equality mirrors homomorphism matching: reject on !=.
        return not (lhs != rhs)

    def columns(self) -> set[str]:
        return {self.left_col, self.right_col}

    def _key(self):
        return (self.left_col, self.right_col)
