"""EXPLAIN / EXPLAIN ANALYZE for the compiling query executors.

``explain`` compiles (through the plan cache, exactly like
``evaluate``) and renders the annotated plan tree — which strategy
each node lowered to, where CSE shares a subtree.  ``explain_analyze``
additionally runs the plan through the profiled pipeline and annotates
every node with calls, output rows, inclusive and exclusive
(charge-once) wall time, and CSE-memo hits.

Both accept an optional ``instance``: with one in hand the query is
first run through the cost-based optimizer (the same
``adaptive_lookup`` path ``evaluate`` uses, so EXPLAIN shows exactly
the tree that would execute, with its chosen-vs-heuristic cost in the
header) and the plan's nodes are annotated with ``est_rows`` from the
cardinality estimator (:mod:`repro.algebra.estimate` over the
per-relation statistics service) — plain EXPLAIN shows estimates and
EXPLAIN ANALYZE shows estimate vs. actual with per-node divergence
ratios; nodes beyond ``ESTIMATION.divergence_factor`` are flagged and
the worst one is summarized (the signal the query log records and the
PlanCache feedback loop consumes).  ``no_opt=True`` skips the
cost-based phase and shows the heuristic plan (the CLI's ``repro
explain --no-opt`` / ``--compare``).  Estimation failures never fail
the explain: they are swallowed and counted
(``query.estimate.errors``).

Both work for the row engine (``engine="compiled"``) and the columnar
engine (``engine="vectorized"``, strategies named ``vec_*``); the
default follows :func:`repro.algebra.evaluator.get_default_engine`.
The two lowerings register node-for-node identical tree shapes, and
profiled row counts agree exactly — only strategy names and timings
differ.  ``engine="interpreted"`` has no plan to show and falls back
to the row compiler's view of the query.

The profiled pipeline is a *second* compilation of the same plan whose
stage closures are wrapped in per-node counters; the raw pipeline used
by ``evaluate`` under ``STATE.enabled == False`` is untouched, which is
how the observability layer keeps its zero-per-node-overhead contract
(see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.algebra import expressions as E
from repro.algebra.compiler import CompiledPlan, PlanProfile
from repro.algebra.estimate import annotate_plan, worst_divergent
from repro.algebra.plan_cache import (
    GLOBAL_PLAN_CACHE,
    GLOBAL_VECTOR_PLAN_CACHE,
)
from repro.algebra.printer import render_plan, to_text
from repro.instances.database import Instance, Row
from repro.metamodel.schema import Schema
from repro.observability import registry
from repro.observability.stats import ESTIMATION


def _cache_for(engine: Optional[str]):
    """The plan cache whose entries ``explain`` should show for
    ``engine`` (None → the process default engine)."""
    if engine is None:
        from repro.algebra.evaluator import get_default_engine

        engine = get_default_engine()
    if engine == "vectorized":
        return GLOBAL_VECTOR_PLAN_CACHE
    # "compiled" — and "interpreted", which has no plan of its own:
    # show the row compiler's lowering of the query.
    return GLOBAL_PLAN_CACHE


def _estimates_for(
    plan, instance: Optional[Instance], schema: Optional[Schema]
) -> Optional[list]:
    """Annotate ``plan`` against ``instance``, swallowing estimator
    bugs (telemetry must never fail the query path) into the
    ``query.estimate.errors`` counter."""
    if instance is None:
        return None
    try:
        return annotate_plan(plan, instance, schema)
    except Exception:
        registry.counter("query.estimate.errors").inc()
        return None


@dataclass
class ExplainResult:
    """A compiled plan plus its rendering context."""

    expr: E.RelExpr
    plan: CompiledPlan
    cache_hit: bool
    estimates: Optional[list] = None
    #: Estimated cost of the plan shown / of the heuristic tree, when
    #: the cost-based optimizer scored this query (instance given).
    cost: Optional[float] = None
    heuristic_cost: Optional[float] = None
    #: True when the shown plan is a cost-based reordering of the
    #: written query.
    optimized: bool = False

    def _cost_suffix(self) -> str:
        if self.cost is None:
            return ""
        suffix = f"  cost={self.cost:.0f}"
        if (
            self.heuristic_cost is not None
            and self.heuristic_cost != self.cost
        ):
            ratio = self.heuristic_cost / max(self.cost, 1e-12)
            suffix += (
                f" (heuristic {self.heuristic_cost:.0f}, {ratio:.1f}x)"
            )
        if self.optimized:
            suffix += "  reordered"
        return suffix

    def render(self) -> str:
        header = (
            f"plan {self.plan.fingerprint[:12]}"
            f"  size={self.plan.size}"
            f"  nodes={len(self.plan.nodes)}"
            f"  cache={'hit' if self.cache_hit else 'miss'}"
            + self._cost_suffix()
        )
        tree = render_plan(
            self.plan.nodes, self.plan.root_id, estimates=self.estimates
        )
        return f"{header}\n{tree}"

    def to_dict(self) -> dict:
        nodes = [node.to_dict() for node in self.plan.nodes]
        for position, node in enumerate(nodes):
            # ``est_rows`` is refreshed per explain call; report this
            # call's estimates, never a stale annotation on the cached
            # plan.
            node["est_rows"] = (
                self.estimates[position]
                if self.estimates is not None
                else None
            )
        return {
            "fingerprint": self.plan.fingerprint,
            "size": self.plan.size,
            "cache_hit": self.cache_hit,
            "expression": to_text(self.expr),
            "root_id": self.plan.root_id,
            "cost": self.cost,
            "heuristic_cost": self.heuristic_cost,
            "optimized": self.optimized,
            "nodes": nodes,
        }


@dataclass
class ExplainAnalyzeResult(ExplainResult):
    """An executed plan: the rows it produced, its per-node
    :class:`PlanProfile`, and (when estimates were computed) the worst
    estimate↔actual divergence."""

    profile: PlanProfile = None  # always set by explain_analyze
    rows: list[Row] = None
    worst: Optional[dict] = None

    def render(self) -> str:
        header = (
            f"plan {self.plan.fingerprint[:12]}"
            f"  size={self.plan.size}"
            f"  nodes={len(self.plan.nodes)}"
            f"  cache={'hit' if self.cache_hit else 'miss'}"
            f"  rows={self.profile.result_rows}"
            f"  total={self.profile.total_ms:.2f}ms"
            + self._cost_suffix()
        )
        tree = render_plan(
            self.plan.nodes,
            self.plan.root_id,
            profile=self.profile,
            estimates=self.estimates,
            divergence_factor=ESTIMATION.divergence_factor,
        )
        out = f"{header}\n{tree}"
        if self.worst is not None:
            flag = " ⚠" if self.worst["flagged"] else ""
            out += (
                f"\nworst divergence: #{self.worst['node_id']}"
                f" {self.worst['label']}"
                f"  est={self.worst['est_rows']:.0f}"
                f" actual={self.worst['actual_rows']}"
                f" ×{self.worst['ratio']:.1f}{flag}"
            )
        return out

    def to_dict(self) -> dict:
        data = super().to_dict()
        data["profile"] = self.profile.to_dict()
        data["worst_divergent"] = self.worst
        del data["nodes"]  # superseded by the annotated profile nodes
        if self.estimates is not None:
            for node, est in zip(
                data["profile"]["nodes"], self.estimates
            ):
                node["est_rows"] = est
        return data


def _plan_for(
    cache,
    expr: E.RelExpr,
    instance: Optional[Instance],
    schema: Optional[Schema],
    no_opt: bool,
):
    """Resolve the plan EXPLAIN should show: the adaptive cost-based
    plan when an instance is in hand (the tree ``evaluate`` would run),
    or the heuristic compilation with ``no_opt`` / without an instance.

    Returns ``(plan, cache_hit, cost, heuristic_cost, optimized)``.
    """
    from repro.algebra.optimizer import COST

    if instance is None or not COST.enabled:
        cache_hit = expr in cache
        return cache.get(expr), cache_hit, None, None, False
    if no_opt:
        cache_hit = expr in cache
        plan = cache.get(expr)
        cost = None
        try:
            from repro.algebra.estimate import Estimator
            from repro.algebra.optimizer import plan_cost

            cost = plan_cost(expr, Estimator(instance, schema))
        except Exception:
            registry.counter("query.estimate.errors").inc()
        return plan, cache_hit, cost, cost, False
    plan, cache_hit = cache.adaptive_lookup(expr, instance, schema)
    report = cache.adaptive_report(expr) or {}
    return (
        plan,
        cache_hit,
        report.get("chosen_cost"),
        report.get("heuristic_cost"),
        bool(report.get("reordered")),
    )


def explain(
    expr: E.RelExpr,
    engine: Optional[str] = None,
    instance: Optional[Instance] = None,
    schema: Optional[Schema] = None,
    no_opt: bool = False,
) -> ExplainResult:
    """Compile ``expr`` (via the process-wide plan cache, like
    ``evaluate``) and return its annotated plan.

    With an ``instance``, the cost-based optimizer chooses the tree
    (unless ``no_opt``) and nodes additionally carry cardinality
    estimates from its statistics service."""
    cache = _cache_for(engine)
    plan, cache_hit, cost, heuristic_cost, optimized = _plan_for(
        cache, expr, instance, schema, no_opt
    )
    estimates = _estimates_for(plan, instance, schema)
    return ExplainResult(
        expr=expr,
        plan=plan,
        cache_hit=cache_hit,
        estimates=estimates,
        cost=cost,
        heuristic_cost=heuristic_cost,
        optimized=optimized,
    )


def explain_analyze(
    expr: E.RelExpr,
    instance: Instance,
    schema: Optional[Schema] = None,
    engine: Optional[str] = None,
    no_opt: bool = False,
) -> ExplainAnalyzeResult:
    """Compile, execute against ``instance``, and return the plan
    annotated with per-node runtime statistics and estimate↔actual
    divergence.

    Profiling works whether or not observability is enabled; when it
    is enabled the run also emits the usual ``query.execute`` span, so
    the profile's total nests inside that span's wall time."""
    cache = _cache_for(engine)
    plan, cache_hit, cost, heuristic_cost, optimized = _plan_for(
        cache, expr, instance, schema, no_opt
    )
    estimates = _estimates_for(plan, instance, schema)
    rows, profile = plan.execute_profiled(instance, schema)
    worst = (
        worst_divergent(plan.nodes, profile)
        if estimates is not None
        else None
    )
    return ExplainAnalyzeResult(
        expr=expr,
        plan=plan,
        cache_hit=cache_hit,
        estimates=estimates,
        cost=cost,
        heuristic_cost=heuristic_cost,
        optimized=optimized,
        profile=profile,
        rows=rows,
        worst=worst,
    )
