"""EXPLAIN / EXPLAIN ANALYZE for the compiling query executors.

``explain`` compiles (through the plan cache, exactly like
``evaluate``) and renders the annotated plan tree — which strategy
each node lowered to, where CSE shares a subtree.  ``explain_analyze``
additionally runs the plan through the profiled pipeline and annotates
every node with calls, output rows, inclusive and exclusive
(charge-once) wall time, and CSE-memo hits.

Both accept an optional ``instance``: with one in hand the plan's
nodes are annotated with ``est_rows`` from the cardinality estimator
(:mod:`repro.algebra.estimate` over the per-relation statistics
service), so plain EXPLAIN shows estimates and EXPLAIN ANALYZE shows
estimate vs. actual with per-node divergence ratios — nodes beyond
``ESTIMATION.divergence_factor`` are flagged and the worst one is
summarized (the signal the query log records and the PlanCache
feedback loop will consume).  Estimation failures never fail the
explain: they are swallowed and counted (``query.estimate.errors``).

Both work for the row engine (``engine="compiled"``) and the columnar
engine (``engine="vectorized"``, strategies named ``vec_*``); the
default follows :func:`repro.algebra.evaluator.get_default_engine`.
The two lowerings register node-for-node identical tree shapes, and
profiled row counts agree exactly — only strategy names and timings
differ.  ``engine="interpreted"`` has no plan to show and falls back
to the row compiler's view of the query.

The profiled pipeline is a *second* compilation of the same plan whose
stage closures are wrapped in per-node counters; the raw pipeline used
by ``evaluate`` under ``STATE.enabled == False`` is untouched, which is
how the observability layer keeps its zero-per-node-overhead contract
(see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.algebra import expressions as E
from repro.algebra.compiler import CompiledPlan, PlanProfile
from repro.algebra.estimate import annotate_plan, worst_divergent
from repro.algebra.plan_cache import (
    GLOBAL_PLAN_CACHE,
    GLOBAL_VECTOR_PLAN_CACHE,
)
from repro.algebra.printer import render_plan, to_text
from repro.instances.database import Instance, Row
from repro.metamodel.schema import Schema
from repro.observability import registry
from repro.observability.stats import ESTIMATION


def _cache_for(engine: Optional[str]):
    """The plan cache whose entries ``explain`` should show for
    ``engine`` (None → the process default engine)."""
    if engine is None:
        from repro.algebra.evaluator import get_default_engine

        engine = get_default_engine()
    if engine == "vectorized":
        return GLOBAL_VECTOR_PLAN_CACHE
    # "compiled" — and "interpreted", which has no plan of its own:
    # show the row compiler's lowering of the query.
    return GLOBAL_PLAN_CACHE


def _estimates_for(
    plan, instance: Optional[Instance], schema: Optional[Schema]
) -> Optional[list]:
    """Annotate ``plan`` against ``instance``, swallowing estimator
    bugs (telemetry must never fail the query path) into the
    ``query.estimate.errors`` counter."""
    if instance is None:
        return None
    try:
        return annotate_plan(plan, instance, schema)
    except Exception:
        registry.counter("query.estimate.errors").inc()
        return None


@dataclass
class ExplainResult:
    """A compiled plan plus its rendering context."""

    expr: E.RelExpr
    plan: CompiledPlan
    cache_hit: bool
    estimates: Optional[list] = None

    def render(self) -> str:
        header = (
            f"plan {self.plan.fingerprint[:12]}"
            f"  size={self.plan.size}"
            f"  nodes={len(self.plan.nodes)}"
            f"  cache={'hit' if self.cache_hit else 'miss'}"
        )
        tree = render_plan(
            self.plan.nodes, self.plan.root_id, estimates=self.estimates
        )
        return f"{header}\n{tree}"

    def to_dict(self) -> dict:
        nodes = [node.to_dict() for node in self.plan.nodes]
        for position, node in enumerate(nodes):
            # ``est_rows`` is refreshed per explain call; report this
            # call's estimates, never a stale annotation on the cached
            # plan.
            node["est_rows"] = (
                self.estimates[position]
                if self.estimates is not None
                else None
            )
        return {
            "fingerprint": self.plan.fingerprint,
            "size": self.plan.size,
            "cache_hit": self.cache_hit,
            "expression": to_text(self.expr),
            "root_id": self.plan.root_id,
            "nodes": nodes,
        }


@dataclass
class ExplainAnalyzeResult(ExplainResult):
    """An executed plan: the rows it produced, its per-node
    :class:`PlanProfile`, and (when estimates were computed) the worst
    estimate↔actual divergence."""

    profile: PlanProfile = None  # always set by explain_analyze
    rows: list[Row] = None
    worst: Optional[dict] = None

    def render(self) -> str:
        header = (
            f"plan {self.plan.fingerprint[:12]}"
            f"  size={self.plan.size}"
            f"  nodes={len(self.plan.nodes)}"
            f"  cache={'hit' if self.cache_hit else 'miss'}"
            f"  rows={self.profile.result_rows}"
            f"  total={self.profile.total_ms:.2f}ms"
        )
        tree = render_plan(
            self.plan.nodes,
            self.plan.root_id,
            profile=self.profile,
            estimates=self.estimates,
            divergence_factor=ESTIMATION.divergence_factor,
        )
        out = f"{header}\n{tree}"
        if self.worst is not None:
            flag = " ⚠" if self.worst["flagged"] else ""
            out += (
                f"\nworst divergence: #{self.worst['node_id']}"
                f" {self.worst['label']}"
                f"  est={self.worst['est_rows']:.0f}"
                f" actual={self.worst['actual_rows']}"
                f" ×{self.worst['ratio']:.1f}{flag}"
            )
        return out

    def to_dict(self) -> dict:
        data = super().to_dict()
        data["profile"] = self.profile.to_dict()
        data["worst_divergent"] = self.worst
        del data["nodes"]  # superseded by the annotated profile nodes
        if self.estimates is not None:
            for node, est in zip(
                data["profile"]["nodes"], self.estimates
            ):
                node["est_rows"] = est
        return data


def explain(
    expr: E.RelExpr,
    engine: Optional[str] = None,
    instance: Optional[Instance] = None,
    schema: Optional[Schema] = None,
) -> ExplainResult:
    """Compile ``expr`` (via the process-wide plan cache, like
    ``evaluate``) and return its annotated plan.

    With an ``instance``, nodes additionally carry cardinality
    estimates from its statistics service."""
    cache = _cache_for(engine)
    cache_hit = expr in cache
    plan = cache.get(expr)
    estimates = _estimates_for(plan, instance, schema)
    return ExplainResult(
        expr=expr, plan=plan, cache_hit=cache_hit, estimates=estimates
    )


def explain_analyze(
    expr: E.RelExpr,
    instance: Instance,
    schema: Optional[Schema] = None,
    engine: Optional[str] = None,
) -> ExplainAnalyzeResult:
    """Compile, execute against ``instance``, and return the plan
    annotated with per-node runtime statistics and estimate↔actual
    divergence.

    Profiling works whether or not observability is enabled; when it
    is enabled the run also emits the usual ``query.execute`` span, so
    the profile's total nests inside that span's wall time."""
    cache = _cache_for(engine)
    cache_hit = expr in cache
    plan = cache.get(expr)
    estimates = _estimates_for(plan, instance, schema)
    rows, profile = plan.execute_profiled(instance, schema)
    worst = (
        worst_divergent(plan.nodes, profile)
        if estimates is not None
        else None
    )
    return ExplainAnalyzeResult(
        expr=expr,
        plan=plan,
        cache_hit=cache_hit,
        estimates=estimates,
        profile=profile,
        rows=rows,
        worst=worst,
    )
