"""EXPLAIN / EXPLAIN ANALYZE for the compiling query executors.

``explain`` compiles (through the plan cache, exactly like
``evaluate``) and renders the annotated plan tree — which strategy
each node lowered to, where CSE shares a subtree.  ``explain_analyze``
additionally runs the plan through the profiled pipeline and annotates
every node with calls, output rows, inclusive and exclusive
(charge-once) wall time, and CSE-memo hits.

Both work for the row engine (``engine="compiled"``) and the columnar
engine (``engine="vectorized"``, strategies named ``vec_*``); the
default follows :func:`repro.algebra.evaluator.get_default_engine`.
The two lowerings register node-for-node identical tree shapes, and
profiled row counts agree exactly — only strategy names and timings
differ.  ``engine="interpreted"`` has no plan to show and falls back
to the row compiler's view of the query.

The profiled pipeline is a *second* compilation of the same plan whose
stage closures are wrapped in per-node counters; the raw pipeline used
by ``evaluate`` under ``STATE.enabled == False`` is untouched, which is
how the observability layer keeps its zero-per-node-overhead contract
(see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.algebra import expressions as E
from repro.algebra.compiler import CompiledPlan, PlanProfile
from repro.algebra.plan_cache import (
    GLOBAL_PLAN_CACHE,
    GLOBAL_VECTOR_PLAN_CACHE,
)
from repro.algebra.printer import render_plan, to_text
from repro.instances.database import Instance, Row
from repro.metamodel.schema import Schema


def _cache_for(engine: Optional[str]):
    """The plan cache whose entries ``explain`` should show for
    ``engine`` (None → the process default engine)."""
    if engine is None:
        from repro.algebra.evaluator import get_default_engine

        engine = get_default_engine()
    if engine == "vectorized":
        return GLOBAL_VECTOR_PLAN_CACHE
    # "compiled" — and "interpreted", which has no plan of its own:
    # show the row compiler's lowering of the query.
    return GLOBAL_PLAN_CACHE


@dataclass
class ExplainResult:
    """A compiled plan plus its rendering context."""

    expr: E.RelExpr
    plan: CompiledPlan
    cache_hit: bool

    def render(self) -> str:
        header = (
            f"plan {self.plan.fingerprint[:12]}"
            f"  size={self.plan.size}"
            f"  nodes={len(self.plan.nodes)}"
            f"  cache={'hit' if self.cache_hit else 'miss'}"
        )
        tree = render_plan(self.plan.nodes, self.plan.root_id)
        return f"{header}\n{tree}"

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.plan.fingerprint,
            "size": self.plan.size,
            "cache_hit": self.cache_hit,
            "expression": to_text(self.expr),
            "root_id": self.plan.root_id,
            "nodes": [node.to_dict() for node in self.plan.nodes],
        }


@dataclass
class ExplainAnalyzeResult(ExplainResult):
    """An executed plan: the rows it produced and its per-node
    :class:`PlanProfile`."""

    profile: PlanProfile = None  # always set by explain_analyze
    rows: list[Row] = None

    def render(self) -> str:
        header = (
            f"plan {self.plan.fingerprint[:12]}"
            f"  size={self.plan.size}"
            f"  nodes={len(self.plan.nodes)}"
            f"  cache={'hit' if self.cache_hit else 'miss'}"
            f"  rows={self.profile.result_rows}"
            f"  total={self.profile.total_ms:.2f}ms"
        )
        tree = render_plan(
            self.plan.nodes, self.plan.root_id, profile=self.profile
        )
        return f"{header}\n{tree}"

    def to_dict(self) -> dict:
        data = super().to_dict()
        data["profile"] = self.profile.to_dict()
        del data["nodes"]  # superseded by the annotated profile nodes
        return data


def explain(
    expr: E.RelExpr, engine: Optional[str] = None
) -> ExplainResult:
    """Compile ``expr`` (via the process-wide plan cache, like
    ``evaluate``) and return its annotated plan."""
    cache = _cache_for(engine)
    cache_hit = expr in cache
    plan = cache.get(expr)
    return ExplainResult(expr=expr, plan=plan, cache_hit=cache_hit)


def explain_analyze(
    expr: E.RelExpr,
    instance: Instance,
    schema: Optional[Schema] = None,
    engine: Optional[str] = None,
) -> ExplainAnalyzeResult:
    """Compile, execute against ``instance``, and return the plan
    annotated with per-node runtime statistics.

    Profiling works whether or not observability is enabled; when it
    is enabled the run also emits the usual ``query.execute`` span, so
    the profile's total nests inside that span's wall time."""
    cache = _cache_for(engine)
    cache_hit = expr in cache
    plan = cache.get(expr)
    rows, profile = plan.execute_profiled(instance, schema)
    return ExplainAnalyzeResult(
        expr=expr, plan=plan, cache_hit=cache_hit, profile=profile, rows=rows
    )
