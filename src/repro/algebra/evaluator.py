"""Evaluation of relational algebra expressions over instances.

This is the query-execution half of the paper's "mapping runtime": the
engine that actually runs generated transformations.  Three engines
live behind :func:`evaluate`:

* ``vectorized`` (the default) — the columnar executor of
  :mod:`repro.algebra.vectorized`: stages operate on
  :class:`~repro.instances.columnar.ColumnBatch` operands (masks,
  column permutations, column-slice hash joins), memoized through its
  own plan cache;
* ``compiled`` — the row closure-pipeline executor of
  :mod:`repro.algebra.compiler`, memoized through the plan cache of
  :mod:`repro.algebra.plan_cache`;
* ``interpreted`` — the reference tree-walking interpreter in this
  module: a straightforward evaluator that materializes each
  operator's output.  Simple, deterministic, and the semantic oracle
  the differential suite holds both compiling engines to.

Select the engine per call (``evaluate(..., engine="interpreted")``),
process-wide (:func:`set_default_engine`), or via the
``REPRO_QUERY_ENGINE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.algebra.expressions import (
    Aggregate,
    Difference,
    Distinct,
    EntityScan,
    Extend,
    Join,
    Project,
    RelExpr,
    Rename,
    Scan,
    Select,
    Sort,
    UnionAll,
    Values,
)
from repro.errors import EvaluationError
from repro.instances.database import Instance, Row, freeze_row
from repro.instances.labeled_null import LabeledNull
from repro.metamodel.schema import Schema
from repro.observability.metrics import registry
from repro.observability.state import STATE
from repro.observability.tracing import tracer

#: Engines selectable through ``evaluate(..., engine=...)``,
#: :func:`set_default_engine`, or ``REPRO_QUERY_ENGINE``.
ENGINES = ("vectorized", "compiled", "interpreted")

_default_engine: Optional[str] = None


def get_default_engine() -> str:
    """The engine used when ``evaluate`` is called without one:
    the :func:`set_default_engine` override if set, else
    ``REPRO_QUERY_ENGINE`` if valid, else ``vectorized``."""
    if _default_engine is not None:
        return _default_engine
    env = os.environ.get("REPRO_QUERY_ENGINE", "").strip().lower()
    if env in ENGINES:
        return env
    return "vectorized"


def set_default_engine(engine: Optional[str]) -> None:
    """Process-wide engine override; ``None`` reverts to the
    environment/default resolution."""
    global _default_engine
    if engine is not None and engine not in ENGINES:
        raise ValueError(
            f"unknown query engine {engine!r}; expected one of {ENGINES}"
        )
    _default_engine = engine


@dataclass
class EvalContext:
    """What scalar expressions may consult during evaluation."""

    schema: Optional[Schema] = None
    instance: Optional[Instance] = None


def evaluate(
    expr: RelExpr,
    instance: Instance,
    schema: Optional[Schema] = None,
    engine: Optional[str] = None,
) -> list[Row]:
    """Evaluate ``expr`` against ``instance`` and return its rows.

    ``schema`` supplies the is-a hierarchy for ``EntityScan`` and
    ``IsOf``; it defaults to the instance's bound schema.  ``engine``
    picks ``vectorized``, ``compiled``, or ``interpreted`` (default per
    :func:`get_default_engine`); all produce identical row multisets.
    """
    resolved = engine if engine is not None else get_default_engine()
    if resolved == "vectorized":
        from repro.algebra.plan_cache import GLOBAL_VECTOR_PLAN_CACHE

        if not STATE.enabled:
            plan, _ = GLOBAL_VECTOR_PLAN_CACHE.adaptive_lookup(
                expr, instance, schema
            )
            return plan.execute(instance, schema)
        return _evaluate_observed(
            expr, instance, schema, GLOBAL_VECTOR_PLAN_CACHE, resolved
        )
    if resolved == "compiled":
        from repro.algebra.plan_cache import GLOBAL_PLAN_CACHE

        if not STATE.enabled:
            plan, _ = GLOBAL_PLAN_CACHE.adaptive_lookup(
                expr, instance, schema
            )
            return plan.execute(instance, schema)
        return _evaluate_observed(
            expr, instance, schema, GLOBAL_PLAN_CACHE, resolved
        )
    if resolved != "interpreted":
        raise EvaluationError(
            f"unknown query engine {resolved!r}; expected one of {ENGINES}"
        )
    return evaluate_interpreted(expr, instance, schema)


def _evaluate_observed(
    expr: RelExpr,
    instance: Instance,
    schema: Optional[Schema],
    cache,
    engine: str,
) -> list[Row]:
    """The compiling engines' execution path under ``STATE.enabled``:
    identical result, plus a query-log entry carrying the *source*
    expression fingerprint (all engines and the adaptive feedback store
    agree on it, whatever tree the optimizer chose), cache hit/miss,
    wall time, output rows, and the worst estimate↔actual divergent
    node.  A flagged divergence is handed to the adaptive cache, which
    may schedule a re-optimization of this query with actuals-corrected
    cardinalities (``reopt`` in the log entry).

    The estimator runs *after* execution (outside the recorded wall
    time) and its failures never fail the query — they land in the
    ``query.estimate.errors`` counter."""
    import time

    from repro.observability.querylog import QUERY_LOG

    plan, cache_hit = cache.adaptive_lookup(expr, instance, schema)
    start = time.perf_counter()
    rows = plan.execute(instance, schema)
    wall_ms = (time.perf_counter() - start) * 1000.0
    worst = None
    reopt = False
    try:
        from repro.algebra.estimate import annotate_plan, worst_divergent

        annotate_plan(plan, instance, schema)
        profile = plan.last_profile
        if profile is not None:
            worst = worst_divergent(plan.nodes, profile)
            if worst is not None and worst["flagged"]:
                reopt = cache.note_divergence(expr, plan, profile)
    except Exception:
        registry.counter("query.estimate.errors").inc()
    entry = QUERY_LOG.record(
        fingerprint=expr.fingerprint(),
        engine=engine,
        cache_hit=cache_hit,
        wall_ms=wall_ms,
        rows_out=len(rows),
        worst=worst,
        reopt=reopt,
    )
    registry.counter("query.log.entries").inc()
    if entry.slow:
        registry.counter("query.log.slow").inc()
    if worst is not None and worst["flagged"]:
        registry.counter("query.estimate.divergent").inc()
    return rows


def evaluate_interpreted(
    expr: RelExpr,
    instance: Instance,
    schema: Optional[Schema] = None,
) -> list[Row]:
    """The reference tree-walking interpreter (always available,
    regardless of the default engine)."""
    ctx = EvalContext(schema=schema or instance.schema, instance=instance)
    if not STATE.enabled:
        return _eval(expr, instance, ctx)
    import time

    from repro.observability.querylog import QUERY_LOG

    start = time.perf_counter()
    with tracer.span(
        "query.execute", engine="interpreted", **{"plan.size": expr.size()}
    ) as span:
        rows = _eval(expr, instance, ctx)
        if span is not None:
            span.set_attribute("rows", len(rows))
    wall_ms = (time.perf_counter() - start) * 1000.0
    registry.counter("query.execute.count").inc()
    registry.histogram("query.execute.rows").observe(len(rows))
    # The interpreter has no plan cache (or per-node plan), but its
    # executions still land in the query log under the same structural
    # fingerprint the compiling engines would use.
    entry = QUERY_LOG.record(
        fingerprint=expr.fingerprint(),
        engine="interpreted",
        cache_hit=False,
        wall_ms=wall_ms,
        rows_out=len(rows),
        worst=None,
    )
    registry.counter("query.log.entries").inc()
    if entry.slow:
        registry.counter("query.log.slow").inc()
    return rows


def _eval(expr: RelExpr, instance: Instance, ctx: EvalContext) -> list[Row]:
    if isinstance(expr, Scan):
        return [dict(row) for row in instance.rows(expr.relation)]

    if isinstance(expr, EntityScan):
        if ctx.schema is None:
            raise EvaluationError("EntityScan requires a schema")
        # The schema override threads straight through objects_of —
        # no instance.copy() just to rebind the schema.
        return [
            dict(row)
            for row in instance.objects_of(
                expr.entity, strict=expr.only, schema=ctx.schema
            )
        ]

    if isinstance(expr, Values):
        return [dict(row) for row in expr.rows]

    if isinstance(expr, Select):
        rows = _eval(expr.input, instance, ctx)
        return [row for row in rows if expr.predicate.eval(row, ctx)]

    if isinstance(expr, Project):
        rows = _eval(expr.input, instance, ctx)
        return [
            {name: scalar.eval(row, ctx) for name, scalar in expr.outputs}
            for row in rows
        ]

    if isinstance(expr, Extend):
        rows = _eval(expr.input, instance, ctx)
        out = []
        for row in rows:
            extended = dict(row)
            extended[expr.name] = expr.scalar.eval(row, ctx)
            out.append(extended)
        return out

    if isinstance(expr, Join):
        return _eval_join(expr, instance, ctx)

    if isinstance(expr, UnionAll):
        left = _eval(expr.left, instance, ctx)
        right = _eval(expr.right, instance, ctx)
        return _pad_union(left, right)

    if isinstance(expr, Difference):
        left = _eval(expr.left, instance, ctx)
        right = {freeze_row(r) for r in _eval(expr.right, instance, ctx)}
        seen: set[frozenset] = set()
        out = []
        for row in left:
            frozen = freeze_row(row)
            if frozen not in right and frozen not in seen:
                seen.add(frozen)
                out.append(row)
        return out

    if isinstance(expr, Distinct):
        rows = _eval(expr.input, instance, ctx)
        seen: set[frozenset] = set()
        out = []
        for row in rows:
            frozen = freeze_row(row)
            if frozen not in seen:
                seen.add(frozen)
                out.append(row)
        return out

    if isinstance(expr, Rename):
        rows = _eval(expr.input, instance, ctx)
        return [
            {expr.mapping.get(k, k): v for k, v in row.items()} for row in rows
        ]

    if isinstance(expr, Aggregate):
        return _eval_aggregate(expr, instance, ctx)

    if isinstance(expr, Sort):
        rows = _eval(expr.input, instance, ctx)
        for key in reversed(expr.keys):
            descending = key.startswith("-")
            column = key[1:] if descending else key
            rows.sort(key=lambda r: _SortKey(r.get(column)), reverse=descending)
        return rows

    raise EvaluationError(f"unknown expression node {type(expr).__name__}")


def _eval_join(expr: Join, instance: Instance, ctx: EvalContext) -> list[Row]:
    left_rows = _eval(expr.left, instance, ctx)
    right_rows = _eval(expr.right, instance, ctx)
    out: list[Row] = []
    right_columns: set[str] = set()
    for row in right_rows:
        right_columns.update(row)

    # Hash-join fast path for pure equality predicates.
    pairs = _equality_pairs(expr.predicate)
    index: Optional[dict[tuple, list[Row]]] = None
    if pairs is not None and pairs:
        index = {}
        for r_row in right_rows:
            key = tuple(_join_value(r_row.get(rc)) for _, rc in pairs)
            index.setdefault(key, []).append(r_row)

    for l_row in left_rows:
        if index is not None:
            key = tuple(_join_value(l_row.get(lc)) for lc, _ in pairs)
            candidates = index.get(key, []) if None not in key else []
        else:
            candidates = right_rows
        matched = False
        for r_row in candidates:
            if index is None and not _join_predicate_holds(
                expr, l_row, r_row, ctx
            ):
                continue
            matched = True
            out.append(_merge(l_row, r_row, expr.right_prefix))
        if not matched and expr.kind == "left":
            padding = {c: None for c in right_columns if c not in l_row}
            if expr.right_prefix:
                padding = {
                    f"{expr.right_prefix}.{c}": None for c in right_columns
                }
            merged = dict(l_row)
            merged.update(padding)
            out.append(merged)
    return out


def _equality_pairs(predicate) -> Optional[list[tuple[str, str]]]:
    """Extract (left_col, right_col) pairs if the predicate is a pure
    conjunction of ``_JoinEq`` atoms — enables the hash join."""
    from repro.algebra.expressions import _JoinEq
    from repro.algebra.scalars import And, TRUE

    if predicate is TRUE:
        return []
    if isinstance(predicate, _JoinEq):
        return [(predicate.left_col, predicate.right_col)]
    if isinstance(predicate, And):
        pairs: list[tuple[str, str]] = []
        for operand in predicate.operands:
            if not isinstance(operand, _JoinEq):
                return None
            pairs.append((operand.left_col, operand.right_col))
        return pairs
    return None


def _join_value(value):
    """Join keys: None never matches; labeled nulls match by label."""
    if value is None:
        return None
    if isinstance(value, LabeledNull):
        return ("⊥", value.label)
    return value


def _join_predicate_holds(expr: Join, l_row: Row, r_row: Row, ctx) -> bool:
    combined = dict(l_row)
    combined.update(
        {k: v for k, v in r_row.items() if k not in combined}
    )
    for key, value in l_row.items():
        combined[f"$left.{key}"] = value
    for key, value in r_row.items():
        combined[f"$right.{key}"] = value
    return expr.predicate.eval(combined, ctx)


def _merge(l_row: Row, r_row: Row, right_prefix: Optional[str]) -> Row:
    merged = dict(l_row)
    for key, value in r_row.items():
        if key in merged:
            if right_prefix:
                merged[f"{right_prefix}.{key}"] = value
            # else: left wins, right duplicate dropped
        else:
            merged[key] = value
    return merged


def _pad_union(left: list[Row], right: list[Row]) -> list[Row]:
    # Insertion-ordered dict keeps first-seen column order with O(1)
    # membership (the old list scan was O(rows·cols)).
    columns: dict[str, None] = {}
    for row in left:
        for key in row:
            columns[key] = None
    for row in right:
        for key in row:
            columns[key] = None
    out = []
    for row in left + right:
        out.append({c: row.get(c) for c in columns})
    return out


def _eval_aggregate(
    expr: Aggregate, instance: Instance, ctx: EvalContext
) -> list[Row]:
    rows = _eval(expr.input, instance, ctx)
    groups: dict[tuple, list[Row]] = {}
    for row in rows:
        key = tuple(_join_value(row.get(c)) for c in expr.group_by)
        groups.setdefault(key, []).append(row)
    if not groups and not expr.group_by:
        groups[()] = []
    out: list[Row] = []
    for key, members in groups.items():
        result: Row = {}
        for column, raw in zip(expr.group_by, key):
            # .get: a group-by column may be absent from a row (padded
            # unions); the group key already treats that as None.
            sample = members[0].get(column) if members else None
            result[column] = sample
        for name, func, scalar in expr.aggregations:
            result[name] = _apply_aggregate(func, scalar, members, ctx)
        out.append(result)
    return out


def _apply_aggregate(func: str, scalar, members: list[Row], ctx) -> object:
    if func == "count" and scalar is None:
        return len(members)
    values = []
    for row in members:
        value = scalar.eval(row, ctx) if scalar is not None else 1
        if value is not None and not isinstance(value, LabeledNull):
            values.append(value)
    if func == "count":
        return len(values)
    if not values:
        return None
    if func == "sum":
        return sum(values)
    if func == "min":
        return min(values)
    if func == "max":
        return max(values)
    if func == "avg":
        return sum(values) / len(values)
    raise EvaluationError(f"unknown aggregate {func!r}")


class _SortKey:
    """Total order over heterogeneous values: nulls last, then by type
    name, then by value (string fallback for incomparables)."""

    __slots__ = ("rank", "type_name", "value")

    def __init__(self, value):
        if value is None or isinstance(value, LabeledNull):
            self.rank = 1
            self.type_name = ""
            self.value = repr(value)
        else:
            self.rank = 0
            self.type_name = type(value).__name__
            self.value = value

    def __lt__(self, other: "_SortKey") -> bool:
        if self.rank != other.rank:
            return self.rank < other.rank
        if self.type_name != other.type_name:
            return self.type_name < other.type_name
        try:
            return self.value < other.value
        except TypeError:
            return str(self.value) < str(other.value)
