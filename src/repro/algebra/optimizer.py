"""Algebraic rewriting of generated transformations.

TransGen's output is systematic rather than minimal (the paper notes
generating *efficient* transformations "is likely to expose a wealth of
optimization opportunities", Section 4).  This optimizer applies the
classical safe rewrites:

* cascade and fuse selections (σp(σq(x)) → σp∧q(x));
* push selections through projections/extends when the predicate only
  reads pass-through columns, and into union branches;
* fuse adjacent projections;
* drop identity projections and empty renames;
* simplify predicates (TRUE/FALSE absorption);
* eliminate union branches that are provably empty (σFALSE);
* recognize plain ``Comparison('=', Col, Col)`` conjuncts in join
  predicates as equi-join pairs (``_JoinEq``) when the two columns
  provably come from opposite sides, so hand-written joins take the
  executor's hash-join path.

Rewrites run to a fixpoint; each is semantics-preserving under the bag
semantics of the evaluator.

When an :class:`~repro.instances.database.Instance` is supplied,
a second, *cost-based* phase runs after the heuristic fixpoint: commute-
safe inner-equi-join regions are flattened into join graphs, orders are
enumerated (dynamic programming up to ``COST.dp_max_leaves`` relations,
greedy min-est-rows above), and the cheapest tree under the cardinality
estimates of :mod:`repro.algebra.estimate` wins — see
``docs/OPTIMIZER.md`` for the cost model and its knobs.  Without an
instance, ``optimize`` behaves exactly as before.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.algebra import expressions as E
from repro.algebra import scalars as S


class CostConfig:
    """Tuning knobs for the cost-based phase (``docs/OPTIMIZER.md``).

    The per-row CPU weights are calibrated from the PR 5/7 operator
    profiles (`EXPLAIN ANALYZE` self-times over the BENCH_query
    workloads): hash-build rows cost roughly 2× probe rows, predicate
    evaluation sits between the two, and scans are the cheapest
    per-row touch.  Absolute scale is irrelevant — only ratios steer
    the join-order search.
    """

    __slots__ = (
        "enabled", "dp_max_leaves", "max_region_leaves", "max_reopts",
        "scan_weight", "pred_weight", "build_weight", "probe_weight",
        "output_weight", "sort_weight",
    )

    def __init__(self) -> None:
        self.enabled = True
        #: Regions up to this many leaves get exhaustive DP; larger
        #: ones fall back to the greedy min-est-rows heuristic.
        self.dp_max_leaves = 8
        #: Regions beyond this are left in their written order.
        self.max_region_leaves = 24
        #: Per-query bound on adaptive re-optimizations (feedback loop
        #: in :mod:`repro.algebra.plan_cache`).
        self.max_reopts = 3
        self.scan_weight = 0.25
        self.pred_weight = 0.6
        self.build_weight = 1.4
        self.probe_weight = 0.8
        self.output_weight = 1.0
        self.sort_weight = 0.3


#: Process-wide cost configuration (mutable, like ``ESTIMATION``).
COST = CostConfig()


@dataclass
class OptimizationReport:
    """Outcome of one instance-aware ``optimize`` call: both trees and
    their estimated costs, for ``EXPLAIN`` rendering and the adaptive
    plan cache."""

    heuristic: E.RelExpr
    chosen: E.RelExpr
    heuristic_cost: Optional[float]
    chosen_cost: Optional[float]

    @property
    def reordered(self) -> bool:
        return self.chosen is not self.heuristic


def optimize(
    expr: E.RelExpr,
    max_passes: int = 10,
    instance=None,
    schema=None,
    corrections=None,
) -> E.RelExpr:
    """Rewrite ``expr`` to a fixpoint of the rule set.

    With ``instance`` (and ``COST.enabled``), additionally run the
    cost-based join-order search against its statistics;
    ``corrections`` maps subtree fingerprints to observed row counts
    (the adaptive re-optimization feedback).  Backward compatible: no
    instance → pure heuristics, identical to previous behavior.
    """
    current = _heuristic_fixpoint(expr, max_passes)
    if instance is None or not COST.enabled:
        return current
    return optimize_with_report(
        current, instance, schema=schema, corrections=corrections,
        max_passes=0,
    ).chosen


def _heuristic_fixpoint(expr: E.RelExpr, max_passes: int) -> E.RelExpr:
    current = expr
    for _ in range(max_passes):
        rewritten = _rewrite(current)
        if rewritten == current:
            # Return the pre-pass tree: structurally identical, but it
            # keeps the caller's object identity (and with it any
            # shared-subtree DAG structure the compiler CSEs).
            return current
        current = rewritten
    return current


def _rewrite(expr: E.RelExpr) -> E.RelExpr:
    expr = _rewrite_children(expr)

    if isinstance(expr, E.Select):
        predicate = simplify_predicate(expr.predicate)
        if predicate is S.TRUE:
            return expr.input
        if predicate is S.FALSE:
            return E.Values([])
        # σp(σq(x)) → σ(p ∧ q)(x)
        if isinstance(expr.input, E.Select):
            return _rewrite(
                E.Select(
                    expr.input.input,
                    S.conjunction([expr.input.predicate, predicate]),
                )
            )
        # σp(δ(x)) → δ(σp(x))
        if isinstance(expr.input, E.Distinct):
            return _rewrite(
                E.Distinct(E.Select(expr.input.input, predicate))
            )
        # σp(x ∪ y) → σp(x) ∪ σp(y)
        if isinstance(expr.input, E.UnionAll):
            return _rewrite(
                E.UnionAll(
                    E.Select(expr.input.left, predicate),
                    E.Select(expr.input.right, predicate),
                )
            )
        # σp(π(x)): first partially evaluate p against literal outputs
        # (this statically prunes union branches whose discriminator —
        # e.g. the $type a query-view branch pins — contradicts p)...
        if isinstance(expr.input, E.Project):
            literal_bindings = {
                name: scalar
                for name, scalar in expr.input.outputs
                if isinstance(scalar, S.Lit)
            }
            if literal_bindings and (
                predicate.columns() & set(literal_bindings)
            ):
                predicate = simplify_predicate(
                    _partial_eval(
                        _substitute_columns(predicate, literal_bindings)
                    )
                )
                if predicate is S.TRUE:
                    return expr.input
                if predicate is S.FALSE:
                    return E.Values([])
            # ...then push through when p reads only pass-through columns.
            passthrough = {
                name
                for name, scalar in expr.input.outputs
                if isinstance(scalar, S.Col) and scalar.name == name
            }
            if predicate.columns() <= passthrough:
                return _rewrite(
                    E.Project(
                        E.Select(expr.input.input, predicate),
                        expr.input.outputs,
                    )
                )
        return E.Select(expr.input, predicate)

    if isinstance(expr, E.Project):
        # identity projection over known-output input
        if all(
            isinstance(s, S.Col) and s.name == name for name, s in expr.outputs
        ):
            inner_names = _output_names(expr.input)
            if inner_names is not None and list(expr.output_names) == list(
                inner_names
            ):
                return expr.input
        # π(π(x)) → π(x) with composed scalars
        if isinstance(expr.input, E.Project):
            inner = dict(expr.input.outputs)
            composed = []
            for name, scalar in expr.outputs:
                composed.append((name, _substitute_columns(scalar, inner)))
            return E.Project(expr.input.input, composed)
        return expr

    if isinstance(expr, E.Rename):
        mapping = {o: n for o, n in expr.mapping.items() if o != n}
        if not mapping:
            return expr.input
        return E.Rename(expr.input, mapping)

    if isinstance(expr, E.Join):
        return _recognize_equi_join(expr)

    if isinstance(expr, E.UnionAll):
        if _is_empty(expr.left):
            return expr.right
        if _is_empty(expr.right):
            return expr.left
        return expr

    if isinstance(expr, E.Distinct):
        if isinstance(expr.input, E.Distinct):
            return expr.input
        if _is_empty(expr.input):
            return E.Values([])
        return expr

    return expr


def _rewrite_children(expr: E.RelExpr) -> E.RelExpr:
    if isinstance(expr, E.Select):
        return E.Select(_rewrite(expr.input), expr.predicate)
    if isinstance(expr, E.Project):
        return E.Project(_rewrite(expr.input), expr.outputs)
    if isinstance(expr, E.Extend):
        return E.Extend(_rewrite(expr.input), expr.name, expr.scalar)
    if isinstance(expr, E.Join):
        return E.Join(
            _rewrite(expr.left),
            _rewrite(expr.right),
            expr.predicate,
            expr.kind,
            expr.right_prefix,
        )
    if isinstance(expr, E.UnionAll):
        return E.UnionAll(_rewrite(expr.left), _rewrite(expr.right))
    if isinstance(expr, E.Difference):
        return E.Difference(_rewrite(expr.left), _rewrite(expr.right))
    if isinstance(expr, E.Distinct):
        return E.Distinct(_rewrite(expr.input))
    if isinstance(expr, E.Rename):
        return E.Rename(_rewrite(expr.input), expr.mapping)
    if isinstance(expr, E.Aggregate):
        return E.Aggregate(_rewrite(expr.input), expr.group_by, expr.aggregations)
    if isinstance(expr, E.Sort):
        return E.Sort(_rewrite(expr.input), expr.keys)
    return expr


def _is_empty(expr: E.RelExpr) -> bool:
    return isinstance(expr, E.Values) and not expr.rows


def _recognize_equi_join(expr: E.Join) -> E.Join:
    """Turn ``Comparison('=', Col(a), Col(b))`` conjuncts of a join
    predicate into ``_JoinEq`` pairs when ``a`` and ``b`` provably read
    from opposite sides of the join.

    The join evaluator checks Comparisons against the *combined* row
    (left wins on collisions), so the rewrite is only safe when the
    sides are statically known and distinct: same-named columns, or two
    columns from the same side, keep their Comparison semantics.
    """
    left_names = _output_names(expr.left)
    right_names = _output_names(expr.right)
    if left_names is None or right_names is None:
        return expr
    left_set, right_set = set(left_names), set(right_names)

    def side_of(name: str):
        # Mirrors combined-row lookup order: left wins.
        if name in left_set:
            return "left"
        if name in right_set:
            return "right"
        return None

    operands = (
        list(expr.predicate.operands)
        if isinstance(expr.predicate, S.And)
        else [expr.predicate]
    )
    changed = False
    rewritten = []
    for operand in operands:
        if (
            isinstance(operand, S.Comparison)
            and operand.op == "="
            and isinstance(operand.left, S.Col)
            and isinstance(operand.right, S.Col)
            and operand.left.name != operand.right.name
        ):
            a, b = operand.left.name, operand.right.name
            sides = (side_of(a), side_of(b))
            if sides == ("left", "right"):
                rewritten.append(E._JoinEq(a, b))
                changed = True
                continue
            if sides == ("right", "left"):
                rewritten.append(E._JoinEq(b, a))
                changed = True
                continue
        rewritten.append(operand)
    if not changed:
        return expr
    return E.Join(
        expr.left,
        expr.right,
        S.conjunction(rewritten),
        expr.kind,
        expr.right_prefix,
    )


def _output_names(expr: E.RelExpr):
    """The exact output column list if statically known, else None."""
    if isinstance(expr, E.Project):
        return expr.output_names
    if isinstance(expr, E.Rename):
        inner = _output_names(expr.input)
        if inner is None:
            return None
        return tuple(expr.mapping.get(c, c) for c in inner)
    if isinstance(expr, (E.Distinct, E.Sort, E.Select)):
        return _output_names(expr.inputs()[0])
    return None


def _partial_eval(predicate: S.Predicate) -> S.Predicate:
    """Fold closed (column-free) sub-predicates to TRUE/FALSE."""
    if not isinstance(predicate, S.Predicate):
        return predicate
    if not predicate.columns():
        try:
            return S.TRUE if predicate.eval({}, None) else S.FALSE
        except Exception:  # noqa: BLE001 - leave unfoldable predicates be
            return predicate
    if isinstance(predicate, S.And):
        return S.And(*(_partial_eval(p) for p in predicate.operands))
    if isinstance(predicate, S.Or):
        return S.Or(*(_partial_eval(p) for p in predicate.operands))
    if isinstance(predicate, S.Not):
        return S.Not(_partial_eval(predicate.operand))
    return predicate


def simplify_predicate(predicate: S.Predicate) -> S.Predicate:
    """Constant-fold TRUE/FALSE through the boolean connectives."""
    if isinstance(predicate, S.And):
        operands = []
        for operand in predicate.operands:
            simplified = simplify_predicate(operand)
            if simplified is S.FALSE:
                return S.FALSE
            if simplified is S.TRUE:
                continue
            if isinstance(simplified, S.And):
                operands.extend(simplified.operands)
            else:
                operands.append(simplified)
        if not operands:
            return S.TRUE
        if len(operands) == 1:
            return operands[0]
        return S.And(*operands)
    if isinstance(predicate, S.Or):
        operands = []
        for operand in predicate.operands:
            simplified = simplify_predicate(operand)
            if simplified is S.TRUE:
                return S.TRUE
            if simplified is S.FALSE:
                continue
            operands.append(simplified)
        if not operands:
            return S.FALSE
        if len(operands) == 1:
            return operands[0]
        return S.Or(*operands)
    if isinstance(predicate, S.Not):
        inner = simplify_predicate(predicate.operand)
        if inner is S.TRUE:
            return S.FALSE
        if inner is S.FALSE:
            return S.TRUE
        if isinstance(inner, S.Not):
            return inner.operand
        return S.Not(inner)
    if isinstance(predicate, S.Comparison):
        if isinstance(predicate.left, S.Lit) and isinstance(predicate.right, S.Lit):
            result = predicate.eval({}, None)
            return S.TRUE if result else S.FALSE
    return predicate


def _substitute_columns(scalar: S.Scalar, bindings: dict[str, S.Scalar]) -> S.Scalar:
    """Replace column references by the scalars that produce them (used
    when fusing stacked projections)."""
    if isinstance(scalar, S.Col):
        return bindings.get(scalar.name, scalar)
    if isinstance(scalar, S.Lit) or isinstance(scalar, S._Bool):
        return scalar
    if isinstance(scalar, S.Func):
        return S.Func(
            scalar.name,
            [_substitute_columns(a, bindings) for a in scalar.args],
            scalar.fn,
            scalar.null_tolerant,
        )
    if isinstance(scalar, S.Arith):
        return S.Arith(
            scalar.op,
            _substitute_columns(scalar.left, bindings),
            _substitute_columns(scalar.right, bindings),
        )
    if isinstance(scalar, S.Comparison):
        return S.Comparison(
            scalar.op,
            _substitute_columns(scalar.left, bindings),
            _substitute_columns(scalar.right, bindings),
        )
    if isinstance(scalar, S.And):
        return S.And(*(_substitute_columns(p, bindings) for p in scalar.operands))
    if isinstance(scalar, S.Or):
        return S.Or(*(_substitute_columns(p, bindings) for p in scalar.operands))
    if isinstance(scalar, S.Not):
        return S.Not(_substitute_columns(scalar.operand, bindings))
    if isinstance(scalar, S.IsNull):
        return S.IsNull(
            _substitute_columns(scalar.operand, bindings), scalar.negated
        )
    if isinstance(scalar, S.In):
        return S.In(_substitute_columns(scalar.operand, bindings), scalar.values)
    if isinstance(scalar, S.Case):
        return S.Case(
            [
                (
                    _substitute_columns(p, bindings),
                    _substitute_columns(v, bindings),
                )
                for p, v in scalar.whens
            ],
            _substitute_columns(scalar.default, bindings),
        )
    return scalar


# ----------------------------------------------------------------------
# cost-based join ordering
# ----------------------------------------------------------------------
def optimize_with_report(
    expr: E.RelExpr,
    instance,
    schema=None,
    corrections=None,
    max_passes: int = 10,
) -> OptimizationReport:
    """Instance-aware optimization returning both the heuristic and the
    cost-based tree with their estimated costs.

    Any failure in the cost phase (unexpected tree shapes, statistics
    errors) falls back to the heuristic tree and bumps the
    ``query.optimizer.errors`` counter — cost-based planning must never
    make a query unrunnable.
    """
    heuristic = (
        _heuristic_fixpoint(expr, max_passes) if max_passes else expr
    )
    try:
        from repro.algebra.estimate import Estimator

        est = Estimator(instance, schema, corrections)
        chosen = _cost_walk(heuristic, est)
        heuristic_cost = plan_cost(heuristic, est)
        if chosen is heuristic or chosen == heuristic:
            return OptimizationReport(
                heuristic, heuristic, heuristic_cost, heuristic_cost
            )
        chosen_cost = plan_cost(chosen, est)
        # Re-estimation noise aside, never trade away a cheaper
        # heuristic tree (and keep fingerprints stable on ties).
        if not chosen_cost < heuristic_cost:
            return OptimizationReport(
                heuristic, heuristic, heuristic_cost, heuristic_cost
            )
        return OptimizationReport(
            heuristic, chosen, heuristic_cost, chosen_cost
        )
    except Exception:  # noqa: BLE001 - planning must never break queries
        _count_optimizer_error()
        return OptimizationReport(heuristic, heuristic, None, None)


def _count_optimizer_error() -> None:
    try:
        from repro.observability.metrics import registry
        from repro.observability.state import STATE

        if STATE.enabled:
            registry.counter("query.optimizer.errors").inc()
    except Exception:  # noqa: BLE001 - metrics are best-effort here
        pass


def plan_cost(expr: E.RelExpr, est) -> float:
    """Total estimated CPU cost of a tree under the ``COST`` weights.

    ``est`` is an :class:`repro.algebra.estimate.Estimator`; every
    operator contributes (input rows × per-operator weight), hash joins
    price build/probe/output sides separately, and the semi-join shape
    (Distinct right whose columns are exactly the join keys) is priced
    without an output term — which is what makes the search *place*
    semi-joins against the most selective side.
    """
    total = 0.0
    seen: set[int] = set()

    def walk(node: E.RelExpr) -> None:
        nonlocal total
        if id(node) in seen:
            return
        seen.add(id(node))
        for child in node.inputs():
            walk(child)
        rows = est.rows(node)
        if isinstance(node, E.Join):
            total += _join_step_cost(node, est)
        elif isinstance(node, E.Select):
            total += est.rows(node.input) * COST.pred_weight
        elif isinstance(node, (E.Scan, E.EntityScan, E.Values)):
            total += rows * COST.scan_weight
        elif isinstance(node, (E.Distinct, E.Aggregate, E.Difference)):
            total += (
                est.rows(node.inputs()[0]) * COST.build_weight
                + rows * COST.output_weight
            )
        elif isinstance(node, E.Sort):
            n = max(rows, 1.0)
            total += n * math.log2(n + 1.0) * COST.sort_weight
        else:  # Project/Extend/Rename/UnionAll and future operators
            total += rows * COST.output_weight

    walk(expr)
    return total


def _join_step_cost(join: E.Join, est) -> float:
    """Cost of one join node, excluding its subtrees."""
    from repro.algebra.compiler import _static_cols, equality_pairs

    left_rows = est.rows(join.left)
    right_rows = est.rows(join.right)
    out_rows = est.rows(join)
    pairs = equality_pairs(join.predicate)
    if pairs is None:  # nested loop over the cross product
        return (
            left_rows * right_rows * COST.pred_weight
            + out_rows * COST.output_weight
        )
    if not pairs:  # cross join
        return left_rows * COST.probe_weight + out_rows * COST.output_weight
    cost = (
        right_rows * COST.build_weight + left_rows * COST.probe_weight
    )
    # Semi-join shape: Distinct right over exactly the join keys never
    # materializes widened output rows (compiler fast path).
    right_cols = _static_cols(join.right)
    if isinstance(join.right, E.Distinct) and right_cols is not None and set(
        right_cols
    ) == {rcol for _, rcol, _ in pairs}:
        return cost
    return cost + out_rows * COST.output_weight


def mirror_join_fingerprint(expr: E.RelExpr) -> Optional[str]:
    """Fingerprint of the orientation-flipped twin of an inner
    equi-join, or ``None`` when ``expr`` has no commutable twin.

    Cardinality corrections recorded by the adaptive plan cache are
    keyed by subtree fingerprint, which is structural: ``A ⋈ B`` and
    ``B ⋈ A`` hash differently even though they have identical
    cardinality.  Without the mirror key, the join-order search can
    dodge a correction simply by flipping build/probe sides of the
    mis-estimated join — and needs a second divergence round to learn
    what it already measured.
    """
    from repro.algebra.compiler import equality_pairs

    if not isinstance(expr, E.Join) or expr.kind != "inner":
        return None
    if expr.right_prefix is not None:
        return None
    pairs = equality_pairs(expr.predicate)
    if pairs is None:
        return None
    flipped = [
        E.ValueJoinEq(rcol, lcol) if tolerant else E._JoinEq(rcol, lcol)
        for lcol, rcol, tolerant in pairs
    ]
    mirror = E.Join(
        expr.right, expr.left, S.conjunction(flipped), "inner", None
    )
    return mirror.fingerprint()


def _cost_walk(node: E.RelExpr, est) -> E.RelExpr:
    """Bottom-up walk that reorders every maximal commute-safe join
    region; non-region nodes are rebuilt only when a child changed."""
    if isinstance(node, E.Join):
        reordered = _reorder_region(node, est)
        if reordered is not None:
            return reordered
    children = [_cost_walk(child, est) for child in node.inputs()]
    return _replace_children(node, children)


def _replace_children(
    node: E.RelExpr, children: list[E.RelExpr]
) -> E.RelExpr:
    if all(new is old for new, old in zip(children, node.inputs())):
        return node
    if isinstance(node, E.Select):
        return E.Select(children[0], node.predicate)
    if isinstance(node, E.Project):
        return E.Project(children[0], node.outputs)
    if isinstance(node, E.Extend):
        return E.Extend(children[0], node.name, node.scalar)
    if isinstance(node, E.Join):
        return E.Join(
            children[0], children[1], node.predicate, node.kind,
            node.right_prefix,
        )
    if isinstance(node, E.UnionAll):
        return E.UnionAll(children[0], children[1])
    if isinstance(node, E.Difference):
        return E.Difference(children[0], children[1])
    if isinstance(node, E.Distinct):
        return E.Distinct(children[0])
    if isinstance(node, E.Rename):
        return E.Rename(children[0], node.mapping)
    if isinstance(node, E.Aggregate):
        return E.Aggregate(children[0], node.group_by, node.aggregations)
    if isinstance(node, E.Sort):
        return E.Sort(children[0], node.keys)
    return node


class _JoinClass:
    """One equivalence class of join columns: all member ``(leaf, col)``
    copies are constrained equal by the region's original predicate.

    ``by_leaf`` maps leaf index → column name (one member per leaf —
    regions where a class touches two columns of the same leaf bail
    out); ``strict`` records whether any contributing edge was the
    null-rejecting ``_JoinEq``, in which case every spanning atom the
    rebuilt tree emits may be strict too (connectivity through a strict
    edge already forces all copies non-null)."""

    __slots__ = ("by_leaf", "strict", "mask")

    def __init__(self) -> None:
        self.by_leaf: dict[int, str] = {}
        self.strict = False
        self.mask = 0

    def name_for(self, mask: int) -> str:
        """The member column on the lowest-index leaf inside ``mask``
        (deterministic, and consistent with left-wins reads)."""
        for leaf in sorted(self.by_leaf):
            if mask & (1 << leaf):
                return self.by_leaf[leaf]
        raise KeyError("class does not span mask")


def _reorder_region(root: E.Join, est) -> Optional[E.RelExpr]:
    """Flatten a maximal inner-equi-join region under ``root``, prove
    the reorder safe, and return the cheapest enumerated tree — or
    ``None`` when the region must stay in its written order.

    Safety model (see docs/OPTIMIZER.md): original ``_JoinEq`` /
    ``ValueJoinEq`` edges are grounded to the *leftmost* leaf owning
    each column (matching the evaluator's left-wins combined-row
    reads), grounded endpoints are unioned into equivalence classes,
    and the rebuilt tree emits one atom per class at every join whose
    two sides both contain class members.  That keeps every pair of
    same-named copies provably equal at all times, so which copy a
    collision keeps — in any order — cannot change the result.  Any
    shape the proof does not cover (outer joins, prefixed joins, theta
    predicates, leaves with unknowable columns, a class touching one
    leaf twice, ambiguous copies never constrained equal) bails out.
    """
    from repro.algebra.compiler import _static_cols, equality_pairs

    leaves: list[E.RelExpr] = []
    raw_edges: list[tuple[int, int, int, str, str, bool]] = []

    def flatten(node: E.RelExpr) -> None:
        if (
            isinstance(node, E.Join)
            and node.kind == "inner"
            and node.right_prefix is None
        ):
            pairs = equality_pairs(node.predicate)
            if pairs is not None:
                lo = len(leaves)
                flatten(node.left)
                mid = len(leaves)
                flatten(node.right)
                hi = len(leaves)
                for lcol, rcol, tolerant in pairs:
                    raw_edges.append((lo, mid, hi, lcol, rcol, tolerant))
                return
        leaves.append(node)

    flatten(root)
    n = len(leaves)
    if n < 2 or n > COST.max_region_leaves:
        return None

    # Resolve each leaf's output column set.  Statically known shapes
    # are exact; bare scans use the statistics layer's seen columns,
    # which cover every current row of the instance being planned for.
    leaf_cols: list[frozenset[str]] = []
    for leaf in leaves:
        static = _static_cols(leaf)
        if static is not None:
            leaf_cols.append(frozenset(static))
        elif isinstance(leaf, E.Scan):
            stats = est.instance.relation_stats(leaf.relation)
            leaf_cols.append(frozenset(stats.columns))
        else:
            return None

    # Union-find over (leaf, column) copies.
    parent: dict[tuple[int, str], tuple[int, str]] = {}

    def find(item: tuple[int, str]) -> tuple[int, str]:
        parent.setdefault(item, item)
        while parent[item] != item:
            parent[item] = parent[parent[item]]
            item = parent[item]
        return item

    grounded: list[tuple[tuple[int, str], tuple[int, str], bool]] = []
    for lo, mid, hi, lcol, rcol, tolerant in raw_edges:
        lown = next(
            (i for i in range(lo, mid) if lcol in leaf_cols[i]), None
        )
        rown = next(
            (i for i in range(mid, hi) if rcol in leaf_cols[i]), None
        )
        if lown is None or rown is None:
            return None
        left_item, right_item = (lown, lcol), (rown, rcol)
        root_l, root_r = find(left_item), find(right_item)
        parent[root_l] = root_r
        grounded.append((left_item, right_item, tolerant))

    # Collision safety: every column owned by two or more leaves must
    # have ALL its copies constrained into one class, else reordering
    # could change which (unequal) copy the merge keeps.
    owners: dict[str, list[int]] = {}
    for i, cols in enumerate(leaf_cols):
        for name in cols:
            owners.setdefault(name, []).append(i)
    for name, holder in owners.items():
        if len(holder) > 1:
            roots = {find((i, name)) for i in holder}
            if len(roots) > 1:
                return None

    classes: dict[tuple[int, str], _JoinClass] = {}
    for item in list(parent):
        cls = classes.setdefault(find(item), _JoinClass())
        leaf, name = item
        if leaf in cls.by_leaf and cls.by_leaf[leaf] != name:
            return None  # class touches two columns of one leaf
        cls.by_leaf[leaf] = name
        cls.mask |= 1 << leaf
    for left_item, right_item, tolerant in grounded:
        if not tolerant:
            classes[find(left_item)].strict = True
    class_list = [c for c in classes.values() if len(c.by_leaf) > 1]

    new_leaves = [_cost_walk(leaf, est) for leaf in leaves]
    if n <= COST.dp_max_leaves:
        return _dp_order(new_leaves, class_list, est)
    return _greedy_order(new_leaves, class_list, est)


def _join_subsets(
    left_tree: E.RelExpr,
    left_mask: int,
    right_tree: E.RelExpr,
    right_mask: int,
    classes: list[_JoinClass],
) -> E.Join:
    """Join two enumerated subsets, emitting one atom per equivalence
    class that spans both sides (cross join when none does)."""
    atoms: list[S.Predicate] = []
    for cls in classes:
        if cls.mask & left_mask and cls.mask & right_mask:
            lname = cls.name_for(left_mask)
            rname = cls.name_for(right_mask)
            atom = (
                E._JoinEq(lname, rname)
                if cls.strict
                else E.ValueJoinEq(lname, rname)
            )
            atoms.append(atom)
    return E.Join(
        left_tree, right_tree, S.conjunction(atoms), "inner", None
    )


def _dp_order(
    leaves: list[E.RelExpr], classes: list[_JoinClass], est
) -> E.RelExpr:
    """Exhaustive DP over subsets (DPsub).  Ordered (left, right)
    splits are both enumerated, so build-side choice is part of the
    search; cross joins are permitted and priced out naturally."""
    n = len(leaves)
    best: dict[int, tuple[float, E.RelExpr]] = {}
    for i, leaf in enumerate(leaves):
        best[1 << i] = (plan_cost(leaf, est), leaf)
    for mask in range(3, 1 << n):
        if mask & (mask - 1) == 0:
            continue  # singleton
        entry: Optional[tuple[float, E.RelExpr]] = None
        sub = (mask - 1) & mask
        while sub:
            rest = mask ^ sub
            left = best.get(sub)
            right = best.get(rest)
            if left is not None and right is not None:
                joined = _join_subsets(
                    left[1], sub, right[1], rest, classes
                )
                cost = left[0] + right[0] + _join_step_cost(joined, est)
                if entry is None or cost < entry[0]:
                    entry = (cost, joined)
            sub = (sub - 1) & mask
        assert entry is not None
        best[mask] = entry
    return best[(1 << n) - 1][1]


def _greedy_order(
    leaves: list[E.RelExpr], classes: list[_JoinClass], est
) -> E.RelExpr:
    """Greedy min-est-rows for regions too large for DP: repeatedly
    join the pair of components with the smallest estimated output,
    preferring connected pairs over cross products."""
    components: list[tuple[int, E.RelExpr]] = [
        (1 << i, leaf) for i, leaf in enumerate(leaves)
    ]
    while len(components) > 1:
        best_pick = None  # (connected_rank, rows, i, j, joined)
        for i in range(len(components)):
            for j in range(len(components)):
                if i == j:
                    continue
                mask_i, tree_i = components[i]
                mask_j, tree_j = components[j]
                connected = any(
                    cls.mask & mask_i and cls.mask & mask_j
                    for cls in classes
                )
                joined = _join_subsets(
                    tree_i, mask_i, tree_j, mask_j, classes
                )
                rank = (
                    0 if connected else 1,
                    est.rows(joined),
                    _join_step_cost(joined, est),
                    i,
                    j,
                )
                if best_pick is None or rank < best_pick[0]:
                    best_pick = (rank, i, j, joined)
        _, i, j, joined = best_pick
        merged_mask = components[i][0] | components[j][0]
        components = [
            c for k, c in enumerate(components) if k not in (i, j)
        ]
        components.append((merged_mask, joined))
    return components[0][1]
