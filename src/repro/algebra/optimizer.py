"""Algebraic rewriting of generated transformations.

TransGen's output is systematic rather than minimal (the paper notes
generating *efficient* transformations "is likely to expose a wealth of
optimization opportunities", Section 4).  This optimizer applies the
classical safe rewrites:

* cascade and fuse selections (σp(σq(x)) → σp∧q(x));
* push selections through projections/extends when the predicate only
  reads pass-through columns, and into union branches;
* fuse adjacent projections;
* drop identity projections and empty renames;
* simplify predicates (TRUE/FALSE absorption);
* eliminate union branches that are provably empty (σFALSE);
* recognize plain ``Comparison('=', Col, Col)`` conjuncts in join
  predicates as equi-join pairs (``_JoinEq``) when the two columns
  provably come from opposite sides, so hand-written joins take the
  executor's hash-join path.

Rewrites run to a fixpoint; each is semantics-preserving under the bag
semantics of the evaluator.
"""

from __future__ import annotations

from repro.algebra import expressions as E
from repro.algebra import scalars as S


def optimize(expr: E.RelExpr, max_passes: int = 10) -> E.RelExpr:
    """Rewrite ``expr`` to a fixpoint of the rule set."""
    current = expr
    for _ in range(max_passes):
        rewritten = _rewrite(current)
        if rewritten == current:
            return rewritten
        current = rewritten
    return current


def _rewrite(expr: E.RelExpr) -> E.RelExpr:
    expr = _rewrite_children(expr)

    if isinstance(expr, E.Select):
        predicate = simplify_predicate(expr.predicate)
        if predicate is S.TRUE:
            return expr.input
        if predicate is S.FALSE:
            return E.Values([])
        # σp(σq(x)) → σ(p ∧ q)(x)
        if isinstance(expr.input, E.Select):
            return _rewrite(
                E.Select(
                    expr.input.input,
                    S.conjunction([expr.input.predicate, predicate]),
                )
            )
        # σp(δ(x)) → δ(σp(x))
        if isinstance(expr.input, E.Distinct):
            return _rewrite(
                E.Distinct(E.Select(expr.input.input, predicate))
            )
        # σp(x ∪ y) → σp(x) ∪ σp(y)
        if isinstance(expr.input, E.UnionAll):
            return _rewrite(
                E.UnionAll(
                    E.Select(expr.input.left, predicate),
                    E.Select(expr.input.right, predicate),
                )
            )
        # σp(π(x)): first partially evaluate p against literal outputs
        # (this statically prunes union branches whose discriminator —
        # e.g. the $type a query-view branch pins — contradicts p)...
        if isinstance(expr.input, E.Project):
            literal_bindings = {
                name: scalar
                for name, scalar in expr.input.outputs
                if isinstance(scalar, S.Lit)
            }
            if literal_bindings and (
                predicate.columns() & set(literal_bindings)
            ):
                predicate = simplify_predicate(
                    _partial_eval(
                        _substitute_columns(predicate, literal_bindings)
                    )
                )
                if predicate is S.TRUE:
                    return expr.input
                if predicate is S.FALSE:
                    return E.Values([])
            # ...then push through when p reads only pass-through columns.
            passthrough = {
                name
                for name, scalar in expr.input.outputs
                if isinstance(scalar, S.Col) and scalar.name == name
            }
            if predicate.columns() <= passthrough:
                return _rewrite(
                    E.Project(
                        E.Select(expr.input.input, predicate),
                        expr.input.outputs,
                    )
                )
        return E.Select(expr.input, predicate)

    if isinstance(expr, E.Project):
        # identity projection over known-output input
        if all(
            isinstance(s, S.Col) and s.name == name for name, s in expr.outputs
        ):
            inner_names = _output_names(expr.input)
            if inner_names is not None and list(expr.output_names) == list(
                inner_names
            ):
                return expr.input
        # π(π(x)) → π(x) with composed scalars
        if isinstance(expr.input, E.Project):
            inner = dict(expr.input.outputs)
            composed = []
            for name, scalar in expr.outputs:
                composed.append((name, _substitute_columns(scalar, inner)))
            return E.Project(expr.input.input, composed)
        return expr

    if isinstance(expr, E.Rename):
        mapping = {o: n for o, n in expr.mapping.items() if o != n}
        if not mapping:
            return expr.input
        return E.Rename(expr.input, mapping)

    if isinstance(expr, E.Join):
        return _recognize_equi_join(expr)

    if isinstance(expr, E.UnionAll):
        if _is_empty(expr.left):
            return expr.right
        if _is_empty(expr.right):
            return expr.left
        return expr

    if isinstance(expr, E.Distinct):
        if isinstance(expr.input, E.Distinct):
            return expr.input
        if _is_empty(expr.input):
            return E.Values([])
        return expr

    return expr


def _rewrite_children(expr: E.RelExpr) -> E.RelExpr:
    if isinstance(expr, E.Select):
        return E.Select(_rewrite(expr.input), expr.predicate)
    if isinstance(expr, E.Project):
        return E.Project(_rewrite(expr.input), expr.outputs)
    if isinstance(expr, E.Extend):
        return E.Extend(_rewrite(expr.input), expr.name, expr.scalar)
    if isinstance(expr, E.Join):
        return E.Join(
            _rewrite(expr.left),
            _rewrite(expr.right),
            expr.predicate,
            expr.kind,
            expr.right_prefix,
        )
    if isinstance(expr, E.UnionAll):
        return E.UnionAll(_rewrite(expr.left), _rewrite(expr.right))
    if isinstance(expr, E.Difference):
        return E.Difference(_rewrite(expr.left), _rewrite(expr.right))
    if isinstance(expr, E.Distinct):
        return E.Distinct(_rewrite(expr.input))
    if isinstance(expr, E.Rename):
        return E.Rename(_rewrite(expr.input), expr.mapping)
    if isinstance(expr, E.Aggregate):
        return E.Aggregate(_rewrite(expr.input), expr.group_by, expr.aggregations)
    if isinstance(expr, E.Sort):
        return E.Sort(_rewrite(expr.input), expr.keys)
    return expr


def _is_empty(expr: E.RelExpr) -> bool:
    return isinstance(expr, E.Values) and not expr.rows


def _recognize_equi_join(expr: E.Join) -> E.Join:
    """Turn ``Comparison('=', Col(a), Col(b))`` conjuncts of a join
    predicate into ``_JoinEq`` pairs when ``a`` and ``b`` provably read
    from opposite sides of the join.

    The join evaluator checks Comparisons against the *combined* row
    (left wins on collisions), so the rewrite is only safe when the
    sides are statically known and distinct: same-named columns, or two
    columns from the same side, keep their Comparison semantics.
    """
    left_names = _output_names(expr.left)
    right_names = _output_names(expr.right)
    if left_names is None or right_names is None:
        return expr
    left_set, right_set = set(left_names), set(right_names)

    def side_of(name: str):
        # Mirrors combined-row lookup order: left wins.
        if name in left_set:
            return "left"
        if name in right_set:
            return "right"
        return None

    operands = (
        list(expr.predicate.operands)
        if isinstance(expr.predicate, S.And)
        else [expr.predicate]
    )
    changed = False
    rewritten = []
    for operand in operands:
        if (
            isinstance(operand, S.Comparison)
            and operand.op == "="
            and isinstance(operand.left, S.Col)
            and isinstance(operand.right, S.Col)
            and operand.left.name != operand.right.name
        ):
            a, b = operand.left.name, operand.right.name
            sides = (side_of(a), side_of(b))
            if sides == ("left", "right"):
                rewritten.append(E._JoinEq(a, b))
                changed = True
                continue
            if sides == ("right", "left"):
                rewritten.append(E._JoinEq(b, a))
                changed = True
                continue
        rewritten.append(operand)
    if not changed:
        return expr
    return E.Join(
        expr.left,
        expr.right,
        S.conjunction(rewritten),
        expr.kind,
        expr.right_prefix,
    )


def _output_names(expr: E.RelExpr):
    """The exact output column list if statically known, else None."""
    if isinstance(expr, E.Project):
        return expr.output_names
    if isinstance(expr, E.Rename):
        inner = _output_names(expr.input)
        if inner is None:
            return None
        return tuple(expr.mapping.get(c, c) for c in inner)
    if isinstance(expr, (E.Distinct, E.Sort, E.Select)):
        return _output_names(expr.inputs()[0])
    return None


def _partial_eval(predicate: S.Predicate) -> S.Predicate:
    """Fold closed (column-free) sub-predicates to TRUE/FALSE."""
    if not isinstance(predicate, S.Predicate):
        return predicate
    if not predicate.columns():
        try:
            return S.TRUE if predicate.eval({}, None) else S.FALSE
        except Exception:  # noqa: BLE001 - leave unfoldable predicates be
            return predicate
    if isinstance(predicate, S.And):
        return S.And(*(_partial_eval(p) for p in predicate.operands))
    if isinstance(predicate, S.Or):
        return S.Or(*(_partial_eval(p) for p in predicate.operands))
    if isinstance(predicate, S.Not):
        return S.Not(_partial_eval(predicate.operand))
    return predicate


def simplify_predicate(predicate: S.Predicate) -> S.Predicate:
    """Constant-fold TRUE/FALSE through the boolean connectives."""
    if isinstance(predicate, S.And):
        operands = []
        for operand in predicate.operands:
            simplified = simplify_predicate(operand)
            if simplified is S.FALSE:
                return S.FALSE
            if simplified is S.TRUE:
                continue
            if isinstance(simplified, S.And):
                operands.extend(simplified.operands)
            else:
                operands.append(simplified)
        if not operands:
            return S.TRUE
        if len(operands) == 1:
            return operands[0]
        return S.And(*operands)
    if isinstance(predicate, S.Or):
        operands = []
        for operand in predicate.operands:
            simplified = simplify_predicate(operand)
            if simplified is S.TRUE:
                return S.TRUE
            if simplified is S.FALSE:
                continue
            operands.append(simplified)
        if not operands:
            return S.FALSE
        if len(operands) == 1:
            return operands[0]
        return S.Or(*operands)
    if isinstance(predicate, S.Not):
        inner = simplify_predicate(predicate.operand)
        if inner is S.TRUE:
            return S.FALSE
        if inner is S.FALSE:
            return S.TRUE
        if isinstance(inner, S.Not):
            return inner.operand
        return S.Not(inner)
    if isinstance(predicate, S.Comparison):
        if isinstance(predicate.left, S.Lit) and isinstance(predicate.right, S.Lit):
            result = predicate.eval({}, None)
            return S.TRUE if result else S.FALSE
    return predicate


def _substitute_columns(scalar: S.Scalar, bindings: dict[str, S.Scalar]) -> S.Scalar:
    """Replace column references by the scalars that produce them (used
    when fusing stacked projections)."""
    if isinstance(scalar, S.Col):
        return bindings.get(scalar.name, scalar)
    if isinstance(scalar, S.Lit) or isinstance(scalar, S._Bool):
        return scalar
    if isinstance(scalar, S.Func):
        return S.Func(
            scalar.name,
            [_substitute_columns(a, bindings) for a in scalar.args],
            scalar.fn,
            scalar.null_tolerant,
        )
    if isinstance(scalar, S.Arith):
        return S.Arith(
            scalar.op,
            _substitute_columns(scalar.left, bindings),
            _substitute_columns(scalar.right, bindings),
        )
    if isinstance(scalar, S.Comparison):
        return S.Comparison(
            scalar.op,
            _substitute_columns(scalar.left, bindings),
            _substitute_columns(scalar.right, bindings),
        )
    if isinstance(scalar, S.And):
        return S.And(*(_substitute_columns(p, bindings) for p in scalar.operands))
    if isinstance(scalar, S.Or):
        return S.Or(*(_substitute_columns(p, bindings) for p in scalar.operands))
    if isinstance(scalar, S.Not):
        return S.Not(_substitute_columns(scalar.operand, bindings))
    if isinstance(scalar, S.IsNull):
        return S.IsNull(
            _substitute_columns(scalar.operand, bindings), scalar.negated
        )
    if isinstance(scalar, S.In):
        return S.In(_substitute_columns(scalar.operand, bindings), scalar.values)
    if isinstance(scalar, S.Case):
        return S.Case(
            [
                (
                    _substitute_columns(p, bindings),
                    _substitute_columns(v, bindings),
                )
                for p, v in scalar.whens
            ],
            _substitute_columns(scalar.default, bindings),
        )
    return scalar
