"""Relational algebra over universal-metamodel instances.

This is the engine's transformation language: TransGen compiles mapping
constraints into these expressions (the paper's Figure 3 query is one),
the mapping runtime evaluates them, and printers render them as
SQL-like text.

Two expression families:

* **scalar expressions** (:mod:`repro.algebra.scalars`): column
  references, literals, functions, ``CASE``, comparisons, boolean
  connectives, ``IS NULL``, and the Entity SQL ``IS OF`` type test;
* **relational expressions** (:mod:`repro.algebra.expressions`): scan,
  entity scan, select, project, extend, join (inner/left-outer),
  union-all, difference, distinct, rename, aggregate, sort, values.
"""

from repro.algebra.scalars import (
    Scalar,
    Col,
    Lit,
    Func,
    Arith,
    Case,
    Predicate,
    Comparison,
    And,
    Or,
    Not,
    IsNull,
    IsOf,
    In,
    TRUE,
    FALSE,
    col,
    lit,
    eq,
    ne,
    lt,
    le,
    gt,
    ge,
    conjunction,
)
from repro.algebra.expressions import (
    RelExpr,
    Scan,
    EntityScan,
    Values,
    Select,
    Project,
    Extend,
    Join,
    UnionAll,
    Difference,
    Distinct,
    Rename,
    Aggregate,
    Sort,
    project_names,
    eq_join,
    ValueJoinEq,
)
from repro.algebra.evaluator import (
    ENGINES,
    EvalContext,
    evaluate,
    evaluate_interpreted,
    get_default_engine,
    set_default_engine,
)
from repro.algebra.compiler import (
    CompiledPlan,
    PlanNode,
    PlanProfile,
    compile_plan,
)
from repro.algebra.explain import (
    ExplainAnalyzeResult,
    ExplainResult,
    explain,
    explain_analyze,
)
from repro.algebra.plan_cache import (
    GLOBAL_PLAN_CACHE,
    GLOBAL_VECTOR_PLAN_CACHE,
    PlanCache,
    cached_plan,
    cached_vector_plan,
    clear_plan_cache,
    plan_cache_stats,
    vector_plan_cache_stats,
)
from repro.algebra.vectorized import VectorizedPlan, compile_vector_plan
from repro.algebra.printer import node_label, render_plan, to_text
from repro.algebra.sql import to_sql
from repro.algebra.optimizer import optimize

__all__ = [
    "Scalar", "Col", "Lit", "Func", "Arith", "Case", "Predicate",
    "Comparison", "And", "Or", "Not", "IsNull", "IsOf", "In",
    "TRUE", "FALSE", "col", "lit", "eq", "ne", "lt", "le", "gt", "ge",
    "conjunction",
    "RelExpr", "Scan", "EntityScan", "Values", "Select", "Project",
    "Extend", "Join", "UnionAll", "Difference", "Distinct", "Rename",
    "Aggregate", "Sort", "project_names", "eq_join", "ValueJoinEq",
    "evaluate", "evaluate_interpreted", "EvalContext", "ENGINES",
    "get_default_engine", "set_default_engine",
    "CompiledPlan", "compile_plan", "PlanCache", "GLOBAL_PLAN_CACHE",
    "cached_plan", "clear_plan_cache", "plan_cache_stats",
    "VectorizedPlan", "compile_vector_plan", "GLOBAL_VECTOR_PLAN_CACHE",
    "cached_vector_plan", "vector_plan_cache_stats",
    "PlanNode", "PlanProfile",
    "explain", "explain_analyze", "ExplainResult", "ExplainAnalyzeResult",
    "to_text", "to_sql", "node_label", "render_plan", "optimize",
]
