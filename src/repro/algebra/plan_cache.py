"""LRU cache of compiled plans, keyed on structural fingerprints.

The mapping runtime executes the same generated views over and over —
every query against a mediated schema unfolds to the same algebra tree,
every exchange re-runs the same TransGen script.  Compiling those trees
once and memoizing the result turns the per-call cost into a dict
lookup.  Keys are :meth:`RelExpr.fingerprint` digests (structural, so
two independently-built but equal trees share one entry); a hit is
collision-guarded by a structural ``==`` check against the cached
plan's expression, so a digest collision degrades to a miss instead of
returning the wrong plan.

Cache behavior is observable through the PR-2 metrics registry:
``query.plan_cache.hits`` / ``.misses`` / ``.evictions`` counters and a
``query.plan_cache.size`` gauge, plus the ``query.compile`` span that
:func:`repro.algebra.compiler.compile_plan` records on every actual
compilation — a warm cache shows hits climbing while the compile span
count stays flat.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from repro.algebra.compiler import CompiledPlan, compile_plan
from repro.algebra.expressions import RelExpr
from repro.observability.metrics import registry
from repro.observability.state import STATE

DEFAULT_CAPACITY = 256


class PlanCache:
    """Thread-safe LRU cache mapping expression fingerprints to
    executable plans.

    ``compile_fn`` decides what a cache entry *is*: the default builds
    row-pipeline :class:`CompiledPlan` objects; the vectorized engine's
    cache (:data:`GLOBAL_VECTOR_PLAN_CACHE`) builds
    :class:`~repro.algebra.vectorized.VectorizedPlan` objects through
    the same LRU/metrics machinery.  Both plan kinds share the
    ``expr``/``fingerprint`` attribute surface the cache relies on.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, compile_fn=None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._compile = compile_fn if compile_fn is not None else compile_plan
        self._plans: "OrderedDict[str, CompiledPlan]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, expr: RelExpr) -> CompiledPlan:
        """The compiled plan for ``expr``, compiling on miss."""
        return self.lookup(expr)[0]

    def lookup(self, expr: RelExpr) -> tuple[CompiledPlan, bool]:
        """``(plan, cache_hit)`` — like :meth:`get`, but telling the
        caller whether the plan was already cached (the query log
        records hit/miss per execution)."""
        fingerprint = expr.fingerprint()
        with self._lock:
            cached = self._plans.get(fingerprint)
            if cached is not None and cached.expr == expr:
                self._plans.move_to_end(fingerprint)
                self.hits += 1
                if STATE.enabled:
                    registry.counter("query.plan_cache.hits").inc()
                return cached, True
        # Compile outside the lock: compilation is pure and the worst
        # case of a race is one redundant compile.
        plan = self._compile(expr, fingerprint)
        with self._lock:
            self.misses += 1
            self._plans[fingerprint] = plan
            self._plans.move_to_end(fingerprint)
            evicted = 0
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                evicted += 1
            self.evictions += evicted
            if STATE.enabled:
                registry.counter("query.plan_cache.misses").inc()
                if evicted:
                    registry.counter("query.plan_cache.evictions").inc(evicted)
                registry.gauge("query.plan_cache.size").set(len(self._plans))
        return plan, False

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, expr: RelExpr) -> bool:
        with self._lock:
            cached = self._plans.get(expr.fingerprint())
        return cached is not None and cached.expr == expr

    def clear(self) -> None:
        """Drop every cached plan and reset the statistics (the cache
        holds no references into instances, so invalidation is only
        needed when function *semantics* behind a ``Func`` name change)."""
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            if STATE.enabled:
                registry.gauge("query.plan_cache.size").set(0)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "size": len(self._plans),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


def _compile_vector(expr: RelExpr, fingerprint: str):
    from repro.algebra.vectorized import compile_vector_plan

    return compile_vector_plan(expr, fingerprint)


#: Process-wide cache used by the compiled (row-pipeline) engine.
GLOBAL_PLAN_CACHE = PlanCache()

#: Process-wide cache used by the vectorized (columnar) engine.  A
#: separate cache because the two engines lower the same expression to
#: different executables; both report through the same
#: ``query.plan_cache.*`` metric names.
GLOBAL_VECTOR_PLAN_CACHE = PlanCache(compile_fn=_compile_vector)


def cached_plan(expr: RelExpr) -> CompiledPlan:
    """Fetch ``expr``'s row-engine plan from the process-wide cache."""
    return GLOBAL_PLAN_CACHE.get(expr)


def cached_vector_plan(expr: RelExpr):
    """Fetch ``expr``'s vectorized plan from the process-wide cache."""
    return GLOBAL_VECTOR_PLAN_CACHE.get(expr)


def clear_plan_cache() -> None:
    GLOBAL_PLAN_CACHE.clear()
    GLOBAL_VECTOR_PLAN_CACHE.clear()


def plan_cache_stats() -> dict[str, int]:
    return GLOBAL_PLAN_CACHE.stats()


def vector_plan_cache_stats() -> dict[str, int]:
    return GLOBAL_VECTOR_PLAN_CACHE.stats()
