"""LRU cache of compiled plans, keyed on structural fingerprints.

The mapping runtime executes the same generated views over and over —
every query against a mediated schema unfolds to the same algebra tree,
every exchange re-runs the same TransGen script.  Compiling those trees
once and memoizing the result turns the per-call cost into a dict
lookup.  Keys are :meth:`RelExpr.fingerprint` digests (structural, so
two independently-built but equal trees share one entry); a hit is
collision-guarded by a structural ``==`` check against the cached
plan's expression, so a digest collision degrades to a miss instead of
returning the wrong plan.

Cache behavior is observable through the PR-2 metrics registry:
``query.plan_cache.hits`` / ``.misses`` / ``.evictions`` counters and a
``query.plan_cache.size`` gauge, plus the ``query.compile`` span that
:func:`repro.algebra.compiler.compile_plan` records on every actual
compilation — a warm cache shows hits climbing while the compile span
count stays flat.

On top of the fingerprint-keyed compile cache sits an *adaptive* layer
(:meth:`PlanCache.adaptive_lookup`): entries keyed by ``(fingerprint,
instance stats epoch)`` hold the cost-based optimizer's chosen tree, so
statistics drift re-plans instead of reusing a stale join order, and
:meth:`PlanCache.note_divergence` closes the feedback loop — a plan
whose estimate↔actual divergence is flagged by ``EXPLAIN ANALYZE`` /
the query log is evicted and re-optimized with actuals-corrected
cardinalities on the next execution (bounded by ``COST.max_reopts``).
Evictions are attributed by reason through
``query.plan_cache.evictions.{lru,epoch,reopt}`` and re-planning
through ``query.reopt.scheduled`` / ``query.reopt.applied``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from repro.algebra.compiler import CompiledPlan, compile_plan
from repro.algebra.expressions import RelExpr
from repro.observability.metrics import registry
from repro.observability.state import STATE

DEFAULT_CAPACITY = 256

_EVICTION_REASONS = ("lru", "epoch", "reopt")


class _AdaptiveEntry:
    """One cost-optimized plan: the source expression it answers, the
    plan compiled from the optimizer's chosen tree, and both costs for
    ``EXPLAIN`` rendering."""

    __slots__ = ("source", "plan", "chosen_cost", "heuristic_cost",
                 "reordered")

    def __init__(self, source, plan, report):
        self.source = source
        self.plan = plan
        self.chosen_cost = report.chosen_cost
        self.heuristic_cost = report.heuristic_cost
        self.reordered = report.reordered


class _Feedback:
    """Actuals learned about one source fingerprint: per-subtree
    observed row counts and how many re-optimizations they triggered."""

    __slots__ = ("corrections", "reopts")

    def __init__(self):
        self.corrections: dict[str, float] = {}
        self.reopts = 0


class PlanCache:
    """Thread-safe LRU cache mapping expression fingerprints to
    executable plans.

    ``compile_fn`` decides what a cache entry *is*: the default builds
    row-pipeline :class:`CompiledPlan` objects; the vectorized engine's
    cache (:data:`GLOBAL_VECTOR_PLAN_CACHE`) builds
    :class:`~repro.algebra.vectorized.VectorizedPlan` objects through
    the same LRU/metrics machinery.  Both plan kinds share the
    ``expr``/``fingerprint`` attribute surface the cache relies on.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, compile_fn=None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._compile = compile_fn if compile_fn is not None else compile_plan
        self._plans: "OrderedDict[str, CompiledPlan]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.evictions_by_reason = {r: 0 for r in _EVICTION_REASONS}
        # Adaptive layer: (fingerprint, stats epoch) → optimized entry,
        # an index from fingerprint to its live key, and the per-query
        # re-optimization feedback.
        self._opt: "OrderedDict[tuple, _AdaptiveEntry]" = OrderedDict()
        self._opt_index: dict[str, tuple] = {}
        self._feedback: dict[str, _Feedback] = {}
        self.opt_hits = 0
        self.opt_misses = 0
        self.reopts = 0

    def _note_eviction(self, reason: str, count: int = 1) -> None:
        """Attribute evictions by reason (caller holds the lock)."""
        self.evictions += count
        self.evictions_by_reason[reason] += count
        if STATE.enabled:
            registry.counter("query.plan_cache.evictions").inc(count)
            registry.counter(
                f"query.plan_cache.evictions.{reason}"
            ).inc(count)
            from repro.observability.journal import JOURNAL

            JOURNAL.record(
                "plan_cache.eviction", reason=reason, count=count
            )

    def get(self, expr: RelExpr) -> CompiledPlan:
        """The compiled plan for ``expr``, compiling on miss."""
        return self.lookup(expr)[0]

    def lookup(self, expr: RelExpr) -> tuple[CompiledPlan, bool]:
        """``(plan, cache_hit)`` — like :meth:`get`, but telling the
        caller whether the plan was already cached (the query log
        records hit/miss per execution)."""
        fingerprint = expr.fingerprint()
        with self._lock:
            cached = self._plans.get(fingerprint)
            if cached is not None and cached.expr == expr:
                self._plans.move_to_end(fingerprint)
                self.hits += 1
                if STATE.enabled:
                    registry.counter("query.plan_cache.hits").inc()
                return cached, True
        # Compile outside the lock: compilation is pure and the worst
        # case of a race is one redundant compile.
        plan = self._compile(expr, fingerprint)
        with self._lock:
            self.misses += 1
            self._plans[fingerprint] = plan
            self._plans.move_to_end(fingerprint)
            evicted = 0
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                evicted += 1
            if evicted:
                self._note_eviction("lru", evicted)
            if STATE.enabled:
                registry.counter("query.plan_cache.misses").inc()
                registry.gauge("query.plan_cache.size").set(len(self._plans))
        return plan, False

    # ------------------------------------------------------------------
    # adaptive (cost-based) layer
    # ------------------------------------------------------------------
    def adaptive_lookup(
        self, expr: RelExpr, instance, schema=None
    ) -> tuple[CompiledPlan, bool]:
        """``(plan, cache_hit)`` with cost-based optimization.

        Entries are keyed by ``(source fingerprint, stats_epoch())`` —
        a statistics change (appends, deletes, ``mark_dirty``)
        supersedes the cached join order instead of silently reusing
        it.  On miss the source tree is optimized against the instance
        (applying any actuals-corrections recorded by
        :meth:`note_divergence`), the chosen tree is compiled through
        the plain fingerprint cache (so two epochs choosing the same
        tree share one compilation), and the result is cached.  Falls
        back to :meth:`lookup` when cost-based planning is disabled or
        the instance has no statistics epoch.
        """
        from repro.algebra.optimizer import COST, optimize_with_report

        epoch_fn = getattr(instance, "stats_epoch", None)
        if not COST.enabled or epoch_fn is None:
            return self.lookup(expr)
        fingerprint = expr.fingerprint()
        key = (fingerprint, epoch_fn())
        with self._lock:
            entry = self._opt.get(key)
            if entry is not None and entry.source == expr:
                self._opt.move_to_end(key)
                self.opt_hits += 1
                self.hits += 1
                if STATE.enabled:
                    registry.counter("query.plan_cache.hits").inc()
                return entry.plan, True
            feedback = self._feedback.get(fingerprint)
            corrections = dict(feedback.corrections) if feedback else None
        # Optimize and compile outside the lock (both are pure).
        report = optimize_with_report(
            expr, instance, schema=schema, corrections=corrections
        )
        plan, _ = self.lookup(report.chosen)
        if corrections and STATE.enabled:
            registry.counter("query.reopt.applied").inc()
        if report.reordered and hasattr(plan, "optimized_from"):
            plan.optimized_from = fingerprint
        with self._lock:
            self.opt_misses += 1
            stale = self._opt_index.get(fingerprint)
            if stale is not None and stale != key and stale in self._opt:
                del self._opt[stale]
                self._note_eviction("epoch")
            self._opt[key] = _AdaptiveEntry(expr, plan, report)
            self._opt.move_to_end(key)
            self._opt_index[fingerprint] = key
            while len(self._opt) > self.capacity:
                old_key, _old = self._opt.popitem(last=False)
                if self._opt_index.get(old_key[0]) == old_key:
                    del self._opt_index[old_key[0]]
                self._note_eviction("lru")
        return plan, False

    def note_divergence(self, expr: RelExpr, plan, profile) -> bool:
        """Adaptive feedback: record the actual per-subtree row counts
        of a divergence-flagged execution and evict the cached entry so
        the next execution re-optimizes with corrected cardinalities.

        Bounded per source fingerprint by ``COST.max_reopts``, and a
        no-op when the profile teaches nothing new (so a plan that
        stays divergent — e.g. inherently correlated predicates — stops
        churning once its corrections converge).  Returns ``True`` when
        a re-optimization was scheduled.
        """
        from repro.algebra.optimizer import COST, mirror_join_fingerprint

        if profile is None or not COST.enabled:
            return False
        corrections: dict[str, float] = {}
        for node in getattr(plan, "nodes", ()):
            if node.expr is not None:
                actual = float(profile.rows_out(node.node_id))
                corrections[node.expr.fingerprint()] = actual
                # Inner equi-joins commute; key the correction under
                # both orientations so re-optimization cannot dodge it
                # by flipping build/probe sides.
                mirror = mirror_join_fingerprint(node.expr)
                if mirror is not None:
                    corrections[mirror] = actual
        if not corrections:
            return False
        fingerprint = expr.fingerprint()
        with self._lock:
            feedback = self._feedback.get(fingerprint)
            if feedback is None:
                if len(self._feedback) >= self.capacity:
                    self._feedback.pop(next(iter(self._feedback)))
                feedback = self._feedback.setdefault(
                    fingerprint, _Feedback()
                )
            if feedback.reopts >= COST.max_reopts:
                return False
            if all(
                feedback.corrections.get(k) == v
                for k, v in corrections.items()
            ):
                return False
            feedback.corrections.update(corrections)
            feedback.reopts += 1
            self.reopts += 1
            key = self._opt_index.pop(fingerprint, None)
            if key is not None and key in self._opt:
                del self._opt[key]
                self._note_eviction("reopt")
            if STATE.enabled:
                registry.counter("query.reopt.scheduled").inc()
                from repro.observability.journal import JOURNAL

                JOURNAL.record(
                    "query.reopt.scheduled",
                    fingerprint=fingerprint[:12],
                    corrections=len(corrections),
                    reopts=feedback.reopts,
                )
        return True

    def adaptive_report(self, expr: RelExpr):
        """Cost metadata of the live adaptive entry for ``expr``
        (chosen/heuristic cost, whether it was reordered, re-opt
        count), or ``None``."""
        fingerprint = expr.fingerprint()
        with self._lock:
            key = self._opt_index.get(fingerprint)
            entry = self._opt.get(key) if key is not None else None
            if entry is None or entry.source != expr:
                return None
            feedback = self._feedback.get(fingerprint)
            return {
                "chosen_cost": entry.chosen_cost,
                "heuristic_cost": entry.heuristic_cost,
                "reordered": entry.reordered,
                "reopts": feedback.reopts if feedback else 0,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, expr: RelExpr) -> bool:
        with self._lock:
            cached = self._plans.get(expr.fingerprint())
        return cached is not None and cached.expr == expr

    def clear(self) -> None:
        """Drop every cached plan and reset the statistics (the cache
        holds no references into instances, so invalidation is only
        needed when function *semantics* behind a ``Func`` name change)."""
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.evictions_by_reason = {r: 0 for r in _EVICTION_REASONS}
            self._opt.clear()
            self._opt_index.clear()
            self._feedback.clear()
            self.opt_hits = 0
            self.opt_misses = 0
            self.reopts = 0
            if STATE.enabled:
                registry.gauge("query.plan_cache.size").set(0)

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._plans),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "evictions_by_reason": dict(self.evictions_by_reason),
                "adaptive_size": len(self._opt),
                "adaptive_hits": self.opt_hits,
                "adaptive_misses": self.opt_misses,
                "reopts": self.reopts,
            }


def _compile_vector(expr: RelExpr, fingerprint: str):
    from repro.algebra.vectorized import compile_vector_plan

    return compile_vector_plan(expr, fingerprint)


#: Process-wide cache used by the compiled (row-pipeline) engine.
GLOBAL_PLAN_CACHE = PlanCache()

#: Process-wide cache used by the vectorized (columnar) engine.  A
#: separate cache because the two engines lower the same expression to
#: different executables; both report through the same
#: ``query.plan_cache.*`` metric names.
GLOBAL_VECTOR_PLAN_CACHE = PlanCache(compile_fn=_compile_vector)


def cached_plan(expr: RelExpr) -> CompiledPlan:
    """Fetch ``expr``'s row-engine plan from the process-wide cache."""
    return GLOBAL_PLAN_CACHE.get(expr)


def cached_vector_plan(expr: RelExpr):
    """Fetch ``expr``'s vectorized plan from the process-wide cache."""
    return GLOBAL_VECTOR_PLAN_CACHE.get(expr)


def clear_plan_cache() -> None:
    GLOBAL_PLAN_CACHE.clear()
    GLOBAL_VECTOR_PLAN_CACHE.clear()


def plan_cache_stats() -> dict[str, int]:
    return GLOBAL_PLAN_CACHE.stats()


def vector_plan_cache_stats() -> dict[str, int]:
    return GLOBAL_VECTOR_PLAN_CACHE.stats()
