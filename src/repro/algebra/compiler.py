"""Compiling plan executor for the mapping runtime.

The interpreter in :mod:`repro.algebra.evaluator` re-walks the
expression tree for every operator and re-dispatches every scalar AST
node for every row.  This module compiles a :class:`RelExpr` **once**
into a pipeline of batch closures:

* scalar predicates/projections are lowered to closures built a single
  time per plan — no per-row ``isinstance``/``_OPS`` dispatch;
* every operator is a list→list stage driven by comprehensions — no
  per-row generator frames, no per-operator row re-copying;
* joins with extractable equality pairs become hash joins (and
  *semi-joins* when the right side provably contributes no columns),
  Distinct/Difference/Aggregate are hash-based;
* static column inference (:func:`_static_cols`) licenses tuple keys
  for Distinct/Difference, precomputed merge/pad layouts for joins and
  unions, and projection pushdown through unions;
* projections of constants and column moves copy one precomputed
  template dict per row; identity projections over dynamically-shaped
  inputs pass exactly-shaped rows through untouched;
* subtrees referenced from several parents — view unfolding splices
  the same definition object in at every scan site — compile to one
  stage memoized per execution (:func:`_shared_subtrees`);
* row construction is batched at the plan boundary: scans *borrow* the
  instance's stored row dicts, and a copy is made only where a row
  escapes the pipeline un-rebuilt (the interpreter copies every scan
  row up front).

Compiled plans are immutable and reentrant: all per-run state lives in
the locals of one :meth:`CompiledPlan.execute` call, so one plan can be
cached (see :mod:`repro.algebra.plan_cache`) and executed against many
instances, the compile-once/run-many shape of a serving stack.
Semantics are bit-for-bit those of the interpreter — the differential
suite in ``tests/test_query_compiler.py`` holds the two engines to
identical row multisets.
"""

from __future__ import annotations

import threading
from operator import itemgetter
from time import perf_counter
from typing import Callable, Iterable, Optional

from repro.algebra import expressions as E
from repro.algebra import scalars as S
from repro.errors import EvaluationError
from repro.instances.database import Instance, Row, freeze_row, hashable_key
from repro.instances.labeled_null import LabeledNull
from repro.metamodel.schema import Schema
from repro.observability.metrics import registry
from repro.observability.state import STATE
from repro.observability.tracing import tracer


# ----------------------------------------------------------------------
# shared execution helpers (the interpreter imports these too)
# ----------------------------------------------------------------------
def join_key_value(value):
    """Join keys for null-*rejecting* equality (``_JoinEq``): ``None``
    never matches; labeled nulls match by label."""
    if value is None:
        return None
    if isinstance(value, LabeledNull):
        return ("⊥", value.label)
    return value


def equality_pairs(predicate) -> Optional[list[tuple[str, str, bool]]]:
    """``(left_col, right_col, null_tolerant)`` triples if ``predicate``
    is a pure conjunction of ``_JoinEq``/``ValueJoinEq`` atoms — the
    condition for the hash-join fast path.  ``TRUE`` yields ``[]``
    (cross join); anything else yields ``None`` (nested loop)."""
    if predicate is S.TRUE:
        return []
    if isinstance(predicate, E._JoinEq):
        return [(predicate.left_col, predicate.right_col, False)]
    if isinstance(predicate, E.ValueJoinEq):
        return [(predicate.left_col, predicate.right_col, True)]
    if isinstance(predicate, S.And):
        pairs: list[tuple[str, str, bool]] = []
        for operand in predicate.operands:
            if isinstance(operand, E._JoinEq):
                pairs.append((operand.left_col, operand.right_col, False))
            elif isinstance(operand, E.ValueJoinEq):
                pairs.append((operand.left_col, operand.right_col, True))
            else:
                return None
        return pairs
    return None


class SortKey:
    """Total order over heterogeneous values: nulls last, then by type
    name, then by value (string fallback for incomparables)."""

    __slots__ = ("rank", "type_name", "value")

    def __init__(self, value):
        if value is None or isinstance(value, LabeledNull):
            self.rank = 1
            self.type_name = ""
            self.value = repr(value)
        else:
            self.rank = 0
            self.type_name = type(value).__name__
            self.value = value

    def __lt__(self, other: "SortKey") -> bool:
        if self.rank != other.rank:
            return self.rank < other.rank
        if self.type_name != other.type_name:
            return self.type_name < other.type_name
        try:
            return self.value < other.value
        except TypeError:
            return str(self.value) < str(other.value)


def merge_rows(l_row: Row, r_row: Row, right_prefix: Optional[str]) -> Row:
    """Join output row: left wins on collisions unless a prefix exposes
    the right side's copy."""
    merged = dict(l_row)
    for key, value in r_row.items():
        if key in merged:
            if right_prefix:
                merged[f"{right_prefix}.{key}"] = value
        else:
            merged[key] = value
    return merged


# ----------------------------------------------------------------------
# scalar lowering
# ----------------------------------------------------------------------
ScalarFn = Callable[[Row, object], object]

#: Per-compilation memo of lowered scalars, keyed on scalar *identity*
#: (CSE-shared subtrees splice the same predicate objects under several
#: parents — without the memo each reference recompiles the closure
#: tree).  Values keep a strong reference to the scalar so an id cannot
#: be reused mid-pass.  Active only under :data:`_COMPILE_LOCK` (set by
#: ``CompiledPlan._compile_with`` and the vectorized plan's compile
#: pass); ``None`` outside a pass, where direct callers get the
#: unmemoized behavior.
_scalar_memo: Optional[dict[int, tuple[S.Scalar, ScalarFn]]] = None


def compile_scalar(scalar: S.Scalar) -> ScalarFn:
    """Lower a scalar AST to one closure ``f(row, ctx) -> value``.

    All dispatch happens here, once per plan; unknown scalar classes
    fall back to their own bound ``eval`` (which has the same
    signature), so user-defined predicates keep working.  During a plan
    compilation pass, results are memoized per scalar identity.
    """
    memo = _scalar_memo
    if memo is None:
        return _compile_scalar(scalar)
    hit = memo.get(id(scalar))
    if hit is not None:
        return hit[1]
    fn = _compile_scalar(scalar)
    memo[id(scalar)] = (scalar, fn)
    return fn


def _compile_scalar(scalar: S.Scalar) -> ScalarFn:
    if isinstance(scalar, S.Col):
        name = scalar.name

        def run_col(row, ctx):
            try:
                return row[name]
            except KeyError:
                raise EvaluationError(
                    f"row has no column {name!r}: {sorted(row)}"
                ) from None

        return run_col

    if isinstance(scalar, (S.Lit, S._Bool)):
        value = scalar.value
        return lambda row, ctx: value

    if isinstance(scalar, S.Comparison):
        return _compile_comparison(scalar)

    if isinstance(scalar, S.And):
        operands = tuple(compile_scalar(p) for p in scalar.operands)

        def run_and(row, ctx):
            for operand in operands:
                if not operand(row, ctx):
                    return False
            return True

        return run_and

    if isinstance(scalar, S.Or):
        operands = tuple(compile_scalar(p) for p in scalar.operands)

        def run_or(row, ctx):
            for operand in operands:
                if operand(row, ctx):
                    return True
            return False

        return run_or

    if isinstance(scalar, S.Not):
        operand = compile_scalar(scalar.operand)
        return lambda row, ctx: not operand(row, ctx)

    if isinstance(scalar, S.IsNull):
        operand = compile_scalar(scalar.operand)
        if scalar.negated:
            return lambda row, ctx: not (
                (v := operand(row, ctx)) is None or isinstance(v, LabeledNull)
            )
        return lambda row, ctx: (
            (v := operand(row, ctx)) is None or isinstance(v, LabeledNull)
        )

    if isinstance(scalar, S.In):
        operand = compile_scalar(scalar.operand)
        values = scalar.values

        def run_in(row, ctx):
            value = operand(row, ctx)
            if value is None:
                return False
            return value in values

        return run_in

    if isinstance(scalar, S.IsOf):
        return _compile_is_of(scalar)

    if isinstance(scalar, S.Arith):
        op = S.Arith._OPS[scalar.op]
        left = compile_scalar(scalar.left)
        right = compile_scalar(scalar.right)

        def run_arith(row, ctx):
            lhs = left(row, ctx)
            rhs = right(row, ctx)
            if lhs is None or rhs is None or isinstance(
                lhs, LabeledNull
            ) or isinstance(rhs, LabeledNull):
                return None
            return op(lhs, rhs)

        return run_arith

    if isinstance(scalar, S.Func):
        args = tuple(compile_scalar(a) for a in scalar.args)
        fn = scalar.fn
        if scalar.null_tolerant:
            return lambda row, ctx: fn(*(a(row, ctx) for a in args))

        def run_func(row, ctx):
            values = [a(row, ctx) for a in args]
            for value in values:
                if value is None or isinstance(value, LabeledNull):
                    return None
            return fn(*values)

        return run_func

    if isinstance(scalar, S.Case):
        whens = tuple(
            (compile_scalar(p), compile_scalar(v)) for p, v in scalar.whens
        )
        default = compile_scalar(scalar.default)

        def run_case(row, ctx):
            for predicate, value in whens:
                if predicate(row, ctx):
                    return value(row, ctx)
            return default(row, ctx)

        return run_case

    # Unknown scalar class (e.g. the CQ translation's guards, or user
    # extensions): its own eval already has the (row, ctx) signature.
    return scalar.eval


def _compile_comparison(scalar: S.Comparison) -> ScalarFn:
    left = compile_scalar(scalar.left)
    right = compile_scalar(scalar.right)
    op = scalar.op

    if op == "=":

        def run_eq(row, ctx):
            lhs = left(row, ctx)
            rhs = right(row, ctx)
            if isinstance(lhs, LabeledNull) or isinstance(rhs, LabeledNull):
                return lhs == rhs
            if lhs is None or rhs is None:
                return False
            return bool(lhs == rhs)

        return run_eq

    if op == "!=":

        def run_ne(row, ctx):
            lhs = left(row, ctx)
            rhs = right(row, ctx)
            if isinstance(lhs, LabeledNull) or isinstance(rhs, LabeledNull):
                return lhs != rhs
            if lhs is None or rhs is None:
                return False
            return bool(lhs != rhs)

        return run_ne

    op_fn = S.Comparison._OPS[op]

    def run_ordered(row, ctx):
        lhs = left(row, ctx)
        rhs = right(row, ctx)
        if isinstance(lhs, LabeledNull) or isinstance(rhs, LabeledNull):
            return False
        if lhs is None or rhs is None:
            return False
        try:
            return bool(op_fn(lhs, rhs))
        except TypeError:
            return False  # cross-type comparison is unknown

    return run_ordered


def _compile_is_of(scalar: S.IsOf) -> ScalarFn:
    from repro.instances.database import TYPE_FIELD

    entity = scalar.entity
    only = scalar.only

    def run_is_of(row, ctx):
        actual = row.get(TYPE_FIELD)
        if actual is None:
            return False
        if only or ctx is None or ctx.schema is None:
            return actual == entity
        schema = ctx.schema
        if actual not in schema.entities or entity not in schema.entities:
            return actual == entity
        return schema.entity(str(actual)).is_subtype_of(schema.entity(entity))

    return run_is_of


# ----------------------------------------------------------------------
# static column inference
# ----------------------------------------------------------------------
def _static_cols(expr: E.RelExpr) -> Optional[tuple[str, ...]]:
    """The exact, ordered column tuple of *every* row ``expr`` produces,
    when statically known — the license for tuple-keyed hashing,
    semi-joins and precomputed union padding.  ``None`` when rows may
    be heterogeneous (scans, entity scans, mixed-shape Values)."""
    if isinstance(expr, E.Project):
        return expr.output_names
    if isinstance(expr, E.Aggregate):
        return tuple(expr.group_by) + tuple(
            name for name, _, _ in expr.aggregations
        )
    if isinstance(expr, (E.Select, E.Distinct, E.Sort)):
        return _static_cols(expr.inputs()[0])
    if isinstance(expr, E.Difference):
        return _static_cols(expr.left)
    if isinstance(expr, E.Extend):
        cols = _static_cols(expr.input)
        if cols is None:
            return None
        return cols if expr.name in cols else cols + (expr.name,)
    if isinstance(expr, E.Rename):
        cols = _static_cols(expr.input)
        if cols is None:
            return None
        renamed = tuple(expr.mapping.get(c, c) for c in cols)
        # A rename that collapses two columns makes the shape dynamic.
        return renamed if len(set(renamed)) == len(renamed) else None
    if isinstance(expr, E.UnionAll):
        l_cols = _static_cols(expr.left)
        r_cols = _static_cols(expr.right)
        if l_cols is None or r_cols is None:
            return None
        return l_cols + tuple(c for c in r_cols if c not in l_cols)
    if isinstance(expr, E.Values):
        rows = expr.rows
        if not rows:
            return None
        first = tuple(rows[0])
        if all(tuple(r) == first for r in rows[1:]):
            return first
        return None
    if isinstance(expr, E.Join):
        if expr.kind == "left":
            # An empty right side pads nothing, so the shape depends on
            # the data — see the interpreter's `_pad_left` behavior.
            return None
        l_cols = _static_cols(expr.left)
        r_cols = _static_cols(expr.right)
        if l_cols is None or r_cols is None:
            return None
        out = list(l_cols)
        for c in r_cols:
            if c in l_cols:
                if expr.right_prefix:
                    out.append(f"{expr.right_prefix}.{c}")
            else:
                out.append(c)
        return tuple(out) if len(set(out)) == len(out) else None
    return None  # Scan / EntityScan / unknown nodes


# ----------------------------------------------------------------------
# relational lowering
# ----------------------------------------------------------------------
class _Run:
    """Per-execution context a compiled pipeline threads through its
    scalar closures (duck-compatible with the interpreter's
    ``EvalContext``: exposes ``schema`` and ``instance``).  ``memo``
    holds the per-execution results of common subexpressions the
    compiler detected (see :func:`_shared_subtrees`); ``profile`` is
    the per-node ``[calls, rows, seconds]`` accumulator of a profiled
    execution (None on the raw pipeline, which carries no per-node
    instrumentation at all)."""

    __slots__ = ("instance", "schema", "memo", "profile")

    def __init__(
        self,
        instance: Instance,
        schema: Optional[Schema],
        profile: Optional[list] = None,
    ):
        self.instance = instance
        self.schema = schema
        self.memo: dict = {}
        self.profile = profile


_EMPTY: tuple = ()

#: Sentinel for "this row can never match" join keys (a null under a
#: null-rejecting pair).  Never inserted into an index.
_NOMATCH = object()

#: (run(ctx) -> list of rows, rows_owned_by_pipeline)
_Compiled = tuple[Callable[[_Run], list], bool]


def _shared_subtrees(expr: E.RelExpr) -> dict[int, int]:
    """``id(node) -> memo slot`` for every subtree referenced from more
    than one parent.  View unfolding splices the *same* definition
    object in at every scan site (see ``unfold_scans``), so identity is
    exactly the sharing the plan's DAG structure records; compiling
    each shared subtree to one memoized stage makes it run once per
    execution instead of once per reference."""
    counts: dict[int, int] = {}
    nodes: dict[int, E.RelExpr] = {}
    stack = [expr]
    while stack:
        node = stack.pop()
        key = id(node)
        seen = counts.get(key, 0)
        counts[key] = seen + 1
        if not seen:
            nodes[key] = node
            stack.extend(node.inputs())
    return {
        key: slot
        for slot, key in enumerate(
            key
            for key, count in counts.items()
            if count > 1
            # Sharing a source stage saves nothing — it is already O(1).
            and not isinstance(nodes[key], (E.Scan, E.EntityScan, E.Values))
        )
    }


class _CSE:
    """Compile-time state for common-subexpression elimination: the
    shared-subtree slot map plus the stages already compiled for them
    (so both referencing parents get the *same* memoizing closure)."""

    __slots__ = ("shared", "compiled")

    def __init__(self, shared: dict[int, int]):
        self.shared = shared
        self.compiled: dict[int, _Compiled] = {}


#: Active CSE state during one ``CompiledPlan`` construction.  Plans
#: are compiled under :data:`_COMPILE_LOCK`, so a plain module slot is
#: safe as long as it is saved/restored re-entrantly (see
#: ``CompiledPlan.__init__``).
_cse_state: Optional[_CSE] = None


class PlanNode:
    """Static metadata for one compiled plan node (EXPLAIN's unit).

    ``strategy`` is the name of the batch closure the compiler chose —
    ``hash_join_static_single``, ``project_template``, ``semi_join`` —
    so the annotated plan tree shows *which* fast path each operator
    took.  ``children`` holds node ids in input order; a CSE-shared
    subtree keeps one node referenced from every parent
    (``shared=True``).

    ``expr`` is the (possibly optimizer-synthesized) algebra subtree
    this node lowered from — the cardinality estimator's anchor (see
    :mod:`repro.algebra.estimate`).  ``est_rows`` caches the most
    recent estimate annotated onto the node; a plan is instance-
    independent, so the estimate is refreshed per
    explain/execute-under-observability, not fixed at compile time."""

    __slots__ = ("node_id", "label", "strategy", "children", "shared",
                 "expr", "est_rows")

    def __init__(self, node_id: int, label: str, strategy: str,
                 children: list[int], shared: bool,
                 expr: Optional[E.RelExpr] = None):
        self.node_id = node_id
        self.label = label
        self.strategy = strategy
        self.children = tuple(children)
        self.shared = shared
        self.expr = expr
        self.est_rows: Optional[float] = None

    def to_dict(self) -> dict:
        return {
            "node_id": self.node_id,
            "label": self.label,
            "strategy": self.strategy,
            "children": list(self.children),
            "shared": self.shared,
            "est_rows": self.est_rows,
        }


class _PlanRegistry:
    """Per-compilation collector of :class:`PlanNode` metadata.

    Registration happens post-order (a node registers after its inputs
    compiled), so the stack of pending child-id lists reconstructs the
    *compiled* tree — including optimizer rewrites like projection
    pushdown, whose synthesized nodes appear under the original node.
    With ``wrap=True`` every stage closure is additionally wrapped in
    a per-node ``[calls, rows, seconds]`` recorder (the EXPLAIN
    ANALYZE pipeline); with ``wrap=False`` collection is compile-time
    metadata only and execution is untouched."""

    __slots__ = ("wrap", "nodes", "shared_ids", "stack")

    def __init__(self, wrap: bool):
        self.wrap = wrap
        self.nodes: list[PlanNode] = []
        self.shared_ids: dict[int, int] = {}   # id(expr) -> node_id
        self.stack: list[list[int]] = [[]]

    def enter(self) -> None:
        self.stack.append([])

    def exit_register(self, expr: E.RelExpr, strategy: str,
                      shared: bool) -> int:
        from repro.algebra.printer import node_label

        children = self.stack.pop()
        node_id = len(self.nodes)
        self.nodes.append(
            PlanNode(node_id, node_label(expr),
                     strategy.removeprefix("run_"), children, shared,
                     expr=expr)
        )
        if shared:
            self.shared_ids[id(expr)] = node_id
        self.stack[-1].append(node_id)
        return node_id

    def exit_reference(self, expr: E.RelExpr) -> None:
        """A second parent of a CSE-shared subtree: attach the existing
        node id instead of creating a new node."""
        self.stack.pop()
        self.stack[-1].append(self.shared_ids[id(expr)])

    def root_id(self) -> int:
        return self.stack[0][0]

    def wrap_stage(self, run, node_id: int):
        if not self.wrap:
            return run

        def run_profiled(ctx, _run=run, _nid=node_id):
            start = perf_counter()
            rows = _run(ctx)
            seconds = perf_counter() - start
            record = ctx.profile[_nid]
            record[0] += 1
            record[1] += len(rows)
            record[2] += seconds
            return rows

        return run_profiled


#: Active node registry during one compilation (guarded, like
#: :data:`_cse_state`, by :data:`_COMPILE_LOCK`).
_plan_registry: Optional[_PlanRegistry] = None

#: Compilation is rare (the plan cache memoizes it) but may be reached
#: from several threads at once; the module-level CSE/registry slots
#: make it a critical section.
_COMPILE_LOCK = threading.RLock()


def _compile(expr: E.RelExpr) -> _Compiled:
    """Compile ``expr``, routing shared subtrees through a per-execution
    memo so each runs once per :class:`_Run` regardless of how many
    parents reference it, and recording per-node metadata (plus the
    profiling wrappers of the EXPLAIN ANALYZE pipeline) in the active
    :class:`_PlanRegistry`."""
    plan_registry = _plan_registry
    if plan_registry is None:
        return _compile_unregistered(expr)
    plan_registry.enter()
    cse = _cse_state
    slot = cse.shared.get(id(expr)) if cse is not None else None
    if slot is None:
        run, owned = _compile_node(expr)
        node_id = plan_registry.exit_register(expr, run.__name__, False)
        return plan_registry.wrap_stage(run, node_id), owned
    cached = cse.compiled.get(id(expr))
    if cached is not None:
        plan_registry.exit_reference(expr)
        return cached
    run, _ = _compile_node(expr)
    node_id = plan_registry.exit_register(expr, run.__name__, True)

    def run_shared(ctx, _run=run, _slot=slot):
        memo = ctx.memo
        rows = memo.get(_slot)
        if rows is None:
            rows = memo[_slot] = _run(ctx)
        return rows

    # The profiling wrapper goes *outside* the memo, so a shared node's
    # ``calls`` counts every reference and ``calls - 1`` of them are
    # memo hits (near-zero recorded time).  Memoized rows are handed to
    # several consumers, so none may mutate them in place: "borrowed".
    cached = cse.compiled[id(expr)] = (
        plan_registry.wrap_stage(run_shared, node_id), False
    )
    return cached


def _compile_unregistered(expr: E.RelExpr) -> _Compiled:
    """The pre-registry compile path (kept for direct callers)."""
    cse = _cse_state
    if cse is None:
        return _compile_node(expr)
    slot = cse.shared.get(id(expr))
    if slot is None:
        return _compile_node(expr)
    cached = cse.compiled.get(id(expr))
    if cached is None:
        run, _ = _compile_node(expr)

        def run_shared(ctx, _run=run, _slot=slot):
            memo = ctx.memo
            rows = memo.get(_slot)
            if rows is None:
                rows = memo[_slot] = _run(ctx)
            return rows

        cached = cse.compiled[id(expr)] = (run_shared, False)
    return cached


def _compile_node(expr: E.RelExpr) -> _Compiled:
    if isinstance(expr, E.Scan):
        relation = expr.relation

        def run_scan(ctx):
            return ctx.instance.relations.get(relation, _EMPTY)

        return run_scan, False

    if isinstance(expr, E.EntityScan):
        entity = expr.entity
        only = expr.only

        def run_entity_scan(ctx):
            if ctx.schema is None:
                raise EvaluationError("EntityScan requires a schema")
            return ctx.instance.objects_of(entity, strict=only, schema=ctx.schema)

        return run_entity_scan, False

    if isinstance(expr, E.Values):
        rows = expr.rows
        return (lambda ctx: rows), False

    if isinstance(expr, E.Select):
        inner, owned = _compile(expr.input)
        predicate = compile_scalar(expr.predicate)

        def run_select(ctx):
            return [row for row in inner(ctx) if predicate(row, ctx)]

        return run_select, owned

    if isinstance(expr, E.Project):
        return _compile_project(expr)

    if isinstance(expr, E.Extend):
        inner, owned = _compile(expr.input)
        name = expr.name
        scalar = compile_scalar(expr.scalar)
        if owned:

            def run_extend_inplace(ctx):
                rows = inner(ctx)
                for row in rows:
                    row[name] = scalar(row, ctx)
                return rows

            return run_extend_inplace, True

        def run_extend(ctx):
            out = []
            for row in inner(ctx):
                extended = dict(row)
                extended[name] = scalar(row, ctx)
                out.append(extended)
            return out

        return run_extend, True

    if isinstance(expr, E.Rename):
        inner, _ = _compile(expr.input)
        mapping = expr.mapping

        def run_rename(ctx):
            return [
                {mapping.get(k, k): v for k, v in row.items()}
                for row in inner(ctx)
            ]

        return run_rename, True

    if isinstance(expr, E.Join):
        return _compile_join(expr)

    if isinstance(expr, E.UnionAll):
        return _compile_union(expr)

    if isinstance(expr, E.Difference):
        return _compile_difference(expr)

    if isinstance(expr, E.Distinct):
        inner, owned = _compile(expr.input)
        cols = _static_cols(expr.input)
        if cols:
            getter = itemgetter(*cols)

            def run_distinct_fast(ctx):
                rows = inner(ctx)
                try:
                    seen = set()
                    add = seen.add
                    out = []
                    append = out.append
                    for row in rows:
                        key = getter(row)
                        if key not in seen:
                            add(key)
                            append(row)
                    return out
                except TypeError:  # unhashable value → frozen-row path
                    return _distinct_frozen(rows)

            return run_distinct_fast, owned

        def run_distinct(ctx):
            return _distinct_frozen(inner(ctx))

        return run_distinct, owned

    if isinstance(expr, E.Aggregate):
        return _compile_aggregate(expr)

    if isinstance(expr, E.Sort):
        inner, owned = _compile(expr.input)
        keys = expr.keys

        def run_sort(ctx):
            rows = inner(ctx)
            # Source stages hand back borrowed lists — never sort those
            # in place.
            rows = rows if owned else list(rows)
            for key in reversed(keys):
                descending = key.startswith("-")
                column = key[1:] if descending else key
                rows.sort(
                    key=lambda r: SortKey(r.get(column)), reverse=descending
                )
            return rows

        return run_sort, owned

    raise EvaluationError(f"unknown expression node {type(expr).__name__}")


def _distinct_frozen(rows) -> list:
    seen: set[frozenset] = set()
    out = []
    for row in rows:
        frozen = freeze_row(row)
        if frozen not in seen:
            seen.add(frozen)
            out.append(row)
    return out


# ----------------------------------------------------------------------
# projection
# ----------------------------------------------------------------------
def _compile_project(expr: E.Project) -> _Compiled:
    pushed = _push_project_through_union(expr)
    if pushed is not None:
        return _compile(pushed)

    inner, _ = _compile(expr.input)
    in_cols = _static_cols(expr.input)

    if all(isinstance(s, S.Col) for _, s in expr.outputs):
        pairs = tuple((name, s.name) for name, s in expr.outputs)
        if in_cols is not None:
            missing = next(
                (src for _, src in pairs if src not in in_cols), None
            )
            if missing is None:
                # Every source column is statically present — no
                # KeyError possible, drop the guard entirely.
                def run_project_static(ctx):
                    return [
                        {name: row[src] for name, src in pairs}
                        for row in inner(ctx)
                    ]

                return run_project_static, True

            def run_project_missing(ctx):
                rows = inner(ctx)
                if not rows:
                    return []
                raise EvaluationError(
                    f"row has no column {missing!r}: {sorted(in_cols)}"
                )

            return run_project_missing, True

        names = tuple(name for name, _ in pairs)
        if names == tuple(src for _, src in pairs):
            # Identity projection over a dynamically-shaped input: a row
            # whose key tuple already matches passes through untouched
            # (a scan of an exactly-shaped table pays one tuple compare
            # per row instead of a dict build); others are rebuilt.
            # Passed-through rows may alias storage, hence "borrowed".
            def run_project_identity(ctx):
                rows = inner(ctx)
                try:
                    return [
                        row
                        if tuple(row) == names
                        else {name: row[src] for name, src in pairs}
                        for row in rows
                    ]
                except KeyError:
                    _raise_missing_column(rows, pairs)
                    raise

            return run_project_identity, False

        def run_project_cols(ctx):
            rows = inner(ctx)
            try:
                return [
                    {name: row[src] for name, src in pairs} for row in rows
                ]
            except KeyError:
                _raise_missing_column(rows, pairs)
                raise

        return run_project_cols, True

    if all(isinstance(s, (S.Col, S.Lit)) for _, s in expr.outputs):
        # Constants and column moves only: start every output row as a
        # copy of one precomputed template dict (constants filled in,
        # output order fixed) and assign the column values — no scalar
        # closure calls at all.
        template = {
            name: (scalar.value if isinstance(scalar, S.Lit) else None)
            for name, scalar in expr.outputs
        }
        col_pairs = tuple(
            (name, scalar.name)
            for name, scalar in expr.outputs
            if isinstance(scalar, S.Col)
        )
        if in_cols is not None:
            missing = next(
                (src for _, src in col_pairs if src not in in_cols), None
            )
            if missing is None:

                def run_project_template(ctx):
                    out = []
                    append = out.append
                    for row in inner(ctx):
                        built = dict(template)
                        for name, src in col_pairs:
                            built[name] = row[src]
                        append(built)
                    return out

                return run_project_template, True

            def run_project_template_missing(ctx):
                rows = inner(ctx)
                if not rows:
                    return []
                raise EvaluationError(
                    f"row has no column {missing!r}: {sorted(in_cols)}"
                )

            return run_project_template_missing, True

        def run_project_template_guarded(ctx):
            rows = inner(ctx)
            try:
                out = []
                append = out.append
                for row in rows:
                    built = dict(template)
                    for name, src in col_pairs:
                        built[name] = row[src]
                    append(built)
                return out
            except KeyError:
                _raise_missing_column(rows, col_pairs)
                raise

        return run_project_template_guarded, True

    outputs = tuple(
        (name, compile_scalar(scalar)) for name, scalar in expr.outputs
    )

    def run_project(ctx):
        return [
            {name: fn(row, ctx) for name, fn in outputs}
            for row in inner(ctx)
        ]

    return run_project, True


def _raise_missing_column(rows, pairs) -> None:
    """Turn a batched projection's ``KeyError`` into the interpreter's
    ``EvaluationError`` by re-scanning for the offending column; returns
    (for the caller's re-``raise``) if no row is actually missing one."""
    for row in rows:
        for _, src in pairs:
            if src not in row:
                raise EvaluationError(
                    f"row has no column {src!r}: {sorted(row)}"
                ) from None


def _push_project_through_union(expr: E.Project) -> Optional[E.RelExpr]:
    """Rewrite ``π[cols](A ∪ B ∪ …)`` into ``π[cols](A) ∪ π[cols](B) ∪
    …`` when every branch's shape is statically known and carries every
    projected column — the pad-and-rebuild work of the union vanishes
    and the concatenation becomes O(1) per branch.

    Only applied when no column is missing from any branch, so the
    rewrite can never change which rows raise or how absent columns
    pad."""
    if not isinstance(expr.input, E.UnionAll):
        return None
    if not all(isinstance(s, S.Col) for _, s in expr.outputs):
        return None
    branches: list[E.RelExpr] = []

    def flatten(node: E.RelExpr) -> None:
        if isinstance(node, E.UnionAll):
            flatten(node.left)
            flatten(node.right)
        else:
            branches.append(node)

    flatten(expr.input)
    cols_per_branch = [_static_cols(b) for b in branches]
    if any(cols is None for cols in cols_per_branch):
        return None
    for _, scalar in expr.outputs:
        if any(scalar.name not in cols for cols in cols_per_branch):
            return None
    rebuilt: Optional[E.RelExpr] = None
    for branch in branches:
        projected = E.Project(branch, expr.outputs)
        rebuilt = (
            projected if rebuilt is None else E.UnionAll(rebuilt, projected)
        )
    return rebuilt


# ----------------------------------------------------------------------
# union / difference
# ----------------------------------------------------------------------
def _compile_union(expr: E.UnionAll) -> _Compiled:
    left, l_owned = _compile(expr.left)
    right, r_owned = _compile(expr.right)
    l_cols = _static_cols(expr.left)
    r_cols = _static_cols(expr.right)

    if l_cols is not None and r_cols is not None:
        if l_cols == r_cols:

            def run_union_concat(ctx):
                # splat, not +: source stages may hand back tuples
                return [*left(ctx), *right(ctx)]

            return run_union_concat, l_owned and r_owned

        merged = l_cols + tuple(c for c in r_cols if c not in l_cols)
        left_missing = tuple(c for c in merged if c not in l_cols)

        def run_union_static(ctx):
            left_rows = left(ctx)
            right_rows = right(ctx)
            # Column discovery is over actual rows (interpreter parity):
            # an empty side contributes no columns, so the other side
            # passes through unpadded.
            if not right_rows:
                return list(left_rows)
            if not left_rows:
                return list(right_rows)
            out = []
            append = out.append
            if left_missing:
                for row in left_rows:
                    padded = dict(row)
                    for c in left_missing:
                        padded[c] = None
                    append(padded)
            else:
                out = list(left_rows)
                append = out.append
            for row in right_rows:
                append({c: row.get(c) for c in merged})
            return out

        # An empty side hands the other through unchanged, so ownership
        # must be the conservative conjunction.
        return run_union_static, l_owned and r_owned

    def run_union(ctx):
        left_rows = left(ctx)
        right_rows = right(ctx)
        columns: dict[str, None] = {}
        for row in left_rows:
            for key in row:
                if key not in columns:
                    columns[key] = None
        for row in right_rows:
            for key in row:
                if key not in columns:
                    columns[key] = None
        out = [{c: row.get(c) for c in columns} for row in left_rows]
        out.extend({c: row.get(c) for c in columns} for row in right_rows)
        return out

    return run_union, True


def _compile_difference(expr: E.Difference) -> _Compiled:
    left, owned = _compile(expr.left)
    right, _ = _compile(expr.right)
    l_cols = _static_cols(expr.left)
    r_cols = _static_cols(expr.right)

    if l_cols and r_cols and set(l_cols) == set(r_cols):
        # Same column set on both sides: dict equality ⇔ value-tuple
        # equality in a fixed column order.
        getter = itemgetter(*l_cols)

        def run_difference_fast(ctx):
            left_rows = left(ctx)
            right_rows = right(ctx)
            try:
                excluded = {getter(r) for r in right_rows}
                seen = set()
                add = seen.add
                out = []
                for row in left_rows:
                    key = getter(row)
                    if key not in excluded and key not in seen:
                        add(key)
                        out.append(row)
                return out
            except TypeError:  # unhashable value → frozen-row path
                return _difference_frozen(left_rows, right_rows)

        return run_difference_fast, owned

    def run_difference(ctx):
        return _difference_frozen(left(ctx), right(ctx))

    return run_difference, owned


def _difference_frozen(left_rows, right_rows) -> list:
    excluded = {freeze_row(r) for r in right_rows}
    seen: set[frozenset] = set()
    out = []
    for row in left_rows:
        frozen = freeze_row(row)
        if frozen not in excluded and frozen not in seen:
            seen.add(frozen)
            out.append(row)
    return out


# ----------------------------------------------------------------------
# joins
# ----------------------------------------------------------------------
def _make_join_keyer(columns: tuple[str, ...], tolerant: tuple[bool, ...]):
    """One closure ``row -> hashable key | _NOMATCH`` per join side.
    ``_NOMATCH`` marks a null under a null-rejecting pair — the row can
    never match and is skipped on both build and probe."""
    if len(columns) == 1:
        column = columns[0]
        if tolerant[0]:
            return lambda row: hashable_key(row.get(column))

        def strict_single(row):
            value = row.get(column)
            if value is None:
                return _NOMATCH
            if isinstance(value, LabeledNull):
                return ("⊥", value.label)
            return value

        return strict_single

    keyers = tuple(hashable_key if t else join_key_value for t in tolerant)
    strict_at = tuple(i for i, t in enumerate(tolerant) if not t)

    def multi(row):
        key = tuple(
            keyer(row.get(c)) for keyer, c in zip(keyers, columns)
        )
        for i in strict_at:
            if key[i] is None:
                return _NOMATCH
        return key

    return multi


def _compile_join(expr: E.Join) -> _Compiled:
    left, l_owned = _compile(expr.left)
    right, _ = _compile(expr.right)
    kind = expr.kind
    right_prefix = expr.right_prefix
    pairs = equality_pairs(expr.predicate)
    l_cols = _static_cols(expr.left)
    r_cols = _static_cols(expr.right)

    if pairs:
        tolerant = tuple(t for _, _, t in pairs)
        lkey = _make_join_keyer(tuple(lc for lc, _, _ in pairs), tolerant)
        rkey = _make_join_keyer(tuple(rc for _, rc, _ in pairs), tolerant)
        join_right_cols = {rc for _, rc, _ in pairs}

        if (
            kind == "inner"
            and right_prefix is None
            and l_cols is not None
            and r_cols is not None
            and set(r_cols) <= set(l_cols)
            and set(r_cols) == join_right_cols
            and isinstance(expr.right, (E.Distinct, E.Difference))
        ):
            # The right side contributes no columns (all collide, left
            # wins) and is set-valued over exactly the join key, so
            # every key matches at most one right row: the join is a
            # pure *filter* on the left — no row construction at all.
            if len(pairs) == 1 and not tolerant[0]:
                lc, rc, _ = pairs[0]

                def run_semi_join_single(ctx):
                    # Build over raw values (the right shape guarantees
                    # the column).  Only labeled nulls and tuples need
                    # the canonical ("⊥", label) wrapping to hash like
                    # the interpreter — detect them once over the
                    # distinct keys and fall back to the keyers.
                    keys = {r_row[rc] for r_row in right(ctx)}
                    keys.discard(None)
                    if any(
                        isinstance(k, (LabeledNull, tuple)) for k in keys
                    ):
                        keys = {
                            ("⊥", k.label)
                            if isinstance(k, LabeledNull)
                            else k
                            for k in keys
                        }
                        return [
                            row for row in left(ctx) if lkey(row) in keys
                        ]
                    return [
                        row for row in left(ctx) if row.get(lc) in keys
                    ]

                return run_semi_join_single, l_owned

            def run_semi_join(ctx):
                keys = set()
                add = keys.add
                for r_row in right(ctx):
                    key = rkey(r_row)
                    if key is not _NOMATCH:
                        add(key)
                return [row for row in left(ctx) if lkey(row) in keys]

            return run_semi_join, l_owned

        if l_cols is not None and r_cols is not None:
            l_set = set(l_cols)
            # (output name, right source column) in right-column order —
            # exactly what merge_rows would emit for these shapes.
            actions = []
            for c in r_cols:
                if c in l_set:
                    if right_prefix:
                        actions.append((f"{right_prefix}.{c}", c))
                else:
                    actions.append((c, c))
            actions = tuple(actions)
            if right_prefix:
                pad_names = tuple(f"{right_prefix}.{c}" for c in r_cols)
            else:
                pad_names = tuple(
                    name for name, src in actions if name == src
                )
            is_left = kind == "left"

            if len(pairs) == 1 and not tolerant[0]:
                lc, rc, _ = pairs[0]

                # Same loop as run_hash_join_static below, with the
                # single null-rejecting keyer inlined — no per-row
                # closure calls on either side.
                def run_hash_join_static_single(ctx):
                    right_rows = right(ctx)
                    index: dict = {}
                    setdefault = index.setdefault
                    for r_row in right_rows:
                        key = r_row.get(rc)
                        if key is not None:
                            if isinstance(key, LabeledNull):
                                key = ("⊥", key.label)
                            setdefault(key, []).append(r_row)
                    get = index.get
                    pad = pad_names if right_rows else _EMPTY
                    out = []
                    append = out.append
                    for l_row in left(ctx):
                        key = l_row.get(lc)
                        if key is None:
                            candidates = _EMPTY
                        else:
                            if isinstance(key, LabeledNull):
                                key = ("⊥", key.label)
                            candidates = get(key, _EMPTY)
                        if candidates:
                            for r_row in candidates:
                                merged = dict(l_row)
                                for name, src in actions:
                                    merged[name] = r_row[src]
                                append(merged)
                        elif is_left:
                            merged = dict(l_row)
                            for name in pad:
                                merged[name] = None
                            append(merged)
                    return out

                return run_hash_join_static_single, True

            def run_hash_join_static(ctx):
                right_rows = right(ctx)
                index: dict = {}
                setdefault = index.setdefault
                for r_row in right_rows:
                    key = rkey(r_row)
                    if key is not _NOMATCH:
                        setdefault(key, []).append(r_row)
                get = index.get
                # Padding mirrors runtime column discovery: an empty
                # right side pads nothing.
                pad = pad_names if right_rows else _EMPTY
                out = []
                append = out.append
                for l_row in left(ctx):
                    candidates = get(lkey(l_row), _EMPTY)
                    if candidates:
                        for r_row in candidates:
                            merged = dict(l_row)
                            for name, src in actions:
                                merged[name] = r_row[src]
                            append(merged)
                    elif is_left:
                        merged = dict(l_row)
                        for name in pad:
                            merged[name] = None
                        append(merged)
                return out

            return run_hash_join_static, True

        def run_hash_join(ctx):
            right_rows = right(ctx)
            index: dict = {}
            setdefault = index.setdefault
            for r_row in right_rows:
                key = rkey(r_row)
                if key is not _NOMATCH:
                    setdefault(key, []).append(r_row)
            right_columns = _column_set(right_rows)
            get = index.get
            out = []
            append = out.append
            for l_row in left(ctx):
                candidates = get(lkey(l_row), _EMPTY)
                if candidates:
                    for r_row in candidates:
                        append(merge_rows(l_row, r_row, right_prefix))
                elif kind == "left":
                    append(_pad_left(l_row, right_columns, right_prefix))
            return out

        return run_hash_join, True

    if pairs == []:  # TRUE predicate: cross join

        def run_cross_join(ctx):
            right_rows = right(ctx)
            right_columns = _column_set(right_rows)
            out = []
            append = out.append
            for l_row in left(ctx):
                if right_rows:
                    for r_row in right_rows:
                        append(merge_rows(l_row, r_row, right_prefix))
                elif kind == "left":
                    append(_pad_left(l_row, right_columns, right_prefix))
            return out

        return run_cross_join, True

    predicate = compile_scalar(expr.predicate)

    def run_nested_join(ctx):
        right_rows = right(ctx)
        right_columns = _column_set(right_rows)
        out = []
        append = out.append
        for l_row in left(ctx):
            matched = False
            for r_row in right_rows:
                combined = dict(l_row)
                for key, value in r_row.items():
                    if key not in combined:
                        combined[key] = value
                for key, value in l_row.items():
                    combined[f"$left.{key}"] = value
                for key, value in r_row.items():
                    combined[f"$right.{key}"] = value
                if not predicate(combined, ctx):
                    continue
                matched = True
                append(merge_rows(l_row, r_row, right_prefix))
            if not matched and kind == "left":
                append(_pad_left(l_row, right_columns, right_prefix))
        return out

    return run_nested_join, True


def _column_set(rows) -> set[str]:
    columns: set[str] = set()
    for row in rows:
        columns.update(row)
    return columns


def _pad_left(
    l_row: Row, right_columns: set[str], right_prefix: Optional[str]
) -> Row:
    if right_prefix:
        padding = {f"{right_prefix}.{c}": None for c in right_columns}
    else:
        padding = {c: None for c in right_columns if c not in l_row}
    merged = dict(l_row)
    merged.update(padding)
    return merged


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
def _compile_aggregate(expr: E.Aggregate) -> _Compiled:
    inner, _ = _compile(expr.input)
    group_by = expr.group_by
    aggregations = tuple(
        (name, func, compile_scalar(scalar) if scalar is not None else None)
        for name, func, scalar in expr.aggregations
    )

    def run_aggregate(ctx):
        groups: dict[tuple, list[Row]] = {}
        setdefault = groups.setdefault
        for row in inner(ctx):
            key = tuple(join_key_value(row.get(c)) for c in group_by)
            setdefault(key, []).append(row)
        if not groups and not group_by:
            groups[()] = []
        out = []
        for members in groups.values():
            result: Row = {}
            for column in group_by:
                result[column] = members[0].get(column) if members else None
            for name, func, scalar in aggregations:
                result[name] = _apply_aggregate(func, scalar, members, ctx)
            out.append(result)
        return out

    return run_aggregate, True


def _apply_aggregate(
    func: str, scalar: Optional[ScalarFn], members: list[Row], ctx
) -> object:
    if func == "count" and scalar is None:
        return len(members)
    values = []
    for row in members:
        value = scalar(row, ctx) if scalar is not None else 1
        if value is not None and not isinstance(value, LabeledNull):
            values.append(value)
    if func == "count":
        return len(values)
    if not values:
        return None
    if func == "sum":
        return sum(values)
    if func == "min":
        return min(values)
    if func == "max":
        return max(values)
    if func == "avg":
        return sum(values) / len(values)
    raise EvaluationError(f"unknown aggregate {func!r}")


# ----------------------------------------------------------------------
# compiled plans
# ----------------------------------------------------------------------
class PlanProfile:
    """Per-node runtime statistics from one profiled execution.

    ``counters[node_id]`` is ``[calls, rows_out, seconds]`` (inclusive
    of the node's inputs — the wrapper times the whole stage call).
    ``self_time_ms`` converts to exclusive time with a *charge-once*
    rule: each node's inclusive time is subtracted from the first
    parent edge that reaches it, so the self times telescope exactly to
    the root's inclusive time even when CSE shares a subtree between
    parents."""

    __slots__ = ("nodes", "root_id", "counters", "fingerprint", "result_rows")

    def __init__(self, nodes: list[PlanNode], root_id: int,
                 counters: list[list], fingerprint: str, result_rows: int):
        self.nodes = nodes
        self.root_id = root_id
        self.counters = counters
        self.fingerprint = fingerprint
        self.result_rows = result_rows

    def calls(self, node_id: int) -> int:
        return self.counters[node_id][0]

    def rows_out(self, node_id: int) -> int:
        return self.counters[node_id][1]

    def time_ms(self, node_id: int) -> float:
        return self.counters[node_id][2] * 1000.0

    def memo_hits(self, node_id: int) -> int:
        """CSE-memo hits: a shared node's wrapper counts every parent
        reference, but only the first reference computes rows."""
        node = self.nodes[node_id]
        if not node.shared:
            return 0
        return max(0, self.counters[node_id][0] - 1)

    @property
    def total_ms(self) -> float:
        return self.counters[self.root_id][2] * 1000.0

    def self_time_ms(self) -> list[float]:
        """Exclusive per-node time (charge-once; sums to ``total_ms``)."""
        out = [record[2] for record in self.counters]
        charged: set[int] = set()
        for node in self.nodes:
            for child in node.children:
                if child not in charged:
                    charged.add(child)
                    out[node.node_id] -= self.counters[child][2]
        return [seconds * 1000.0 for seconds in out]

    def to_dict(self) -> dict:
        self_ms = self.self_time_ms()
        return {
            "fingerprint": self.fingerprint,
            "root_id": self.root_id,
            "result_rows": self.result_rows,
            "total_ms": self.total_ms,
            "nodes": [
                {
                    **node.to_dict(),
                    "calls": self.calls(node.node_id),
                    "rows_out": self.rows_out(node.node_id),
                    "time_ms": self.time_ms(node.node_id),
                    "self_time_ms": self_ms[node.node_id],
                    "memo_hits": self.memo_hits(node.node_id),
                }
                for node in self.nodes
            ],
        }


class CompiledPlan:
    """An executable pipeline compiled from one :class:`RelExpr`.

    Immutable and reentrant: every run's state lives in the locals of
    that run's stage calls, so one plan serves arbitrarily many
    concurrent executions over different instances.  (The two mutable
    slots — the lazily compiled profiled pipeline and ``last_profile``
    — are single-assignment caches; racing writers store equivalent
    values.)
    """

    __slots__ = (
        "expr", "fingerprint", "size", "_run", "_owned",
        "nodes", "root_id", "_profiled_run", "_profiled_owned",
        "last_profile", "optimized_from", "_annotate_memo",
    )

    def __init__(self, expr: E.RelExpr, fingerprint: Optional[str] = None):
        self.expr = expr
        self.fingerprint = fingerprint or expr.fingerprint()
        self.size = expr.size()
        self._profiled_run = None
        self._profiled_owned = True
        self.last_profile: Optional[PlanProfile] = None
        self._annotate_memo = None     # annotate_plan's per-instance memo
        # Source fingerprint when the adaptive cache compiled this plan
        # from a cost-based rewrite of a different tree (EXPLAIN shows
        # it); informational only.
        self.optimized_from: Optional[str] = None
        run, owned, registry_ = self._compile_with(wrap=False)
        self._run, self._owned = run, owned
        self.nodes = registry_.nodes
        self.root_id = registry_.root_id()

    def _compile_with(self, wrap: bool):
        """One full compilation pass under the module compile lock
        (the CSE and registry slots are module-global)."""
        global _cse_state, _plan_registry, _scalar_memo
        with _COMPILE_LOCK:
            prev_cse, prev_reg = _cse_state, _plan_registry
            prev_memo = _scalar_memo
            shared = _shared_subtrees(self.expr)
            _cse_state = _CSE(shared) if shared else None
            reg = _PlanRegistry(wrap)
            _plan_registry = reg
            _scalar_memo = {}
            try:
                run, owned = _compile(self.expr)
            finally:
                _cse_state, _plan_registry = prev_cse, prev_reg
                _scalar_memo = prev_memo
        return run, owned, reg

    def _ensure_profiled(self):
        """Compile the EXPLAIN ANALYZE pipeline on first use.  The raw
        pipeline stays wrapper-free, so the disabled path pays nothing
        per node."""
        if self._profiled_run is None:
            run, owned, _ = self._compile_with(wrap=True)
            self._profiled_run, self._profiled_owned = run, owned
        return self._profiled_run, self._profiled_owned

    def rows(
        self, instance: Instance, schema: Optional[Schema] = None
    ) -> Iterable[Row]:
        """The plan's output rows, uncopied (borrowed rows may alias
        instance storage — callers must not mutate them)."""
        ctx = _Run(instance, schema if schema is not None else instance.schema)
        return self._run(ctx)

    def execute(
        self, instance: Instance, schema: Optional[Schema] = None
    ) -> list[Row]:
        """Run against ``instance`` and return the result rows.

        ``schema`` overrides the instance's bound schema for
        ``EntityScan``/``IsOf``, exactly like the interpreter's
        ``evaluate``.
        """
        if not STATE.enabled:
            return self._materialize(instance, schema)
        rows, self.last_profile = self.execute_profiled(instance, schema)
        return rows

    def execute_profiled(
        self, instance: Instance, schema: Optional[Schema] = None
    ) -> tuple[list[Row], PlanProfile]:
        """EXPLAIN ANALYZE: run the profiled pipeline and return
        ``(rows, profile)``.

        Works regardless of ``STATE.enabled``; when enabled it also
        emits the usual ``query.execute`` span and metrics, so the
        profile's root time nests inside (and sums to, minus wrapper
        epsilon) the measured span."""
        run, owned = self._ensure_profiled()
        counters = [[0, 0, 0.0] for _ in self.nodes]
        if not STATE.enabled:
            rows = self._materialize(instance, schema, run, owned, counters)
        else:
            with tracer.span(
                "query.execute",
                engine="compiled",
                plan=self.fingerprint[:12],
                **{"plan.size": self.size},
            ) as span:
                rows = self._materialize(
                    instance, schema, run, owned, counters
                )
                if span is not None:
                    span.set_attribute("rows", len(rows))
            registry.counter("query.execute.count").inc()
            registry.histogram("query.execute.rows").observe(len(rows))
        profile = PlanProfile(
            self.nodes, self.root_id, counters, self.fingerprint, len(rows)
        )
        return rows, profile

    def _materialize(
        self,
        instance: Instance,
        schema: Optional[Schema],
        run=None,
        owned: Optional[bool] = None,
        counters: Optional[list] = None,
    ) -> list[Row]:
        if run is None:
            run, owned = self._run, self._owned
        ctx = _Run(
            instance,
            schema if schema is not None else instance.schema,
            counters,
        )
        produced = run(ctx)
        if owned:
            return produced if isinstance(produced, list) else list(produced)
        # Borrowed rows escape the pipeline here: copy once, at the
        # boundary, instead of once per operator.
        return [dict(row) for row in produced]

    def __repr__(self) -> str:
        return (
            f"<CompiledPlan {self.fingerprint[:12]} "
            f"size={self.size}>"
        )


def compile_plan(
    expr: E.RelExpr, fingerprint: Optional[str] = None
) -> CompiledPlan:
    """Compile ``expr`` into a :class:`CompiledPlan` (uncached — go
    through :mod:`repro.algebra.plan_cache` for the memoized path)."""
    if not STATE.enabled:
        return CompiledPlan(expr, fingerprint)
    with tracer.span("query.compile", **{"plan.size": expr.size()}) as span:
        plan = CompiledPlan(expr, fingerprint)
        if span is not None:
            span.set_attribute("plan", plan.fingerprint[:12])
    return plan
