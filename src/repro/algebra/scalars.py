"""Scalar expressions and predicates.

Evaluated per row against an :class:`~repro.algebra.evaluator.EvalContext`.
Null semantics follow SQL where it matters for the paper's scenarios:

* a comparison involving ``None`` is *unknown* and filters the row out
  (treated as false in selections and join conditions);
* two **labeled nulls** compare equal iff they carry the same label —
  this is what makes joins over universal instances (chase results)
  behave correctly;
* ``IS NULL`` is true for both ``None`` and labeled nulls.

The Entity SQL ``IS OF`` / ``IS OF ONLY`` type test of the paper's
Figure 2 is :class:`IsOf`; it consults the schema's is-a hierarchy.
"""

from __future__ import annotations

import operator
from typing import Callable, Iterable, Optional, Sequence, TYPE_CHECKING

from repro.errors import EvaluationError
from repro.instances.database import TYPE_FIELD, Row
from repro.instances.labeled_null import LabeledNull

if TYPE_CHECKING:
    from repro.algebra.evaluator import EvalContext


class Scalar:
    """Base class of all scalar expressions."""

    def eval(self, row: Row, ctx: "EvalContext") -> object:
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Column names this expression reads."""
        raise NotImplementedError

    def __repr__(self) -> str:
        from repro.algebra.printer import scalar_text

        return scalar_text(self)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self):
        raise NotImplementedError


class Col(Scalar):
    """Reference to a column of the current row."""

    def __init__(self, name: str):
        self.name = name

    def eval(self, row: Row, ctx: "EvalContext") -> object:
        if self.name not in row:
            raise EvaluationError(f"row has no column {self.name!r}: {sorted(row)}")
        return row[self.name]

    def columns(self) -> set[str]:
        return {self.name}

    def _key(self):
        return self.name


class Lit(Scalar):
    """A literal constant (including ``None``)."""

    def __init__(self, value: object):
        self.value = value

    def eval(self, row: Row, ctx: "EvalContext") -> object:
        return self.value

    def columns(self) -> set[str]:
        return set()

    def _key(self):
        return (self.value,)


class Func(Scalar):
    """A named scalar function applied to argument expressions.

    ``fn`` is the Python implementation; the name is kept for printing
    and SQL generation.  Nulls propagate: if any argument is null the
    result is ``None`` (unless ``null_tolerant``).
    """

    def __init__(
        self,
        name: str,
        args: Sequence[Scalar],
        fn: Callable[..., object],
        null_tolerant: bool = False,
    ):
        self.name = name
        self.args = tuple(args)
        self.fn = fn
        self.null_tolerant = null_tolerant

    def eval(self, row: Row, ctx: "EvalContext") -> object:
        values = [a.eval(row, ctx) for a in self.args]
        if not self.null_tolerant and any(
            v is None or isinstance(v, LabeledNull) for v in values
        ):
            return None
        return self.fn(*values)

    def columns(self) -> set[str]:
        return set().union(*(a.columns() for a in self.args)) if self.args else set()

    def _key(self):
        return (self.name, self.args)


class Arith(Scalar):
    """Binary arithmetic (``+ - * /``); nulls propagate to ``None``."""

    _OPS = {
        "+": operator.add,
        "-": operator.sub,
        "*": operator.mul,
        "/": operator.truediv,
    }

    def __init__(self, op: str, left: Scalar, right: Scalar):
        if op not in self._OPS:
            raise EvaluationError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def eval(self, row: Row, ctx: "EvalContext") -> object:
        lhs = self.left.eval(row, ctx)
        rhs = self.right.eval(row, ctx)
        if any(v is None or isinstance(v, LabeledNull) for v in (lhs, rhs)):
            return None
        return self._OPS[self.op](lhs, rhs)

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def _key(self):
        return (self.op, self.left, self.right)


class Predicate(Scalar):
    """Scalar expressions that evaluate to a truth value."""

    def eval(self, row: Row, ctx: "EvalContext") -> bool:
        raise NotImplementedError


class _Bool(Predicate):
    def __init__(self, value: bool):
        self.value = value

    def eval(self, row: Row, ctx: "EvalContext") -> bool:
        return self.value

    def columns(self) -> set[str]:
        return set()

    def _key(self):
        return (self.value,)


TRUE = _Bool(True)
FALSE = _Bool(False)


class Comparison(Predicate):
    """``left op right`` with SQL-ish null semantics (unknown → False)."""

    _OPS = {
        "=": operator.eq,
        "!=": operator.ne,
        "<": operator.lt,
        "<=": operator.le,
        ">": operator.gt,
        ">=": operator.ge,
    }

    def __init__(self, op: str, left: Scalar, right: Scalar):
        if op not in self._OPS:
            raise EvaluationError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def eval(self, row: Row, ctx: "EvalContext") -> bool:
        lhs = self.left.eval(row, ctx)
        rhs = self.right.eval(row, ctx)
        left_labeled = isinstance(lhs, LabeledNull)
        right_labeled = isinstance(rhs, LabeledNull)
        if left_labeled or right_labeled:
            # Labeled nulls are first-class values: equal iff same label.
            if self.op == "=":
                return lhs == rhs
            if self.op == "!=":
                return lhs != rhs
            return False
        if lhs is None or rhs is None:
            return False  # unknown
        try:
            return bool(self._OPS[self.op](lhs, rhs))
        except TypeError:
            # Cross-type comparison (e.g. 1 < "a") is unknown, not fatal.
            if self.op == "=":
                return False
            if self.op == "!=":
                return True
            return False

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def _key(self):
        return (self.op, self.left, self.right)


class And(Predicate):
    def __init__(self, *operands: Predicate):
        self.operands = tuple(operands)

    def eval(self, row: Row, ctx: "EvalContext") -> bool:
        return all(p.eval(row, ctx) for p in self.operands)

    def columns(self) -> set[str]:
        return set().union(*(p.columns() for p in self.operands)) if self.operands else set()

    def _key(self):
        return self.operands


class Or(Predicate):
    def __init__(self, *operands: Predicate):
        self.operands = tuple(operands)

    def eval(self, row: Row, ctx: "EvalContext") -> bool:
        return any(p.eval(row, ctx) for p in self.operands)

    def columns(self) -> set[str]:
        return set().union(*(p.columns() for p in self.operands)) if self.operands else set()

    def _key(self):
        return self.operands


class Not(Predicate):
    def __init__(self, operand: Predicate):
        self.operand = operand

    def eval(self, row: Row, ctx: "EvalContext") -> bool:
        return not self.operand.eval(row, ctx)

    def columns(self) -> set[str]:
        return self.operand.columns()

    def _key(self):
        return (self.operand,)


class IsNull(Predicate):
    """True for SQL ``NULL`` and for labeled nulls."""

    def __init__(self, operand: Scalar, negated: bool = False):
        self.operand = operand
        self.negated = negated

    def eval(self, row: Row, ctx: "EvalContext") -> bool:
        value = self.operand.eval(row, ctx)
        null = value is None or isinstance(value, LabeledNull)
        return not null if self.negated else null

    def columns(self) -> set[str]:
        return self.operand.columns()

    def _key(self):
        return (self.operand, self.negated)


class IsOf(Predicate):
    """Entity SQL's ``x IS OF (Type)`` / ``IS OF (ONLY Type)``.

    Tests the row's ``$type`` column against the is-a hierarchy of the
    context schema.  With no schema in context, falls back to exact
    name equality.
    """

    def __init__(self, entity: str, only: bool = False):
        self.entity = entity
        self.only = only

    def eval(self, row: Row, ctx: "EvalContext") -> bool:
        actual = row.get(TYPE_FIELD)
        if actual is None:
            return False
        if self.only or ctx is None or ctx.schema is None:
            return actual == self.entity
        schema = ctx.schema
        if actual not in schema.entities or self.entity not in schema.entities:
            return actual == self.entity
        return schema.entity(str(actual)).is_subtype_of(schema.entity(self.entity))

    def columns(self) -> set[str]:
        return {TYPE_FIELD}

    def _key(self):
        return (self.entity, self.only)


class In(Predicate):
    """``operand IN (v1, v2, ...)`` over literal values."""

    def __init__(self, operand: Scalar, values: Iterable[object]):
        self.operand = operand
        self.values = frozenset(values)

    def eval(self, row: Row, ctx: "EvalContext") -> bool:
        value = self.operand.eval(row, ctx)
        if value is None:
            return False
        return value in self.values

    def columns(self) -> set[str]:
        return self.operand.columns()

    def _key(self):
        return (self.operand, self.values)


# ----------------------------------------------------------------------
# construction helpers
# ----------------------------------------------------------------------
def col(name: str) -> Col:
    return Col(name)


def lit(value: object) -> Lit:
    return Lit(value)


def _wrap(value) -> Scalar:
    return value if isinstance(value, Scalar) else Lit(value)


def eq(left, right) -> Comparison:
    return Comparison("=", _wrap(left), _wrap(right))


def ne(left, right) -> Comparison:
    return Comparison("!=", _wrap(left), _wrap(right))


def lt(left, right) -> Comparison:
    return Comparison("<", _wrap(left), _wrap(right))


def le(left, right) -> Comparison:
    return Comparison("<=", _wrap(left), _wrap(right))


def gt(left, right) -> Comparison:
    return Comparison(">", _wrap(left), _wrap(right))


def ge(left, right) -> Comparison:
    return Comparison(">=", _wrap(left), _wrap(right))


def conjunction(predicates: Sequence[Predicate]) -> Predicate:
    """Flatten a sequence of predicates into one (TRUE when empty)."""
    flat: list[Predicate] = []
    for p in predicates:
        if isinstance(p, And):
            flat.extend(p.operands)
        elif p is TRUE:
            continue
        else:
            flat.append(p)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(*flat)


class Case(Scalar):
    """``CASE WHEN p1 THEN v1 WHEN p2 THEN v2 ... ELSE d END``.

    The discriminated union constructor of the paper's Figure 3 — which
    entity type each joined row represents — is expressed with this.
    """

    def __init__(
        self,
        whens: Sequence[tuple[Predicate, Scalar]],
        default: Optional[Scalar] = None,
    ):
        self.whens = tuple((p, _wrap(v)) for p, v in whens)
        self.default = default if default is not None else Lit(None)

    def eval(self, row: Row, ctx: "EvalContext") -> object:
        for predicate, value in self.whens:
            if predicate.eval(row, ctx):
                return value.eval(row, ctx)
        return self.default.eval(row, ctx)

    def columns(self) -> set[str]:
        used: set[str] = self.default.columns()
        for predicate, value in self.whens:
            used |= predicate.columns() | value.columns()
        return used

    def _key(self):
        return (self.whens, self.default)
