"""Vectorized (columnar) plan executor.

The row compiler (:mod:`repro.algebra.compiler`) already removed
per-row interpretation overhead, but every stage still builds and
copies Python dicts row by row.  This module lowers the same
:class:`~repro.algebra.expressions.RelExpr` trees onto
:class:`~repro.instances.columnar.ColumnBatch` operands instead:

* **selection** evaluates vectorizable predicates as boolean masks over
  whole columns and compresses once;
* **projection** of columns/constants is a column *permutation* —
  O(columns) per stage, sharing the input's (immutable) value lists;
* **hash joins** build and probe over column slices, then gather output
  columns through index lists (one C-level list comprehension per
  column instead of one dict build per row);
* **distinct / difference** encode rows as tuples via ``zip(*columns)``
  and dedup through sets;
* **union** aligns layouts once per batch pair and concatenates value
  lists.

Semantics are bit-for-bit those of the interpreter and the row
compiler — the differential suite in ``tests/test_query_compiler.py``
holds all three engines to identical results, labeled nulls included.
Where a scalar expression or a runtime batch shape falls outside the
vectorizer's reach (heterogeneous rows, exotic predicates, nested-loop
joins), the stage falls back to the row algorithm *per stage*: it
materializes rows, runs the exact row-engine code, and re-encodes —
never approximating the row semantics.

Structure mirrors :class:`~repro.algebra.compiler.CompiledPlan`: the
same CSE detection (:func:`~repro.algebra.compiler._shared_subtrees`),
the same projection-through-union pushdown, and the same
:class:`~repro.algebra.compiler._PlanRegistry` node bookkeeping — so
EXPLAIN / EXPLAIN ANALYZE trees have node-for-node the same shape and
per-node row counts as the row engine's, only with ``vec_*`` strategy
names.  Batches flowing between stages are immutable by convention;
fresh row dicts are built exactly once, at the plan boundary
(:meth:`VectorizedPlan.execute`).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.algebra import compiler as C
from repro.algebra import expressions as E
from repro.algebra import scalars as S
from repro.algebra.compiler import (
    PlanProfile,
    SortKey,
    _Run,
    compile_scalar,
    equality_pairs,
    join_key_value,
)
from repro.errors import EvaluationError
from repro.instances.columnar import Column, ColumnBatch
from repro.instances.database import (
    TYPE_FIELD,
    Instance,
    Row,
    hashable_key,
)
from repro.instances.labeled_null import LabeledNull
from repro.metamodel.schema import Schema
from repro.observability.metrics import registry
from repro.observability.state import STATE
from repro.observability.tracing import tracer

_NOMATCH = C._NOMATCH
_EMPTY = ()

VStage = Callable[[_Run], ColumnBatch]


def _note_row_fallback(stage: str) -> None:
    """Count a vectorized→row-closure fallback and journal it once per
    stage kind (per journal clear) — the fallback itself can run once
    per batch, so the journal entry is deduped while the counter keeps
    the exact tally."""
    if not STATE.enabled:
        return
    registry.counter(f"query.vectorized.row_fallback.{stage}").inc()
    from repro.observability.journal import JOURNAL

    JOURNAL.record_once(
        f"vectorized.row_fallback.{stage}",
        "vectorized.row_fallback",
        stage=stage,
    )


class _Lower:
    """Per-compilation state: the CSE slot map, the stages already
    built for shared subtrees, and the plan-node registry."""

    __slots__ = ("shared", "compiled", "registry")

    def __init__(self, shared: dict[int, int], registry: "C._PlanRegistry"):
        self.shared = shared
        self.compiled: dict[int, VStage] = {}
        self.registry = registry


# ----------------------------------------------------------------------
# column access helpers
# ----------------------------------------------------------------------
def _plain_values(batch: ColumnBatch, name: str) -> Optional[list]:
    """The column's values with absent cells surfaced as ``None`` (the
    ``row.get(name)`` view); ``None`` when the column does not exist at
    all (callers substitute an all-``None`` column)."""
    col = batch.cols.get(name)
    if col is None:
        return None
    if col.present is None:
        return col.values
    return [v if p else None for v, p in zip(col.values, col.present)]


def _full_values(batch: ColumnBatch, name: str) -> Optional[list]:
    """The column's values when every row carries the column, else
    ``None`` (the caller must fall back to row semantics, which may
    raise per row)."""
    col = batch.cols.get(name)
    if col is None or col.present is not None:
        return None
    return col.values


def _raise_missing(batch: ColumnBatch, srcs: tuple[str, ...]) -> None:
    """Interpreter-parity missing-column error: report the first row
    (in order) missing any of ``srcs`` (first such column in ``srcs``
    order), exactly like the row engines do."""
    for i in range(batch.nrows):
        row = batch.row_at(i)
        for src in srcs:
            if src not in row:
                raise EvaluationError(
                    f"row has no column {src!r}: {sorted(row)}"
                ) from None
    raise AssertionError("no missing column found")  # pragma: no cover


def _tuple_keys(batch: ColumnBatch, order: tuple[str, ...]) -> list[tuple]:
    """Tuple encoding of fully-present rows in ``order`` — dict
    equality ⇔ tuple equality when both sides share one column set."""
    if not order:
        return [()] * batch.nrows
    return list(zip(*(batch.cols[c].values for c in order)))


def _from_rows(rows: list[Row]) -> ColumnBatch:
    return ColumnBatch.from_rows(rows)


# ----------------------------------------------------------------------
# vectorized scalar predicates
# ----------------------------------------------------------------------
#: (mask_fn(batch, ctx) -> list[bool], names that must be fully present)
_VecPred = tuple[Callable[[ColumnBatch, object], list], frozenset]


def _pair_fn(op: str):
    """Per-cell comparison with the engines' SQL null semantics."""
    if op == "=":

        def pair_eq(lhs, rhs):
            if isinstance(lhs, LabeledNull) or isinstance(rhs, LabeledNull):
                return lhs == rhs
            if lhs is None or rhs is None:
                return False
            return bool(lhs == rhs)

        return pair_eq
    if op == "!=":

        def pair_ne(lhs, rhs):
            if isinstance(lhs, LabeledNull) or isinstance(rhs, LabeledNull):
                return lhs != rhs
            if lhs is None or rhs is None:
                return False
            return bool(lhs != rhs)

        return pair_ne
    op_fn = S.Comparison._OPS[op]

    def pair_ordered(lhs, rhs):
        if isinstance(lhs, LabeledNull) or isinstance(rhs, LabeledNull):
            return False
        if lhs is None or rhs is None:
            return False
        try:
            return bool(op_fn(lhs, rhs))
        except TypeError:
            return False  # cross-type comparison is unknown

    return pair_ordered


def _clean(col: Column) -> bool:
    """No SQL nulls and no labeled nulls (both views cached on the
    column, so this is O(1) after the first call)."""
    return not col.labels() and not any(col.null_mask())


def _lit_mask_fn(op: str, name: str, lit, flipped: bool):
    """A mask evaluator for ``col <op> lit`` that runs the comparison
    as one plain comprehension — no per-cell closure call — whenever
    that is provably equivalent to the engines' null semantics, else
    falls back to the per-cell pairing at runtime.  Returns ``None``
    when no fast lane exists for this op/literal."""
    if lit is None or isinstance(lit, LabeledNull):
        return None  # null literals need the pairing rules everywhere
    pair = _pair_fn(op)

    if op == "=":
        # `v == lit` matches pair_eq for every v: None == lit is False,
        # LabeledNull.__eq__(concrete) is False.
        def run_mask_eq(b, ctx):
            return [v == lit for v in b.cols[name].values]

        return run_mask_eq

    if op == "!=":
        # Diverges only on SQL NULL cells (pair says False, != says
        # True), so it is licensed per batch by the cached null mask.
        def run_mask_ne(b, ctx):
            col = b.cols[name]
            values = col.values
            if not any(col.null_mask()):
                return [v != lit for v in values]
            if flipped:
                return [pair(lit, v) for v in values]
            return [pair(v, lit) for v in values]

        return run_mask_ne

    op_fn = S.Comparison._OPS[op]

    def run_mask_ordered(b, ctx):
        col = b.cols[name]
        values = col.values
        if _clean(col):
            try:
                if flipped:
                    return [op_fn(lit, v) for v in values]
                return [op_fn(v, lit) for v in values]
            except TypeError:
                pass  # cross-type cell → per-cell unknown-as-False
        if flipped:
            return [pair(lit, v) for v in values]
        return [pair(v, lit) for v in values]

    return run_mask_ordered


def _vector_predicate(scalar) -> Optional[_VecPred]:
    """A columnar mask evaluator for ``scalar``, or ``None`` when the
    scalar is outside the vectorizer's dialect.  Only licensed when
    every referenced column is fully present (``needs``) — that rules
    out both missing-column raises and short-circuit visibility
    differences in ``And``/``Or``."""
    if isinstance(scalar, S._Bool):
        value = bool(scalar.value)
        return (lambda b, ctx: [value] * b.nrows), frozenset()

    if isinstance(scalar, S.Comparison):
        left, right = scalar.left, scalar.right
        pair = _pair_fn(scalar.op)
        if isinstance(left, S.Col) and isinstance(right, S.Lit):
            name, lit = left.name, right.value
            fast = _lit_mask_fn(scalar.op, name, lit, flipped=False)
            if fast is not None:
                return fast, frozenset((name,))
            return (
                lambda b, ctx: [pair(v, lit) for v in b.cols[name].values]
            ), frozenset((name,))
        if isinstance(left, S.Lit) and isinstance(right, S.Col):
            lit, name = left.value, right.name
            fast = _lit_mask_fn(scalar.op, name, lit, flipped=True)
            if fast is not None:
                return fast, frozenset((name,))
            return (
                lambda b, ctx: [pair(lit, v) for v in b.cols[name].values]
            ), frozenset((name,))
        if isinstance(left, S.Col) and isinstance(right, S.Col):
            ln, rn = left.name, right.name
            return (
                lambda b, ctx: [
                    pair(lv, rv)
                    for lv, rv in zip(b.cols[ln].values, b.cols[rn].values)
                ]
            ), frozenset((ln, rn))
        if isinstance(left, S.Lit) and isinstance(right, S.Lit):
            value = pair(left.value, right.value)
            return (lambda b, ctx: [value] * b.nrows), frozenset()
        return None

    if isinstance(scalar, (S.And, S.Or)):
        parts = [_vector_predicate(p) for p in scalar.operands]
        if any(p is None for p in parts):
            return None
        fns = tuple(fn for fn, _ in parts)
        needs = frozenset().union(*(n for _, n in parts))
        if isinstance(scalar, S.And):

            def run_and(b, ctx):
                mask = fns[0](b, ctx)
                for fn in fns[1:]:
                    other = fn(b, ctx)
                    mask = [x and y for x, y in zip(mask, other)]
                return mask

            return run_and, needs

        def run_or(b, ctx):
            mask = fns[0](b, ctx)
            for fn in fns[1:]:
                other = fn(b, ctx)
                mask = [x or y for x, y in zip(mask, other)]
            return mask

        return run_or, needs

    if isinstance(scalar, S.Not):
        part = _vector_predicate(scalar.operand)
        if part is None:
            return None
        fn, needs = part
        return (lambda b, ctx: [not x for x in fn(b, ctx)]), needs

    if isinstance(scalar, S.IsNull) and isinstance(scalar.operand, S.Col):
        name = scalar.operand.name
        if scalar.negated:
            return (
                lambda b, ctx: [
                    not (v is None or isinstance(v, LabeledNull))
                    for v in b.cols[name].values
                ]
            ), frozenset((name,))
        return (
            lambda b, ctx: [
                v is None or isinstance(v, LabeledNull)
                for v in b.cols[name].values
            ]
        ), frozenset((name,))

    if isinstance(scalar, S.In) and isinstance(scalar.operand, S.Col):
        name = scalar.operand.name
        values = scalar.values
        return (
            lambda b, ctx: [
                False if v is None else v in values
                for v in b.cols[name].values
            ]
        ), frozenset((name,))

    if isinstance(scalar, S.IsOf):
        cell = compile_scalar(scalar)  # run_is_of consults row.get

        def run_is_of_mask(b, ctx):
            vals = _plain_values(b, TYPE_FIELD)
            if vals is None:
                row: Row = {}
                value = cell(row, ctx)
                return [value] * b.nrows
            return [cell({TYPE_FIELD: v}, ctx) for v in vals]

        return run_is_of_mask, frozenset()

    return None


# ----------------------------------------------------------------------
# lowering
# ----------------------------------------------------------------------
def _lower(expr: E.RelExpr, st: _Lower) -> VStage:
    """Lower ``expr``, sharing CSE subtrees through the per-execution
    memo and registering plan-node metadata — the vectorized mirror of
    the row compiler's ``_compile``."""
    reg = st.registry
    reg.enter()
    slot = st.shared.get(id(expr))
    if slot is None:
        run = _lower_node(expr, st)
        node_id = reg.exit_register(expr, run.__name__, False)
        return reg.wrap_stage(run, node_id)
    cached = st.compiled.get(id(expr))
    if cached is not None:
        reg.exit_reference(expr)
        return cached
    run = _lower_node(expr, st)
    node_id = reg.exit_register(expr, run.__name__, True)

    def run_shared(ctx, _run=run, _slot=slot):
        memo = ctx.memo
        batch = memo.get(_slot)
        if batch is None:
            batch = memo[_slot] = _run(ctx)
        return batch

    cached = st.compiled[id(expr)] = reg.wrap_stage(run_shared, node_id)
    return cached


def _lower_node(expr: E.RelExpr, st: _Lower) -> VStage:
    if isinstance(expr, E.Scan):
        relation = expr.relation

        def run_vec_scan(ctx):
            return ctx.instance.column_batch(relation)

        return run_vec_scan

    if isinstance(expr, E.EntityScan):
        return _lower_entity_scan(expr)

    if isinstance(expr, E.Values):
        batch = ColumnBatch.from_rows([dict(r) for r in expr.rows])

        def run_vec_values(ctx):
            return batch

        return run_vec_values

    if isinstance(expr, E.Select):
        return _lower_select(expr, st)

    if isinstance(expr, E.Project):
        return _lower_project(expr, st)

    if isinstance(expr, E.Extend):
        return _lower_extend(expr, st)

    if isinstance(expr, E.Rename):
        inner = _lower(expr.input, st)
        mapping = expr.mapping

        def run_vec_rename(ctx):
            batch = inner(ctx)
            new_names = tuple(mapping.get(c, c) for c in batch.names)
            if len(set(new_names)) == len(new_names):
                cols = {
                    new: batch.cols[old]
                    for new, old in zip(new_names, batch.names)
                }
                return ColumnBatch(new_names, cols, batch.nrows)
            # Colliding rename: later key wins per row — row semantics.
            return _from_rows([
                {mapping.get(k, k): v for k, v in row.items()}
                for row in batch.to_rows()
            ])

        return run_vec_rename

    if isinstance(expr, E.Join):
        return _lower_join(expr, st)

    if isinstance(expr, E.UnionAll):
        return _lower_union(expr, st)

    if isinstance(expr, E.Difference):
        return _lower_difference(expr, st)

    if isinstance(expr, E.Distinct):
        inner = _lower(expr.input, st)

        def run_vec_distinct(ctx):
            batch = inner(ctx)
            if batch.full:
                names = batch.names
                try:
                    if len(names) == 1:
                        # Single column: row equality is value equality
                        # (labeled nulls hash/eq by label either way),
                        # and dict.fromkeys keeps first occurrences in
                        # first-seen order — the output column itself.
                        name = names[0]
                        values = batch.cols[name].values
                        ordered = list(dict.fromkeys(values))
                        if len(ordered) == len(values):
                            return batch
                        return ColumnBatch(
                            names, {name: Column(ordered)}, len(ordered)
                        )
                    keys = _tuple_keys(batch, names)
                    n = batch.nrows
                    # Reversed insertion: the surviving position per key
                    # is its first occurrence (last assignment wins).
                    first = {
                        key: i
                        for i, key in zip(
                            range(n - 1, -1, -1), reversed(keys)
                        )
                    }
                    if len(first) == n:
                        return batch
                    return batch.take(sorted(first.values()))
                except TypeError:
                    pass  # unhashable value → frozen-row path
            return _from_rows(C._distinct_frozen(batch.to_rows()))

        return run_vec_distinct

    if isinstance(expr, E.Aggregate):
        return _lower_aggregate(expr, st)

    if isinstance(expr, E.Sort):
        inner = _lower(expr.input, st)
        keys = expr.keys

        def run_vec_sort(ctx):
            batch = inner(ctx)
            indices = list(range(batch.nrows))
            for key in reversed(keys):
                descending = key.startswith("-")
                column = key[1:] if descending else key
                vals = _plain_values(batch, column)
                if vals is None:
                    continue  # all keys equal → stable sort is identity
                indices.sort(
                    key=lambda i: SortKey(vals[i]), reverse=descending
                )
            return batch.take(indices)

        return run_vec_sort

    raise EvaluationError(f"unknown expression node {type(expr).__name__}")


def _lower_entity_scan(expr: E.EntityScan) -> VStage:
    entity_name = expr.entity
    only = expr.only

    def run_vec_entity_scan(ctx):
        schema = ctx.schema
        if schema is None:
            raise EvaluationError("EntityScan requires a schema")
        entity = schema.entity(entity_name)
        root = entity.root().name
        batch = ctx.instance.column_batch(root)
        values = _plain_values(batch, TYPE_FIELD)
        col = batch.cols.get(TYPE_FIELD)
        absent = None if col is None or col.present is None else col.present
        if only:
            if values is None:
                mask = [False] * batch.nrows
            else:
                mask = [v == entity_name for v in values]
        else:
            members = {entity.name} | {d.name for d in entity.descendants()}
            if values is None:
                mask = [root in members] * batch.nrows
            elif absent is None:
                mask = [v in members for v in values]
            else:
                # An absent $type defaults to the root entity; a
                # present None does not (row.get(k, default) parity).
                mask = [
                    (v if p else root) in members
                    for v, p in zip(values, absent)
                ]
        return batch.compress(mask)

    return run_vec_entity_scan


def _lower_select(expr: E.Select, st: _Lower) -> VStage:
    inner = _lower(expr.input, st)
    predicate = compile_scalar(expr.predicate)
    vec = _vector_predicate(expr.predicate)

    if vec is None:

        def run_vec_select_rows(ctx):
            batch = inner(ctx)
            if not batch.nrows:
                return batch
            mask = [predicate(row, ctx) for row in batch.to_rows()]
            return batch.compress(mask)

        return run_vec_select_rows

    mask_fn, needs = vec

    def run_vec_select(ctx):
        batch = inner(ctx)
        if not batch.nrows:
            return batch
        cols = batch.cols
        for name in needs:
            col = cols.get(name)
            if col is None or col.present is not None:
                # A referenced column is missing from some row: use the
                # row path (exact raise/short-circuit semantics).
                mask = [predicate(row, ctx) for row in batch.to_rows()]
                return batch.compress(mask)
        return batch.compress(mask_fn(batch, ctx))

    return run_vec_select


def _lower_project(expr: E.Project, st: _Lower) -> VStage:
    pushed = C._push_project_through_union(expr)
    if pushed is not None:
        return _lower(pushed, st)

    inner = _lower(expr.input, st)
    outputs = expr.outputs
    out_names = expr.output_names

    if all(isinstance(s, (S.Col, S.Lit)) for _, s in outputs):
        col_pairs = tuple(
            (name, s.name) for name, s in outputs if isinstance(s, S.Col)
        )
        const_items = tuple(
            (name, s.value) for name, s in outputs if isinstance(s, S.Lit)
        )
        srcs = tuple(src for _, src in col_pairs)

        def run_vec_project(ctx):
            batch = inner(ctx)
            cols = batch.cols
            nrows = batch.nrows
            out_cols = {}
            for name, src in col_pairs:
                col = cols.get(src)
                if col is None or col.present is not None:
                    if not nrows:
                        return ColumnBatch.empty(out_names)
                    _raise_missing(batch, srcs)
                out_cols[name] = col
            for name, value in const_items:
                out_cols[name] = Column([value] * nrows)
            return ColumnBatch(out_names, out_cols, nrows)

        return run_vec_project

    compiled = tuple(
        (name, compile_scalar(scalar)) for name, scalar in outputs
    )

    def run_vec_project_rows(ctx):
        batch = inner(ctx)
        built = [
            {name: fn(row, ctx) for name, fn in compiled}
            for row in batch.to_rows()
        ]
        return ColumnBatch.from_homogeneous_rows(built, out_names)

    return run_vec_project_rows


def _lower_extend(expr: E.Extend, st: _Lower) -> VStage:
    inner = _lower(expr.input, st)
    name = expr.name
    scalar = expr.scalar
    cell = compile_scalar(scalar)

    def fallback(batch, ctx):
        _note_row_fallback("extend")
        rows = batch.to_rows()
        for row in rows:
            row[name] = cell(row, ctx)
        return _from_rows(rows)

    if isinstance(scalar, S.Lit):
        value = scalar.value

        def run_vec_extend_const(ctx):
            batch = inner(ctx)
            col = batch.cols.get(name)
            if col is not None and col.present is not None:
                # Partially present target: per-row key order differs
                # between rows — only the row path reproduces it.
                return fallback(batch, ctx)
            return _with_column(batch, name, Column([value] * batch.nrows))

        return run_vec_extend_const

    if isinstance(scalar, S.Col):
        src = scalar.name

        def run_vec_extend_col(ctx):
            batch = inner(ctx)
            col = batch.cols.get(name)
            if col is not None and col.present is not None:
                return fallback(batch, ctx)
            values = _full_values(batch, src)
            if values is None:
                return fallback(batch, ctx)  # raises row-style if absent
            return _with_column(batch, name, Column(values))

        return run_vec_extend_col

    def run_vec_extend_rows(ctx):
        return fallback(inner(ctx), ctx)

    return run_vec_extend_rows


def _with_column(batch: ColumnBatch, name: str, col: Column) -> ColumnBatch:
    cols = dict(batch.cols)
    names = batch.names if name in cols else batch.names + (name,)
    cols[name] = col
    return ColumnBatch(names, cols, batch.nrows)


# ----------------------------------------------------------------------
# joins
# ----------------------------------------------------------------------
def _batch_keys(
    batch: ColumnBatch,
    columns: tuple[str, ...],
    tolerant: tuple[bool, ...],
) -> list:
    """Per-row join keys over column slices (``_NOMATCH`` marks a null
    under a null-rejecting pair) — the columnar image of the row
    engine's ``_make_join_keyer``."""
    n = batch.nrows
    if len(columns) == 1:
        col = batch.cols.get(columns[0])
        if tolerant[0]:
            values = _plain_values(batch, columns[0])
            if values is None:
                return [None] * n
            return [hashable_key(v) for v in values]
        if col is None:
            return [_NOMATCH] * n
        if (
            col.present is None
            and not col.labels()
            and not any(col.null_mask())
        ):
            # No nulls, no labeled nulls: the values ARE the keys.
            # Both derived views are cached on the Column, so keying a
            # scanned column is free from the second query on.
            return col.values
        values = _plain_values(batch, columns[0])
        out = []
        append = out.append
        for v in values:
            if v is None:
                append(_NOMATCH)
            elif isinstance(v, LabeledNull):
                append(("⊥", v.label))
            else:
                append(v)
        return out
    per_col = []
    for c in columns:
        values = _plain_values(batch, c)
        per_col.append(values if values is not None else [None] * n)
    keyers = tuple(hashable_key if t else join_key_value for t in tolerant)
    strict_at = tuple(i for i, t in enumerate(tolerant) if not t)
    out = []
    append = out.append
    for cells in zip(*per_col):
        key = tuple(k(v) for k, v in zip(keyers, cells))
        nomatch = False
        for i in strict_at:
            if key[i] is None:
                nomatch = True
                break
        append(_NOMATCH if nomatch else key)
    return out


def _lower_join(expr: E.Join, st: _Lower) -> VStage:
    left = _lower(expr.left, st)
    right = _lower(expr.right, st)
    kind = expr.kind
    right_prefix = expr.right_prefix
    pairs = equality_pairs(expr.predicate)

    if pairs:
        tolerant = tuple(t for _, _, t in pairs)
        l_cols = tuple(lc for lc, _, _ in pairs)
        r_cols = tuple(rc for _, rc, _ in pairs)
        lkey_row = C._make_join_keyer(l_cols, tolerant)
        rkey_row = C._make_join_keyer(r_cols, tolerant)
        join_right_cols = set(r_cols)
        semi_licensed = (
            kind == "inner"
            and right_prefix is None
            and isinstance(expr.right, (E.Distinct, E.Difference))
        )
        is_left = kind == "left"

        def rows_fallback(lb, rb):
            """Exact run_hash_join over materialized rows."""
            _note_row_fallback("join")
            right_rows = rb.to_rows()
            index: dict = {}
            setdefault = index.setdefault
            for r_row in right_rows:
                key = rkey_row(r_row)
                if key is not _NOMATCH:
                    setdefault(key, []).append(r_row)
            right_columns = C._column_set(right_rows)
            get = index.get
            out = []
            append = out.append
            for l_row in lb.to_rows():
                candidates = get(lkey_row(l_row), ())
                if candidates:
                    for r_row in candidates:
                        append(C.merge_rows(l_row, r_row, right_prefix))
                elif is_left:
                    append(C._pad_left(l_row, right_columns, right_prefix))
            return _from_rows(out)

        def run_vec_hash_join(ctx):
            lb = left(ctx)
            rb = right(ctx)
            if not (lb.full and rb.full) or (is_left and right_prefix):
                # Heterogeneous rows — or prefixed left-join padding,
                # which prefixes *all* right columns while matches keep
                # non-colliding ones unprefixed: row semantics only.
                return rows_fallback(lb, rb)
            if (
                semi_licensed
                and set(rb.names) == join_right_cols
                and join_right_cols <= set(lb.names)
            ):
                # Right side contributes no columns and holds at most
                # one row per key: the join is a pure filter.
                rkeys = _batch_keys(rb, r_cols, tolerant)
                keys = {k for k in rkeys if k is not _NOMATCH}
                lkeys = _batch_keys(lb, l_cols, tolerant)
                return lb.compress([k in keys for k in lkeys])
            rkeys = _batch_keys(rb, r_cols, tolerant)
            lkeys = _batch_keys(lb, l_cols, tolerant)
            padded = False
            li: Optional[list] = None  # None ⇒ identity gather
            pos = {
                key: j
                for j, key in enumerate(rkeys)
                if key is not _NOMATCH
            }
            if len(pos) == len(rkeys):
                # Unique build keys, no null-rejected rows (the common
                # FK→PK shape): each left row resolves to at most one
                # gather position — no candidate lists.
                get1 = pos.get
                ji = [get1(key, -1) for key in lkeys]
                if is_left:
                    ri = ji  # every left row survives, in order
                    padded = -1 in ji
                elif -1 in ji:
                    li = [i for i, j in enumerate(ji) if j >= 0]
                    ri = [ji[i] for i in li]
                else:
                    ri = ji  # every left row matched exactly once
            else:
                index: dict = {}
                setdefault = index.setdefault
                for j, key in enumerate(rkeys):
                    if key is not _NOMATCH:
                        setdefault(key, []).append(j)
                get = index.get
                if not is_left:
                    # Two comprehension passes beat one interpreted loop.
                    li = [
                        i
                        for i, key in enumerate(lkeys)
                        for _ in get(key, _EMPTY)
                    ]
                    ri = [j for key in lkeys for j in get(key, _EMPTY)]
                else:
                    li = []
                    ri = []
                    li_append = li.append
                    ri_append = ri.append
                    for i, key in enumerate(lkeys):
                        candidates = get(key)
                        if candidates:
                            li.extend([i] * len(candidates))
                            ri.extend(candidates)
                        else:
                            li_append(i)
                            ri_append(-1)
                            padded = True
            l_names = lb.names
            l_set = set(l_names)
            actions = []
            if rb.nrows:
                for c in rb.names:
                    if c in l_set:
                        if right_prefix:
                            actions.append((f"{right_prefix}.{c}", c))
                    else:
                        actions.append((c, c))
            out_cols = {}
            if li is None:
                # Identity gather: share the left columns unchanged
                # (batches are immutable by convention).
                for name in l_names:
                    out_cols[name] = lb.cols[name]
                nout = lb.nrows
            else:
                for name in l_names:
                    values = lb.cols[name].values
                    out_cols[name] = Column([values[i] for i in li])
                nout = len(li)
            for name, src in actions:
                values = rb.cols[src].values
                if padded:
                    out_cols[name] = Column(
                        [values[j] if j >= 0 else None for j in ri]
                    )
                else:
                    out_cols[name] = Column([values[j] for j in ri])
            names = l_names + tuple(name for name, _ in actions)
            return ColumnBatch(names, out_cols, nout)

        return run_vec_hash_join

    if pairs == []:  # TRUE predicate: cross join

        def run_vec_cross_join(ctx):
            lb = left(ctx)
            rb = right(ctx)
            right_rows = rb.to_rows()
            right_columns = C._column_set(right_rows)
            out = []
            append = out.append
            for l_row in lb.to_rows():
                if right_rows:
                    for r_row in right_rows:
                        append(C.merge_rows(l_row, r_row, right_prefix))
                elif kind == "left":
                    append(C._pad_left(l_row, right_columns, right_prefix))
            return _from_rows(out)

        return run_vec_cross_join

    predicate = compile_scalar(expr.predicate)

    def run_vec_nested_join(ctx):
        lb = left(ctx)
        rb = right(ctx)
        right_rows = rb.to_rows()
        right_columns = C._column_set(right_rows)
        out = []
        append = out.append
        for l_row in lb.to_rows():
            matched = False
            for r_row in right_rows:
                combined = dict(l_row)
                for key, value in r_row.items():
                    if key not in combined:
                        combined[key] = value
                for key, value in l_row.items():
                    combined[f"$left.{key}"] = value
                for key, value in r_row.items():
                    combined[f"$right.{key}"] = value
                if not predicate(combined, ctx):
                    continue
                matched = True
                append(C.merge_rows(l_row, r_row, right_prefix))
            if not matched and kind == "left":
                append(C._pad_left(l_row, right_columns, right_prefix))
        return _from_rows(out)

    return run_vec_nested_join


# ----------------------------------------------------------------------
# union / difference
# ----------------------------------------------------------------------
def _lower_union(expr: E.UnionAll, st: _Lower) -> VStage:
    left = _lower(expr.left, st)
    right = _lower(expr.right, st)

    def run_vec_union(ctx):
        lb = left(ctx)
        rb = right(ctx)
        # Column discovery over actual data (interpreter parity): an
        # empty side contributes no columns, so the other side passes
        # through with only its own padding.
        if not rb.nrows:
            if lb.full:
                return lb
            sides = [lb]
        elif not lb.nrows:
            if rb.full:
                return rb
            sides = [rb]
        else:
            sides = [lb, rb]
        observed: dict[str, None] = {}
        for side in sides:
            for name in side.names:
                if name not in observed:
                    col = side.cols[name]
                    if col.present is None or any(col.present):
                        observed[name] = None
        nrows = sum(side.nrows for side in sides)
        out_cols = {}
        for name in observed:
            parts = [
                part
                if (part := _plain_values(side, name)) is not None
                else [None] * side.nrows
                for side in sides
            ]
            if len(parts) == 1:
                out_cols[name] = Column(parts[0])
            else:
                out_cols[name] = Column(parts[0] + parts[1])
        return ColumnBatch(tuple(observed), out_cols, nrows)

    return run_vec_union


def _lower_difference(expr: E.Difference, st: _Lower) -> VStage:
    left = _lower(expr.left, st)
    right = _lower(expr.right, st)

    def run_vec_difference(ctx):
        lb = left(ctx)
        rb = right(ctx)
        if lb.full and rb.full and set(lb.names) == set(rb.names):
            order = lb.names
            try:
                if len(order) == 1:
                    excluded = set(rb.cols[order[0]].values)
                    keys = lb.cols[order[0]].values
                else:
                    excluded = set(_tuple_keys(rb, order))
                    keys = _tuple_keys(lb, order)
                n = lb.nrows
                # First-occurrence position per key (reversed insertion,
                # last assignment wins), minus the excluded keys —
                # difference dedups its left side like the row engine.
                first = {
                    key: i
                    for i, key in zip(range(n - 1, -1, -1), reversed(keys))
                }
                indices = sorted(
                    i for key, i in first.items() if key not in excluded
                )
                if len(indices) == n:
                    return lb
                return lb.take(indices)
            except TypeError:
                pass  # unhashable value → frozen-row path
        return _from_rows(
            C._difference_frozen(lb.to_rows(), rb.to_rows())
        )

    return run_vec_difference


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
def _agg_reduce(func: str, values: list) -> object:
    filtered = [
        v
        for v in values
        if v is not None and not isinstance(v, LabeledNull)
    ]
    if func == "count":
        return len(filtered)
    if not filtered:
        return None
    if func == "sum":
        return sum(filtered)
    if func == "min":
        return min(filtered)
    if func == "max":
        return max(filtered)
    if func == "avg":
        return sum(filtered) / len(filtered)
    raise EvaluationError(f"unknown aggregate {func!r}")


def _lower_aggregate(expr: E.Aggregate, st: _Lower) -> VStage:
    inner = _lower(expr.input, st)
    group_by = tuple(expr.group_by)
    aggregations = expr.aggregations
    compiled = tuple(
        (name, func, compile_scalar(scalar) if scalar is not None else None)
        for name, func, scalar in aggregations
    )
    out_names = group_by + tuple(name for name, _, _ in aggregations)
    columnar_ok = all(
        scalar is None or isinstance(scalar, S.Col)
        for _, _, scalar in aggregations
    )
    agg_srcs = tuple(
        (name, func, scalar.name if scalar is not None else None)
        for name, func, scalar in aggregations
    )

    def rows_fallback(batch, ctx):
        _note_row_fallback("aggregate")
        groups: dict[tuple, list[Row]] = {}
        setdefault = groups.setdefault
        for row in batch.to_rows():
            key = tuple(join_key_value(row.get(c)) for c in group_by)
            setdefault(key, []).append(row)
        if not groups and not group_by:
            groups[()] = []
        out = []
        for members in groups.values():
            result: Row = {}
            for column in group_by:
                result[column] = members[0].get(column) if members else None
            for name, func, cell in compiled:
                result[name] = C._apply_aggregate(func, cell, members, ctx)
            out.append(result)
        return ColumnBatch.from_homogeneous_rows(out, out_names)

    def run_vec_aggregate(ctx):
        batch = inner(ctx)
        if not columnar_ok:
            return rows_fallback(batch, ctx)
        agg_values = {}
        for _, _, src in agg_srcs:
            if src is None or src in agg_values:
                continue
            values = _full_values(batch, src)
            if values is None:
                # Col over a missing/partial column raises per row —
                # keep the exact row semantics.
                return rows_fallback(batch, ctx)
            agg_values[src] = values
        n = batch.nrows
        group_values = [
            part if (part := _plain_values(batch, c)) is not None
            else [None] * n
            for c in group_by
        ]
        groups: dict[tuple, list[int]] = {}
        setdefault = groups.setdefault
        if group_by:
            mapped = [
                [join_key_value(v) for v in values]
                for values in group_values
            ]
            for i, key in enumerate(zip(*mapped)):
                setdefault(key, []).append(i)
        else:
            groups[()] = list(range(n))
        if not groups and not group_by:
            groups[()] = []
        out_cols: dict[str, list] = {name: [] for name in out_names}
        for idxs in groups.values():
            for c, values in zip(group_by, group_values):
                out_cols[c].append(values[idxs[0]] if idxs else None)
            for name, func, src in agg_srcs:
                if src is None:
                    if func == "count":
                        out_cols[name].append(len(idxs))
                    else:
                        out_cols[name].append(
                            _agg_reduce(func, [1] * len(idxs))
                        )
                else:
                    values = agg_values[src]
                    out_cols[name].append(
                        _agg_reduce(func, [values[i] for i in idxs])
                    )
        return ColumnBatch(
            out_names,
            {name: Column(values) for name, values in out_cols.items()},
            len(groups),
        )

    return run_vec_aggregate


# ----------------------------------------------------------------------
# vectorized plans
# ----------------------------------------------------------------------
class VectorizedPlan:
    """An executable columnar pipeline compiled from one
    :class:`RelExpr` — the vectorized sibling of
    :class:`~repro.algebra.compiler.CompiledPlan`, sharing its plan
    cacheability contract: immutable, reentrant, per-run state in the
    locals of one :meth:`execute` call."""

    __slots__ = (
        "expr", "fingerprint", "size", "_run",
        "nodes", "root_id", "_profiled_run", "last_profile",
        "optimized_from", "_annotate_memo",
    )

    def __init__(self, expr: E.RelExpr, fingerprint: Optional[str] = None):
        self.expr = expr
        self.fingerprint = fingerprint or expr.fingerprint()
        self.size = expr.size()
        self._profiled_run = None
        self.last_profile: Optional[PlanProfile] = None
        self._annotate_memo = None     # annotate_plan's per-instance memo
        # Source fingerprint when the adaptive cache compiled this plan
        # from a cost-based rewrite of a different tree (EXPLAIN shows
        # it); informational only.
        self.optimized_from: Optional[str] = None
        run, reg = self._compile_with(wrap=False)
        self._run = run
        self.nodes = reg.nodes
        self.root_id = reg.root_id()

    def _compile_with(self, wrap: bool):
        """One lowering pass.  Shares the row compiler's scalar-closure
        memo slot (hence the compile lock), so CSE-shared predicates
        lower once per pass here too."""
        with C._COMPILE_LOCK:
            prev_memo = C._scalar_memo
            C._scalar_memo = {}
            try:
                shared = C._shared_subtrees(self.expr)
                st = _Lower(shared, C._PlanRegistry(wrap))
                run = _lower(self.expr, st)
            finally:
                C._scalar_memo = prev_memo
        return run, st.registry

    def _ensure_profiled(self):
        if self._profiled_run is None:
            run, _ = self._compile_with(wrap=True)
            self._profiled_run = run
        return self._profiled_run

    def batch(
        self, instance: Instance, schema: Optional[Schema] = None
    ) -> ColumnBatch:
        """The plan's output batch (shared storage — treat as
        immutable; :meth:`execute` is the row-materializing API)."""
        ctx = _Run(instance, schema if schema is not None else instance.schema)
        return self._run(ctx)

    def execute(
        self, instance: Instance, schema: Optional[Schema] = None
    ) -> list[Row]:
        """Run against ``instance`` and return fresh result rows."""
        if not STATE.enabled:
            ctx = _Run(
                instance, schema if schema is not None else instance.schema
            )
            return self._run(ctx).to_rows()
        rows, self.last_profile = self.execute_profiled(instance, schema)
        return rows

    def execute_profiled(
        self, instance: Instance, schema: Optional[Schema] = None
    ) -> tuple[list[Row], PlanProfile]:
        """EXPLAIN ANALYZE: run the profiled pipeline and return
        ``(rows, profile)`` — per-node calls/rows/seconds, exactly as
        the row engine reports them."""
        run = self._ensure_profiled()
        counters = [[0, 0, 0.0] for _ in self.nodes]
        ctx = _Run(
            instance,
            schema if schema is not None else instance.schema,
            counters,
        )
        if not STATE.enabled:
            rows = run(ctx).to_rows()
        else:
            with tracer.span(
                "query.execute",
                engine="vectorized",
                plan=self.fingerprint[:12],
                **{"plan.size": self.size},
            ) as span:
                rows = run(ctx).to_rows()
                if span is not None:
                    span.set_attribute("rows", len(rows))
            registry.counter("query.execute.count").inc()
            registry.histogram("query.execute.rows").observe(len(rows))
        profile = PlanProfile(
            self.nodes, self.root_id, counters, self.fingerprint, len(rows)
        )
        return rows, profile

    def __repr__(self) -> str:
        return (
            f"<VectorizedPlan {self.fingerprint[:12]} "
            f"size={self.size}>"
        )


def compile_vector_plan(
    expr: E.RelExpr, fingerprint: Optional[str] = None
) -> VectorizedPlan:
    """Compile ``expr`` into a :class:`VectorizedPlan` (uncached — go
    through :mod:`repro.algebra.plan_cache` for the memoized path)."""
    if not STATE.enabled:
        return VectorizedPlan(expr, fingerprint)
    with tracer.span(
        "query.compile", engine="vectorized", **{"plan.size": expr.size()}
    ) as span:
        plan = VectorizedPlan(expr, fingerprint)
        if span is not None:
            span.set_attribute("plan", plan.fingerprint[:12])
    return plan
