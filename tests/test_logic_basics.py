"""Unit tests for terms, formulas, the parser and homomorphism search."""

import pytest

from repro.errors import MappingError
from repro.instances import Instance, LabeledNull
from repro.logic import (
    Atom,
    Const,
    ConjunctiveQuery,
    Equality,
    FuncTerm,
    TGD,
    Var,
    find_all_homomorphisms,
    find_homomorphism,
    instance_homomorphism,
    parse_atom,
    parse_egd,
    parse_query,
    parse_tgd,
)
from repro.logic.terms import apply_term, unify, variables_of


class TestTerms:
    def test_apply_substitution(self):
        x, y = Var("x"), Var("y")
        assert apply_term(x, {x: Const(1)}) == Const(1)
        assert apply_term(y, {x: Const(1)}) == y

    def test_apply_chases_chains(self):
        x, y = Var("x"), Var("y")
        assert apply_term(x, {x: y, y: Const(2)}) == Const(2)

    def test_apply_into_func_terms(self):
        x = Var("x")
        term = FuncTerm("f", (x, Const(1)))
        assert apply_term(term, {x: Const(9)}) == FuncTerm("f", (Const(9), Const(1)))

    def test_unify_var_const(self):
        x = Var("x")
        sub = {}
        assert unify(x, Const(3), sub)
        assert sub[x] == Const(3)

    def test_unify_func_terms(self):
        x, y = Var("x"), Var("y")
        sub = {}
        assert unify(FuncTerm("f", (x, Const(1))), FuncTerm("f", (Const(2), y)), sub)
        assert sub[x] == Const(2) and sub[y] == Const(1)

    def test_unify_mismatched_functions(self):
        assert not unify(FuncTerm("f", ()), FuncTerm("g", ()), {})

    def test_unify_occurs_check(self):
        x = Var("x")
        assert not unify(x, FuncTerm("f", (x,)), {})

    def test_variables_of(self):
        x, y = Var("x"), Var("y")
        assert variables_of(FuncTerm("f", (x, FuncTerm("g", (y,))))) == {x, y}


class TestAtoms:
    def test_atom_of_wraps_constants(self):
        atom = Atom.of("R", a=Var("x"), b=5)
        assert atom.term("a") == Var("x")
        assert atom.term("b") == Const(5)

    def test_substitute(self):
        atom = Atom.of("R", a=Var("x"))
        assert atom.substitute({Var("x"): Const(1)}).term("a") == Const(1)

    def test_str(self):
        assert str(Atom.of("R", a=Var("x"), b="hi")) == 'R(a=x, b="hi")'


class TestParser:
    def test_parse_atom(self):
        atom = parse_atom("Empl(EID=x, Name='Ann')")
        assert atom.relation == "Empl"
        assert atom.term("EID") == Var("x")
        assert atom.term("Name") == Const("Ann")

    def test_parse_numbers_and_keywords(self):
        atom = parse_atom("R(a=1, b=2.5, c=true, d=null, e=-3)")
        assert atom.term("a") == Const(1)
        assert atom.term("b") == Const(2.5)
        assert atom.term("c") == Const(True)
        assert atom.term("d") == Const(None)
        assert atom.term("e") == Const(-3)

    def test_parse_func_term(self):
        atom = parse_atom("R(a=f(x, y))")
        assert atom.term("a") == FuncTerm("f", (Var("x"), Var("y")))

    def test_parse_tgd(self):
        tgd = parse_tgd("Empl(EID=x, AID=a) & Addr(AID=a, City=c) -> Staff(SID=x, City=c)")
        assert len(tgd.body) == 2 and len(tgd.head) == 1
        assert tgd.frontier() == {Var("x"), Var("c")}
        assert tgd.is_full

    def test_parse_tgd_with_existential(self):
        tgd = parse_tgd("HR(Id=i) -> Badge(Id=i, Code=b)")
        assert tgd.existentials() == {Var("b")}
        assert not tgd.is_full

    def test_parse_egd(self):
        egd = parse_egd("R(k=x, v=a) & R(k=x, v=b) -> a = b")
        assert len(egd.body) == 2
        assert egd.equalities == (Equality(Var("a"), Var("b")),)

    def test_parse_query(self):
        q = parse_query("q(x, c) :- Empl(EID=x, AID=a) & Addr(AID=a, City=c)")
        assert q.head == (Var("x"), Var("c"))
        assert q.is_safe()
        assert q.relations() == {"Empl", "Addr"}

    def test_parse_query_with_condition(self):
        q = parse_query("q(x) :- R(a=x, b=y) & y = 5")
        assert q.conditions == (Equality(Var("y"), Const(5)),)

    def test_reject_garbage(self):
        with pytest.raises(MappingError):
            parse_tgd("R(a=x) ->")
        with pytest.raises(MappingError):
            parse_atom("R(a=x) & S(b=y)")
        with pytest.raises(MappingError):
            parse_egd("R(a=x) -> S(b=x)")

    def test_roundtrip_str(self):
        tgd = parse_tgd("R(a=x) -> S(b=x, c=y)")
        again = parse_tgd(str(tgd).replace("∃y ", ""))
        assert again.body == tgd.body and again.head == tgd.head


class TestFormulaHomomorphisms:
    def setup_method(self):
        self.db = Instance()
        self.db.insert_all("Empl", [
            {"EID": 1, "AID": 10}, {"EID": 2, "AID": 20}, {"EID": 3, "AID": 10},
        ])
        self.db.insert_all("Addr", [
            {"AID": 10, "City": "Rome"}, {"AID": 20, "City": "Oslo"},
        ])

    def test_single_atom(self):
        homs = find_all_homomorphisms([parse_atom("Empl(EID=x)")], self.db)
        assert {h[Var("x")] for h in homs} == {1, 2, 3}

    def test_join(self):
        atoms = [parse_atom("Empl(EID=x, AID=a)"), parse_atom("Addr(AID=a, City=c)")]
        homs = find_all_homomorphisms(atoms, self.db)
        assert len(homs) == 3
        rome = [h for h in homs if h[Var("c")] == "Rome"]
        assert {h[Var("x")] for h in rome} == {1, 3}

    def test_constant_filtering(self):
        homs = find_all_homomorphisms([parse_atom("Addr(City='Rome', AID=a)")], self.db)
        assert len(homs) == 1 and homs[0][Var("a")] == 10

    def test_partial_assignment(self):
        hom = find_homomorphism(
            [parse_atom("Empl(EID=x, AID=a)")], self.db, partial={Var("x"): 2}
        )
        assert hom[Var("a")] == 20

    def test_conditions(self):
        q = parse_query("q(x) :- Empl(EID=x, AID=a) & a = 10")
        homs = find_all_homomorphisms(q.body, self.db, q.conditions)
        assert {h[Var("x")] for h in homs} == {1, 3}

    def test_no_match(self):
        assert find_homomorphism([parse_atom("Empl(EID=99)")], self.db) is None

    def test_repeated_variable_must_agree(self):
        db = Instance()
        db.add("R", a=1, b=1)
        db.add("R", a=1, b=2)
        homs = find_all_homomorphisms([parse_atom("R(a=x, b=x)")], db)
        assert len(homs) == 1


class TestInstanceHomomorphism:
    def test_nulls_map_to_constants(self):
        source, target = Instance(), Instance()
        n = LabeledNull(0)
        source.add("R", a=n, b=1)
        target.add("R", a=7, b=1)
        mapping = instance_homomorphism(source, target)
        assert mapping == {n: 7}

    def test_constants_are_fixed(self):
        source, target = Instance(), Instance()
        source.add("R", a=1)
        target.add("R", a=2)
        assert instance_homomorphism(source, target) is None

    def test_consistency_across_rows(self):
        source, target = Instance(), Instance()
        n = LabeledNull(0)
        source.add("R", a=n)
        source.add("S", a=n)
        target.add("R", a=1)
        target.add("S", a=2)
        assert instance_homomorphism(source, target) is None
        target.add("S", a=1)
        assert instance_homomorphism(source, target) == {n: 1}


class TestCanonicalInstance:
    def test_variables_become_nulls(self):
        q = parse_query("q(x) :- R(a=x, b=y)")
        instance, head = q.canonical_instance()
        assert instance.cardinality("R") == 1
        assert all(isinstance(v, LabeledNull) for v in instance.rows("R")[0].values())
        assert head[0] == instance.rows("R")[0]["a"]

    def test_constants_stay(self):
        q = parse_query("q(x) :- R(a=x, b=5)")
        instance, _ = q.canonical_instance()
        assert instance.rows("R")[0]["b"] == 5
