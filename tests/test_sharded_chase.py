"""Shard-parallel chase: planner, differential equivalence, recorder
merging, thread-safe observability, and the concurrent runtime fronts.

The load-bearing property is *equivalence modulo nulls*: for every
workload and every shard count, the sharded engine must produce an
instance `set_equal_modulo_nulls` to the sequential engine's — and at
``shards=1`` the sequential engine itself runs, byte-identically.
"""

import copy
import random
import threading

import pytest

from repro.instances import Instance
from repro.instances.database import freeze_row
from repro.logic import chase, parse_egd, parse_tgd
from repro.logic.chase import ChaseRecorder
from repro.logic.sharding import plan_shards
from repro.mappings import Mapping
from repro.metamodel import INT, SchemaBuilder
from repro.observability.metrics import Counter, Gauge, Histogram
from repro.runtime.incremental import (
    MaterializedExchange,
    set_equal_modulo_nulls,
)
from repro.runtime.p2p import PeerNetwork
from repro.runtime.synchronization import QueuedSynchronizer
from repro.runtime.updates import UpdateSet


def _assert_equivalent(build, shards, same_steps=True):
    """Chase ``build()`` sequentially and with ``shards`` shards and
    assert the results are equal modulo nulls (and, by default, took
    the same number of steps)."""
    db_seq, deps = build()
    db_shard = copy.deepcopy(db_seq)
    seq = chase(db_seq, deps, shards=1)
    sharded = chase(db_shard, deps, shards=shards)
    assert set_equal_modulo_nulls(seq.instance, sharded.instance), (
        f"sharded({shards}) diverged: "
        f"{seq.instance.total_rows()} vs {sharded.instance.total_rows()} rows"
    )
    if same_steps:
        assert seq.steps == sharded.steps
    return seq, sharded


# ----------------------------------------------------------------------
# planner
# ----------------------------------------------------------------------
class TestPlanShards:
    def test_chain_is_partitionable(self):
        deps = [
            parse_tgd("R0(a=x, b=y) -> R1(a=x, b=y)"),
            parse_tgd("R1(a=x, b=y) -> R2(a=x, b=y)"),
        ]
        plan = plan_shards(deps, 4)
        assert plan is not None
        assert plan.keys == {"R0": "a", "R1": "a", "R2": "a"}

    def test_dropped_head_var_falls_back(self):
        # The join variable y is keyed in the body but absent from the
        # head: derived rows could not be born on their owner shard, so
        # the planner must refuse (sequential fallback).
        deps = [
            parse_tgd("E(src=x, dst=y) & L(node=y, tag=t) -> M(node=x, tag=t)"),
        ]
        assert plan_shards(deps, 4) is None

    def test_join_var_kept_in_head_is_partitionable(self):
        deps = [
            parse_tgd("E(src=x, dst=y) & L(node=y, tag=t) -> M(hub=y, tag=t)"),
        ]
        plan = plan_shards(deps, 4)
        assert plan is not None
        assert plan.keys["E"] == "dst"
        assert plan.keys["L"] == "node"
        assert plan.keys["M"] == "hub"

    def test_egd_needs_only_body_colocation(self):
        deps = [
            parse_tgd("P(k=x, v=v) -> Q(k=x, w=y)"),
            parse_egd("Q(k=x, w=y1) & Q(k=x, w=y2) -> y1 = y2"),
        ]
        plan = plan_shards(deps, 4)
        assert plan is not None
        assert plan.keys["P"] == "k" and plan.keys["Q"] == "k"

    def test_disjoint_atoms_fall_back(self):
        # No variable shared by both body atoms: a cross-product
        # trigger can never be shard-local.
        deps = [parse_tgd("A(a=x) & B(b=y) -> C(a=x, b=y)")]
        assert plan_shards(deps, 4) is None

    def test_owner_is_stable_per_key(self):
        plan = plan_shards([parse_tgd("R0(a=x, b=y) -> R1(a=x, b=y)")], 4)
        owners = {plan.owner("R0", {"a": k, "b": 0}) for k in range(64)}
        assert owners <= set(range(4)) and len(owners) > 1
        assert plan.owner("R0", {"a": 7, "b": 1}) == plan.owner(
            "R1", {"a": 7, "b": 2}
        )


# ----------------------------------------------------------------------
# differential equivalence
# ----------------------------------------------------------------------
def _chain(rows=2000, stages=3, mod=7):
    db = Instance()
    db.insert_all("R0", [{"a": i, "b": i % mod} for i in range(rows)])
    deps = [
        parse_tgd(f"R{k}(a=x, b=y) -> R{k + 1}(a=x, b=y)")
        for k in range(stages)
    ]
    deps.reverse()  # worst-case ordering: every stage needs a round
    return db, deps


def _egd_heavy(rows=300, keys=30):
    db = Instance()
    db.insert_all("P", [{"k": i % keys, "v": i} for i in range(rows)])
    deps = [
        parse_tgd("P(k=x, v=v) -> Q(k=x, w=y)"),
        parse_egd("Q(k=x, w=y1) & Q(k=x, w=y2) -> y1 = y2"),
    ]
    return db, deps


def _midmerge(rows=400, keys=40):
    # Existentials minted mid-chain and merged by egds while the next
    # stage is still firing — exercises null adoption across frontiers.
    db = Instance()
    db.insert_all("A", [{"k": i % keys, "v": i} for i in range(rows)])
    deps = [
        parse_tgd("A(k=x, v=v) -> B(k=x, u=y)"),
        parse_tgd("B(k=x, u=y) -> C(k=x, u=y)"),
        parse_egd("B(k=x, u=y1) & B(k=x, u=y2) -> y1 = y2"),
        parse_egd("C(k=x, u=y1) & C(k=x, u=y2) -> y1 = y2"),
    ]
    return db, deps


def _sequential_fallback_join(rows=500):
    # plan_shards returns None for this shape (head drops the join
    # var), so chase(shards=N) must silently run sequentially.
    db = Instance()
    db.insert_all("E", [{"src": i, "dst": (i * 17) % rows}
                        for i in range(rows)])
    db.insert_all("L", [{"node": i, "tag": i % 3} for i in range(rows)])
    deps = [
        parse_tgd("E(src=x, dst=y) & L(node=y, tag=t) -> M(node=x, tag=t)"),
        parse_tgd("M(node=x, tag=t) -> Out(node=x, tag=t)"),
    ]
    return db, deps


class TestShardedEquivalence:
    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_chain(self, shards):
        _assert_equivalent(_chain, shards)

    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_egd_heavy(self, shards):
        _assert_equivalent(_egd_heavy, shards)

    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_midmerge(self, shards):
        _assert_equivalent(_midmerge, shards)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_sequential_fallback_join(self, shards):
        _assert_equivalent(_sequential_fallback_join, shards)

    def test_shards_one_is_sequential(self, monkeypatch):
        # The baseline must be the sequential engine even when the CI
        # lane forces REPRO_CHASE_SHARDS on the whole suite.
        monkeypatch.delenv("REPRO_CHASE_SHARDS", raising=False)
        db, deps = _chain(rows=200)
        base = chase(copy.deepcopy(db), deps)
        one = chase(copy.deepcopy(db), deps, shards=1)
        assert base.steps == one.steps
        assert {
            rel: sorted(map(freeze_row, base.instance.rows(rel)))
            for rel in base.instance.relations
        } == {
            rel: sorted(map(freeze_row, one.instance.rows(rel)))
            for rel in one.instance.relations
        }

    def test_env_switch_engages_sharding(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHASE_SHARDS", "4")
        db, deps = _chain(rows=400)
        seq = chase(copy.deepcopy(db), deps, shards=1)
        sharded = chase(db, deps)  # resolves from the environment
        assert set_equal_modulo_nulls(seq.instance, sharded.instance)

    def test_budget_enforced_across_shards(self):
        from repro.errors import ChaseNonTermination

        db, deps = _chain(rows=2000)
        with pytest.raises(ChaseNonTermination):
            chase(db, deps, max_steps=100, shards=4)


class TestRandomizedDifferential:
    """Randomized workloads: uniform and skewed key distributions,
    random chain shapes, optional existentials and egds."""

    @pytest.mark.parametrize("seed", [1, 7, 23, 99])
    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_random_workload(self, seed, shards):
        rng = random.Random(seed)
        stages = rng.randint(2, 4)
        rows = rng.randint(200, 800)
        keyspace = rng.choice([5, 17, rows])
        skewed = rng.random() < 0.5

        def build():
            db = Instance()
            for i in range(rows):
                if skewed:
                    # ~half the rows pile onto key 0 (hot shard).
                    k = 0 if rng.random() < 0.5 else rng.randrange(keyspace)
                else:
                    k = rng.randrange(keyspace)
                db.insert("S0", {"a": k, "b": i})
            deps = []
            for s in range(stages):
                if rng.random() < 0.3:
                    deps.append(parse_tgd(
                        f"S{s}(a=x, b=y) -> S{s + 1}(a=x, c=z)"
                    ))
                    deps.append(parse_egd(
                        f"S{s + 1}(a=x, c=z1) & S{s + 1}(a=x, c=z2) "
                        "-> z1 = z2"
                    ))
                else:
                    deps.append(parse_tgd(
                        f"S{s}(a=x, b=y) -> S{s + 1}(a=x, b=y)"
                    ))
            rng.shuffle(deps)
            return db, deps

        # rng is consumed while building; build once, deep-copy for
        # the two runs inside the helper.
        db, deps = build()
        _assert_equivalent(lambda: (copy.deepcopy(db), deps), shards)


# ----------------------------------------------------------------------
# recorder / provenance sharding
# ----------------------------------------------------------------------
class _ShardLog(ChaseRecorder):
    def __init__(self):
        self.shard_switches = []
        self.fires = []

    def on_shard(self, shard_id):
        self.shard_switches.append(shard_id)

    def on_tgd_fire(self, dep_index, tgd, frontier_key, frontier_items,
                    rows):
        self.fires.append((self.shard_switches[-1]
                           if self.shard_switches else -1,
                           dep_index, tuple(sorted(
                               freeze_row(r) for _, r in rows))))


class TestRecorderSharding:
    def test_on_shard_brackets_replayed_events(self):
        db, deps = _chain(rows=400)
        log = _ShardLog()
        chase(db, deps, shards=4, recorder=log)
        assert log.fires, "recorder saw no firings"
        shard_ids = {s for s, _, _ in log.fires}
        assert shard_ids <= set(range(4))
        assert len(shard_ids) > 1, "all firings landed on one shard"

    def test_replay_order_is_deterministic(self):
        def run():
            db, deps = _chain(rows=300)
            log = _ShardLog()
            chase(db, deps, shards=4, recorder=log)
            return log.fires

        assert run() == run()

    def test_sequential_chase_never_calls_on_shard(self):
        db, deps = _chain(rows=100)
        log = _ShardLog()
        chase(db, deps, shards=1, recorder=log)
        assert log.shard_switches == []
        assert all(s == -1 for s, _, _ in log.fires)


# ----------------------------------------------------------------------
# MaterializedExchange with shards
# ----------------------------------------------------------------------
def _exchange_fixture(rows=300):
    source_schema = (
        SchemaBuilder("S").entity("Raw", key=["k"])
        .attribute("k", INT).attribute("v", INT).build()
    )
    target_schema = (
        SchemaBuilder("T").entity("Fact", key=["k"])
        .attribute("k", INT).attribute("v", INT).build()
    )
    mapping = Mapping(source_schema, target_schema,
                      [parse_tgd("Raw(k=x, v=y) -> Fact(k=x, v=y)")])
    source = Instance(source_schema)
    for i in range(rows):
        source.add("Raw", k=i, v=i * 2)
    return mapping, source


class TestMaterializedExchangeSharded:
    def test_build_and_maintain_match_sequential(self):
        mapping, source = _exchange_fixture()
        seq = MaterializedExchange(mapping, copy.deepcopy(source), shards=1)
        sharded = MaterializedExchange(mapping, copy.deepcopy(source),
                                       shards=4)
        assert set_equal_modulo_nulls(seq.target_instance(),
                                      sharded.target_instance())
        update = (UpdateSet().insert("Raw", k=1000, v=1)
                  .delete("Raw", k=3, v=6))
        d_seq = seq.apply(update)
        d_sh = sharded.apply(copy.deepcopy(update))
        assert set_equal_modulo_nulls(seq.target_instance(),
                                      sharded.target_instance())
        assert d_seq.size() == d_sh.size()


# ----------------------------------------------------------------------
# thread-safe observability (satellite: counters under contention)
# ----------------------------------------------------------------------
def _hammer(fn, threads=8, iterations=2000):
    barrier = threading.Barrier(threads)

    def work():
        barrier.wait()
        for _ in range(iterations):
            fn()

    pool = [threading.Thread(target=work) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    return threads * iterations


class TestThreadSafeObservability:
    def test_counter_loses_no_increments(self):
        counter = Counter("t.counter")
        total = _hammer(counter.inc)
        assert counter.value == total

    def test_histogram_counts_every_observation(self):
        histogram = Histogram("t.hist")
        total = _hammer(lambda: histogram.observe(1.0))
        assert histogram.count == total
        assert histogram.summary()["count"] == total

    def test_gauge_last_write_wins_without_tearing(self):
        gauge = Gauge("t.gauge")
        _hammer(lambda: gauge.set(42.0))
        assert gauge.value == 42.0

    def test_index_stats_under_concurrent_lookups(self):
        db = Instance()
        db.insert_all("R", [{"a": i, "b": i % 5} for i in range(100)])
        # Prime the projection index so every hammer call is a hit.
        db.projection_member("R", ("b",), (0,))
        baseline = dict(db.index_stats)
        total = _hammer(
            lambda: db.projection_member("R", ("b",), (1,)),
            threads=8, iterations=1000,
        )
        stats = db.index_stats
        assert stats["hits"] == baseline["hits"] + total
        # A second read is stable (events were drained exactly once).
        assert db.index_stats["hits"] == stats["hits"]

    def test_index_stats_concurrent_readers_and_writers(self):
        db = Instance()
        db.insert_all("R", [{"a": i} for i in range(50)])
        db.projection_member("R", ("a",), (0,))
        stop = threading.Event()
        seen = []

        def reader():
            while not stop.is_set():
                seen.append(db.index_stats["hits"])

        t = threading.Thread(target=reader)
        t.start()
        try:
            total = _hammer(
                lambda: db.projection_member("R", ("a",), (1,)),
                threads=4, iterations=1000,
            )
        finally:
            stop.set()
            t.join()
        assert db.index_stats["hits"] >= total
        assert seen == sorted(seen), "hit counter went backwards"

    def test_instance_stays_deepcopyable_and_picklable(self):
        import pickle

        db = Instance()
        db.insert_all("R", [{"a": 1}])
        db.projection_member("R", ("a",), (1,))
        clone = copy.deepcopy(db)
        assert clone.index_stats["hits"] == db.index_stats["hits"]
        revived = pickle.loads(pickle.dumps(db))
        assert revived.rows("R") == db.rows("R")


# ----------------------------------------------------------------------
# concurrent runtime fronts
# ----------------------------------------------------------------------
def _peer_network(peers=4, rows=30):
    network = PeerNetwork()
    schemas = []
    for i in range(peers):
        schemas.append(
            SchemaBuilder(f"P{i}").entity(f"R{i}", key=["k"])
            .attribute("k", INT).attribute("v", INT).build()
        )
        data = None
        if i == 0:
            data = Instance()
            for r in range(rows):
                data.add("R0", k=r, v=r * 2)
        network.add_peer(f"p{i}", schemas[i], data)
    for i in range(peers - 1):
        network.add_mapping(
            f"p{i}", f"p{i + 1}",
            Mapping(schemas[i], schemas[i + 1], [
                parse_tgd(f"R{i}(k=x, v=y) -> R{i + 1}(k=x, v=y)")
            ]),
        )
    return network


class TestPipelinedPropagation:
    def test_matches_serial_propagate_update(self):
        batches = [
            UpdateSet().insert("R0", k=100 + i, v=i) for i in range(6)
        ] + [UpdateSet().delete("R0", k=2)]
        serial = _peer_network()
        expected = [
            serial.propagate_update("p0", "p3", copy.deepcopy(b))
            for b in batches
        ]
        pipelined = _peer_network()
        got = pipelined.propagate_updates(
            "p0", "p3", [copy.deepcopy(b) for b in batches], queue_depth=2
        )
        assert [d.inserts for d in got] == [d.inserts for d in expected]
        assert [d.deletes for d in got] == [d.deletes for d in expected]
        assert set_equal_modulo_nulls(
            serial.materialized_target("p0", "p3"),
            pipelined.materialized_target("p0", "p3"),
        )

    def test_empty_batch_list(self):
        network = _peer_network()
        assert network.propagate_updates("p0", "p3", []) == []

    def test_more_batches_than_queue_depth(self):
        network = _peer_network()
        batches = [UpdateSet().insert("R0", k=200 + i, v=i)
                   for i in range(12)]
        results = network.propagate_updates("p0", "p3", batches,
                                            queue_depth=1)
        assert len(results) == 12
        maintained = network.materialized_target("p0", "p3")
        assert {r["k"] for r in maintained.rows("R3")} >= {
            200 + i for i in range(12)
        }


class TestQueuedSynchronizer:
    def _synchronizer(self):
        from repro.runtime.synchronization import Endpoint, Synchronizer
        from repro.workloads import paper

        mapping = paper.figure2_mapping()
        primary = Endpoint(mapping, paper.figure2_sql_instance(),
                           name="primary")
        replica = Endpoint(paper.figure2_mapping(),
                           Instance(mapping.source), name="replica")
        synchronizer = Synchronizer(primary, replica)
        synchronizer.add_rule("Customer")
        synchronizer.synchronize()
        return synchronizer

    def test_drain_returns_ordered_deltas(self):
        synchronizer = self._synchronizer()
        queued = QueuedSynchronizer(synchronizer, maxsize=2)
        template = dict(synchronizer.primary.source.rows("Client")[0])
        batches = []
        for i in range(5):
            row = dict(template)
            row["Id"] = 1000 + i
            batches.append(UpdateSet().insert("Client", **row))
        for batch in batches:
            queued.submit(batch)
        deltas = queued.drain()
        queued.close()
        assert len(deltas) == 5
        assert synchronizer.verify_converged()
        ids = {r["Id"] for r in
               synchronizer.replica.source.rows("Client")}
        assert ids >= {1000 + i for i in range(5)}

    def test_submit_after_close_rejected(self):
        from repro.errors import MappingError

        queued = QueuedSynchronizer(self._synchronizer())
        queued.close()
        with pytest.raises(MappingError):
            queued.submit(UpdateSet())

    def test_drain_reraises_worker_error(self):
        synchronizer = self._synchronizer()
        queued = QueuedSynchronizer(synchronizer)

        def boom(update):
            raise RuntimeError("forwarding failed")

        synchronizer.forward_update = boom
        queued.submit(UpdateSet().insert("Client", Id=1, Name="x",
                                         CreditScore=1, Address="y"))
        with pytest.raises(RuntimeError, match="forwarding failed"):
            queued.drain()
        queued.close()
