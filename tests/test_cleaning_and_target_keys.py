"""Tests for the heuristic cleaning operators and target-key-enforced
exchange."""

import pytest

from repro.errors import ChaseFailure
from repro.instances import Instance, LabeledNull
from repro.logic import parse_tgd
from repro.mappings import Mapping
from repro.metamodel import INT, STRING, SchemaBuilder
from repro.operators import transgen
from repro.tools import EtlPipeline
from repro.tools.cleaning import (
    chain,
    fuzzy_dedup,
    normalizer,
    null_filter,
    range_filter,
)


class TestCleaners:
    def test_null_filter(self):
        cleaner = null_filter(["a"])
        assert cleaner("R", {"a": 1, "b": None}) is not None
        assert cleaner("R", {"a": None}) is None
        assert cleaner("R", {"a": LabeledNull(1)}) is None

    def test_range_filter(self):
        cleaner = range_filter("v", minimum=0, maximum=10)
        assert cleaner("R", {"v": 5}) is not None
        assert cleaner("R", {"v": -1}) is None
        assert cleaner("R", {"v": 11}) is None
        assert cleaner("R", {"v": None}) is not None  # nulls pass

    def test_normalizer(self):
        cleaner = normalizer(["name"])
        assert cleaner("R", {"name": "  Ann   SMITH "}) == {"name": "ann smith"}
        untouched = cleaner("R", {"name": 7})
        assert untouched == {"name": 7}

    def test_chain_short_circuits(self):
        cleaner = chain(null_filter(["a"]), range_filter("a", minimum=0))
        assert cleaner("R", {"a": None}) is None
        assert cleaner("R", {"a": -5}) is None
        assert cleaner("R", {"a": 5}) == {"a": 5}

    def test_fuzzy_dedup_exact_and_fuzzy(self):
        dedup = fuzzy_dedup(exact_columns=["zip"], fuzzy_columns=["name"])
        assert dedup("R", {"zip": "10", "name": "ACME Corporation"})
        assert dedup("R", {"zip": "10", "name": "ACME Corp"}) is None
        assert dedup("R", {"zip": "99", "name": "ACME Corporation"})
        assert dedup.dropped == 1

    def test_fuzzy_dedup_requires_some_columns(self):
        dedup = fuzzy_dedup()
        assert dedup("R", {"a": 1})
        assert dedup("R", {"a": 1})  # no columns configured: never dup

    def test_dedup_in_pipeline(self):
        source = (
            SchemaBuilder("CSrc").entity("Leads", key=["lid"])
            .attribute("lid", INT).attribute("company", STRING)
            .attribute("zip", STRING).build()
        )
        target = (
            SchemaBuilder("CTgt").entity("Accounts", key=["lid"])
            .attribute("lid", INT).attribute("company", STRING)
            .attribute("zip", STRING).build()
        )
        mapping = Mapping(source, target, [
            parse_tgd("Leads(lid=l, company=c, zip=z) -> "
                      "Accounts(lid=l, company=c, zip=z)")
        ])
        db = Instance(source)
        db.add("Leads", lid=1, company="Initech LLC", zip="11")
        db.add("Leads", lid=2, company="Initech", zip="11")     # fuzzy dup
        db.add("Leads", lid=3, company="Initech LLC", zip="99")  # other zip
        pipeline = EtlPipeline().add_step(
            mapping,
            cleaner=fuzzy_dedup(exact_columns=["zip"],
                                fuzzy_columns=["company"], threshold=0.7),
        )
        result, stats = pipeline.run(db)
        assert result.cardinality("Accounts") == 2
        assert stats[0]["rows_dropped_by_cleaner"] == 1


class TestTargetKeyEnforcement:
    def _mapping(self, tag):
        source = (
            SchemaBuilder(f"K{tag}").entity("R", key=["g"])
            .attribute("g", INT).attribute("k", INT).attribute("v", INT)
            .build()
        )
        target = (
            SchemaBuilder(f"KT{tag}").entity("T", key=["k"])
            .attribute("k", INT).attribute("v", INT, nullable=True).build()
        )
        return source, target

    def test_keys_merge_complementary_fragments(self):
        """Two tgds each contribute half the columns of a keyed target
        row (inventing nulls for the other half); the target key egd
        stitches them into one complete row."""
        source = (
            SchemaBuilder("Km")
            .entity("S1", key=["k"]).attribute("k", INT).attribute("v", INT)
            .entity("S2", key=["k"]).attribute("k", INT).attribute("w", INT)
            .build()
        )
        target = (
            SchemaBuilder("KmT").entity("T", key=["k"])
            .attribute("k", INT)
            .attribute("v", INT, nullable=True)
            .attribute("w", INT, nullable=True)
            .build()
        )
        mapping = Mapping(source, target, [
            parse_tgd("S1(k=x, v=y) -> T(k=x, v=y, w=e)"),
            parse_tgd("S2(k=x, w=z) -> T(k=x, v=e, w=z)"),
        ])
        db = Instance()
        db.add("S1", k=7, v=10)
        db.add("S2", k=7, w=99)
        plain = transgen(mapping).apply(db)
        assert plain.deduplicated().cardinality("T") == 2  # two halves
        enforced = transgen(mapping, enforce_target_keys=True).apply(db)
        rows = enforced.deduplicated().rows("T")
        assert rows == [{"k": 7, "v": 10, "w": 99}]

    def test_keys_detect_unsatisfiable(self):
        source, target = self._mapping("b")
        mapping = Mapping(source, target,
                          [parse_tgd("R(g=g, k=x, v=y) -> T(k=x, v=y)")])
        db = Instance()
        db.add("R", g=1, k=7, v=10)
        db.add("R", g=2, k=7, v=20)
        transgen(mapping).apply(db)  # without enforcement: fine
        with pytest.raises(ChaseFailure):
            transgen(mapping, enforce_target_keys=True).apply(db)

    def test_engine_facade_passes_flag(self):
        # the engine's transgen signature forwards compute_core only;
        # exchange via runtime uses the plain path — construct directly.
        source, target = self._mapping("c")
        mapping = Mapping(source, target,
                          [parse_tgd("R(g=g, k=x, v=y) -> T(k=x, v=e)")])
        from repro.operators.transgen import ExchangeTransformation

        transformation = ExchangeTransformation(mapping,
                                                enforce_target_keys=True)
        db = Instance()
        db.add("R", g=1, k=5, v=1)
        assert transformation.apply(db).cardinality("T") == 1
