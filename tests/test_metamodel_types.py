"""Unit tests for the universal metamodel type system."""

import datetime

import pytest
from hypothesis import given, strategies as st

from repro.metamodel import types as T


ALL_PRIMITIVES = [
    T.BOOL, T.INT, T.BIGINT, T.DECIMAL, T.FLOAT,
    T.STRING, T.TEXT, T.DATE, T.DATETIME, T.BINARY, T.ANY,
]


class TestAssignability:
    def test_identity(self):
        for t in ALL_PRIMITIVES:
            assert T.is_assignable(t, t)

    def test_widening_chain(self):
        assert T.is_assignable(T.INT, T.BIGINT)
        assert T.is_assignable(T.BOOL, T.INT)
        assert T.is_assignable(T.INT, T.DECIMAL)
        assert T.is_assignable(T.INT, T.FLOAT)
        assert T.is_assignable(T.STRING, T.TEXT)
        assert T.is_assignable(T.DATE, T.DATETIME)

    def test_narrowing_rejected(self):
        assert not T.is_assignable(T.BIGINT, T.INT)
        assert not T.is_assignable(T.TEXT, T.STRING)
        assert not T.is_assignable(T.DATETIME, T.DATE)

    def test_cross_family_rejected(self):
        assert not T.is_assignable(T.STRING, T.INT)
        assert not T.is_assignable(T.DATE, T.FLOAT)

    def test_any_accepts_everything(self):
        for t in ALL_PRIMITIVES:
            assert T.is_assignable(t, T.ANY)

    def test_varchar_widening(self):
        assert T.is_assignable(T.varchar(10), T.varchar(20))
        assert not T.is_assignable(T.varchar(20), T.varchar(10))
        assert T.is_assignable(T.varchar(10), T.STRING)
        assert not T.is_assignable(T.STRING, T.varchar(10))

    def test_decimal_parametric(self):
        assert T.is_assignable(T.decimal_type(5, 2), T.DECIMAL)


class TestCommonSupertype:
    def test_symmetric_for_primitives(self):
        for a in ALL_PRIMITIVES:
            for b in ALL_PRIMITIVES:
                assert T.common_supertype(a, b) == T.common_supertype(b, a)

    def test_join_on_chain(self):
        assert T.common_supertype(T.INT, T.BIGINT) == T.BIGINT
        assert T.common_supertype(T.BOOL, T.FLOAT) == T.FLOAT
        assert T.common_supertype(T.STRING, T.TEXT) == T.TEXT

    def test_incomparable_goes_to_any(self):
        assert T.common_supertype(T.STRING, T.INT) == T.ANY

    def test_supertype_is_assignable_target(self):
        for a in ALL_PRIMITIVES:
            for b in ALL_PRIMITIVES:
                join = T.common_supertype(a, b)
                assert T.is_assignable(a, join)
                assert T.is_assignable(b, join)


class TestCompatibilityScore:
    def test_range(self):
        for a in ALL_PRIMITIVES:
            for b in ALL_PRIMITIVES:
                assert 0.0 <= T.type_compatibility(a, b) <= 1.0

    def test_identity_is_one(self):
        assert T.type_compatibility(T.INT, T.INT) == 1.0

    def test_symmetry(self):
        for a in ALL_PRIMITIVES:
            for b in ALL_PRIMITIVES:
                assert T.type_compatibility(a, b) == T.type_compatibility(b, a)

    def test_parametric_same_base(self):
        assert T.type_compatibility(T.varchar(10), T.varchar(20)) == 0.9

    def test_family_beats_cross_family(self):
        same_family = T.type_compatibility(T.INT, T.FLOAT)
        cross = T.type_compatibility(T.INT, T.STRING)
        assert same_family > cross


class TestConforms:
    def test_int(self):
        assert T.conforms(5, T.INT)
        assert not T.conforms("5", T.INT)
        assert not T.conforms(True, T.INT)  # bools are not ints here

    def test_bool(self):
        assert T.conforms(True, T.BOOL)
        assert not T.conforms(1, T.BOOL)

    def test_string_and_varchar(self):
        assert T.conforms("abc", T.STRING)
        assert T.conforms("abc", T.varchar(3))
        assert not T.conforms("abcd", T.varchar(3))

    def test_temporal(self):
        assert T.conforms(datetime.date(2020, 1, 1), T.DATE)
        assert T.conforms(datetime.datetime(2020, 1, 1), T.DATETIME)
        assert not T.conforms("2020-01-01", T.DATE)

    def test_float_accepts_int(self):
        assert T.conforms(3, T.FLOAT)

    def test_none_never_conforms(self):
        for t in ALL_PRIMITIVES:
            assert not T.conforms(None, t)

    def test_labeled_null_conforms_everywhere(self):
        from repro.instances.labeled_null import LabeledNull

        null = LabeledNull(1)
        for t in ALL_PRIMITIVES:
            assert T.conforms(null, t)


@given(st.sampled_from(ALL_PRIMITIVES), st.sampled_from(ALL_PRIMITIVES),
       st.sampled_from(ALL_PRIMITIVES))
def test_assignability_is_transitive(a, b, c):
    if T.is_assignable(a, b) and T.is_assignable(b, c):
        assert T.is_assignable(a, c)


@given(st.integers(min_value=1, max_value=500))
def test_varchar_str_roundtrip(n):
    t = T.varchar(n)
    assert str(t) == f"string({n})" or str(t).startswith("varchar")
    assert t.params == (n,)
    assert T.base_primitive(t) == T.STRING
