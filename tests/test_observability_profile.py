"""Profile exports (rollup, critical path, Chrome trace), histogram
percentile edge cases, and thread-safety of registry/tracer reads.

The Chrome round-trip test is the satellite contract: exported events
must be well-formed ``"X"`` complete events with non-negative
monotonically-ordered timestamps and stable pid/tid grouping, or
Perfetto silently drops them.  The writer-thread tests pin the
copy-on-read guarantees: snapshotting while another thread records
must never raise and never tear a histogram summary.
"""

import json
import threading

import pytest

import repro.observability as obs
from repro.observability import (
    chrome_trace_events,
    critical_path,
    export_chrome_trace,
    registry,
    render_critical_path,
    render_rollup,
    rollup,
    span_self_ms,
    tracer,
)
from repro.observability.metrics import COUNT_BUCKETS, Histogram
from repro.observability.tracing import Span


def record_tree():
    """outer(≈) ─ inner×2, plus a second root — via the real tracer."""
    obs.enable()
    with tracer.span("outer", workload="test"):
        with tracer.span("inner"):
            pass
        with tracer.span("inner"):
            pass
    with tracer.span("solo"):
        pass
    obs.disable()
    return list(tracer.roots)


class TestRollupAndCriticalPath:
    def test_rollup_aggregates_per_name(self):
        record_tree()
        entries = {e.name: e for e in rollup()}
        assert entries["inner"].calls == 2
        assert entries["outer"].calls == 1
        # inclusive outer covers the inners; self excludes them
        outer = entries["outer"]
        assert outer.self_ms <= outer.total_ms
        assert outer.max_ms == pytest.approx(outer.total_ms)

    def test_self_time_clamped_non_negative(self):
        span = Span("p", "s1", None, 0.0, wall_ms=1.0)
        child = Span("c", "s2", "s1", 0.0, wall_ms=5.0)  # clock skew
        span.children.append(child)
        assert span_self_ms(span) == 0.0
        assert span_self_ms(child) == 5.0

    def test_critical_path_descends_costliest_children(self):
        record_tree()
        path = critical_path()
        assert [s.name for s in path] == ["outer", "inner"]
        text = render_critical_path()
        assert "critical path" in text and "outer" in text

    def test_empty_trace_renders_placeholder(self):
        assert rollup() == []
        assert critical_path() == []
        assert "no finished spans" in render_rollup()
        assert "no finished spans" in render_critical_path()


class TestChromeTraceRoundTrip:
    def test_events_well_formed(self, tmp_path):
        record_tree()
        out = tmp_path / "trace.json"
        export_chrome_trace(out)
        payload = json.loads(out.read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["ph"] for e in events} == {"M", "X"}
        # one X event per recorded span
        assert len(complete) == tracer.span_count() == 4
        # process metadata plus one thread_name per recording thread
        names = {e["name"] for e in meta}
        assert names == {"process_name", "thread_name"}
        for event in complete:
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert event["pid"] == 1
            assert isinstance(event["args"]["span_id"], str)
        # attributes survive as JSON-able args
        outer = next(e for e in complete if e["name"] == "outer")
        assert outer["args"]["workload"] == "test"

    def test_timestamps_relative_and_ordered(self):
        record_tree()
        complete = [e for e in chrome_trace_events() if e["ph"] == "X"]
        # earliest span anchors the timeline at zero
        assert min(e["ts"] for e in complete) == 0.0
        # spans are walked parents-first, so per-tid timestamps ascend
        by_tid = {}
        for event in complete:
            by_tid.setdefault(event["tid"], []).append(event["ts"])
        for timestamps in by_tid.values():
            assert timestamps == sorted(timestamps)

    def test_tid_groups_by_recording_thread(self):
        obs.enable()
        with tracer.span("main-side"):
            pass
        def work():
            span = tracer.start("worker-side")
            tracer.finish(span)
        worker = threading.Thread(target=work, name="worker-1")
        worker.start()
        worker.join()
        obs.disable()
        events = chrome_trace_events()
        threads = {
            e["args"]["name"]: e["tid"]
            for e in events if e["name"] == "thread_name"
        }
        assert "worker-1" in threads
        complete = {e["name"]: e for e in events if e["ph"] == "X"}
        assert complete["worker-side"]["tid"] == threads["worker-1"]
        assert complete["main-side"]["tid"] != threads["worker-1"]

    def test_empty_trace_exports_metadata_only(self, tmp_path):
        out = export_chrome_trace(tmp_path / "empty.json")
        payload = json.loads(out.read_text())
        assert [e["ph"] for e in payload["traceEvents"]] == ["M"]


class TestHistogramPercentiles:
    def test_empty_histogram(self):
        h = Histogram("h")
        assert h.percentile(50) is None
        assert h.summary()["p50"] is None
        assert h.summary()["count"] == 0

    def test_single_observation_every_quantile(self):
        h = Histogram("h")
        h.observe(7.5)
        for q in (0, 1, 50, 99, 100):
            assert h.percentile(q) == 7.5

    def test_single_observation_of_zero(self):
        # min == 0.0 is falsy — must still be returned, not skipped
        h = Histogram("h", buckets=COUNT_BUCKETS)
        h.observe(0.0)
        assert h.percentile(0) == 0.0
        assert h.percentile(50) == 0.0

    def test_q0_and_q100_are_exact_extremes(self):
        h = Histogram("h")
        for v in (0.3, 2.0, 47.0, 820.0):
            h.observe(v)
        assert h.percentile(0) == 0.3
        assert h.percentile(-5) == 0.3      # clamped
        assert h.percentile(100) == 820.0
        assert h.percentile(250) == 820.0   # clamped

    def test_overflow_bucket_interpolates_to_max(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        h.observe(5_000.0)   # beyond the last bound
        h.observe(9_000.0)
        p99 = h.percentile(99)
        assert p99 is not None
        assert 10.0 < p99 <= 9_000.0

    def test_interpolation_stays_within_observed_range(self):
        h = Histogram("h")
        for v in (0.02, 0.4, 3.0, 80.0, 700.0):
            h.observe(v)
        for q in (10, 25, 50, 75, 90, 99):
            p = h.percentile(q)
            assert 0.02 <= p <= 700.0
        # percentiles are monotone in q
        values = [h.percentile(q) for q in (1, 25, 50, 75, 99)]
        assert values == sorted(values)


class TestConcurrentReads:
    def test_snapshot_while_writer_thread_records(self):
        """Regression: snapshot()/render()/names() while another thread
        creates metrics and observes must neither raise ('dictionary
        changed size during iteration') nor tear a histogram summary."""
        errors = []

        def writer():
            for i in range(20_000):
                registry.counter(f"w.count.{i % 50}").inc()
                registry.histogram("w.lat").observe(float(i % 100))

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            while thread.is_alive():
                try:
                    snap = registry.snapshot()
                    registry.render()
                    registry.names()
                    lat = snap.get("w.lat")
                    if lat and lat["count"]:
                        # a consistent summary: percentiles exist and
                        # are ordered whenever the count is non-zero
                        assert lat["p50"] is not None
                        assert lat["p50"] <= lat["p90"] <= lat["p99"]
                        assert lat["min"] <= lat["p50"]
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    break
        finally:
            thread.join()
        assert errors == []

    def test_trace_render_while_writer_thread_records(self):
        obs.enable()
        errors = []

        def writer():
            for _ in range(500):
                with tracer.span("w.outer"):
                    with tracer.span("w.inner"):
                        pass

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            while thread.is_alive():
                try:
                    tracer.render(attributes=False)
                    sum(1 for _ in tracer.iter_spans())
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    break
        finally:
            thread.join()
            obs.disable()
        # the export still works on the finished trace
        assert chrome_trace_events()
        assert errors == []
