"""Tests for the schema-evolution operators: Invert/Inverse, Extract,
Diff, Merge (paper, Section 6)."""

import pytest

from repro.errors import InversionError
from repro.instances import Instance, LabeledNull
from repro.logic import parse_tgd
from repro.mappings import CorrespondenceSet, Mapping
from repro.metamodel import INT, STRING, SchemaBuilder
from repro.operators import diff, extract, inverse, invert, merge, quasi_inverse
from repro.operators.inverse import roundtrips
from repro.workloads import paper


def _pair():
    source = (
        SchemaBuilder("Src").entity("P", key=["id"])
        .attribute("id", INT).attribute("name", STRING).attribute("age", INT)
        .build()
    )
    target = (
        SchemaBuilder("Tgt").entity("Q", key=["id"])
        .attribute("id", INT).attribute("name", STRING).attribute("age", INT)
        .build()
    )
    return source, target


class TestInverse:
    def test_invert_is_syntactic(self):
        mapping = paper.figure6_map_s_sprime()
        assert invert(mapping).source.name == "Sprime"

    def test_exact_inverse_of_lossless_copy(self):
        source, target = _pair()
        mapping = Mapping(source, target, [
            parse_tgd("P(id=i, name=n, age=a) -> Q(id=i, name=n, age=a)")
        ])
        back = inverse(mapping)
        db = Instance()
        db.add("P", id=1, name="Ann", age=30)
        assert roundtrips(mapping, back, db)

    def test_lossy_projection_has_no_exact_inverse(self):
        source, target = _pair()
        mapping = Mapping(source, target, [
            parse_tgd("P(id=i, name=n, age=a) -> Q(id=i, name=n, age=n)")
        ])
        # age is dropped by the forward mapping
        lossy = Mapping(source, target, [
            parse_tgd("P(id=i, name=n, age=a) -> Q(id=i, name=n)")
        ])
        with pytest.raises(InversionError):
            inverse(lossy)

    def test_existential_mapping_has_no_exact_inverse(self):
        source, target = _pair()
        mapping = Mapping(source, target, [
            parse_tgd("P(id=i, name=n, age=a) -> Q(id=i, name=n, age=e)")
        ])
        with pytest.raises(InversionError):
            inverse(mapping)

    def test_quasi_inverse_recovers_with_nulls(self):
        source, target = _pair()
        lossy = Mapping(source, target, [
            parse_tgd("P(id=i, name=n, age=a) -> Q(id=i, name=n)")
        ])
        back = quasi_inverse(lossy)
        db = Instance()
        db.add("P", id=1, name="Ann", age=30)
        from repro.logic import chase

        forward = chase(db, lossy.tgds).instance
        target_only = Instance()
        target_only.relations["Q"] = forward.rows("Q")
        recovered = chase(target_only, back.tgds).instance
        row = recovered.rows("P")[0]
        assert row["id"] == 1 and row["name"] == "Ann"
        assert isinstance(row["age"], LabeledNull)  # unknown, not invented

    def test_quasi_inverse_of_quasi_inverse_roundtrips_certain_part(self):
        source, target = _pair()
        lossy = Mapping(source, target, [
            parse_tgd("P(id=i, name=n, age=a) -> Q(id=i, name=n)")
        ])
        back = quasi_inverse(lossy)
        db = Instance()
        db.add("P", id=1, name="Ann", age=30)
        assert not roundtrips(lossy, back, db)  # age is genuinely lost


class TestExtractDiff:
    def _evolved_mapping(self):
        """S has covered and uncovered parts; the mapping reads id/name."""
        s = (
            SchemaBuilder("S").entity("Person", key=["id"])
            .attribute("id", INT).attribute("name", STRING)
            .attribute("hobby", STRING).attribute("shoe_size", INT)
            .build()
        )
        v = (
            SchemaBuilder("Vw").entity("People", key=["id"])
            .attribute("id", INT).attribute("name", STRING)
            .build()
        )
        mapping = Mapping(
            s, v, [parse_tgd("Person(id=i, name=n) -> People(id=i, name=n)")]
        )
        return s, v, mapping

    def test_extract_keeps_participating(self):
        s, _, mapping = self._evolved_mapping()
        slice_ = extract(s, mapping)
        kept = slice_.schema.entity("Person")
        assert kept.has_attribute("id") and kept.has_attribute("name")
        assert not kept.has_attribute("hobby")

    def test_diff_keeps_complement_plus_keys(self):
        s, _, mapping = self._evolved_mapping()
        slice_ = diff(s, mapping)
        kept = slice_.schema.entity("Person")
        assert kept.has_attribute("hobby") and kept.has_attribute("shoe_size")
        assert kept.has_attribute("id")       # key glues the halves
        assert not kept.has_attribute("name")

    def test_extract_diff_cover_schema(self):
        """View-complement condition: every attribute survives in
        Extract or Diff (keys in both)."""
        s, _, mapping = self._evolved_mapping()
        extracted = extract(s, mapping)
        complement = diff(s, mapping)
        all_attrs = {
            f"{e.name}.{a.name}"
            for e in s.entities.values() for a in e.attributes
        }
        covered = set()
        for sub in (extracted.schema, complement.schema):
            for entity in sub.entities.values():
                for attribute in entity.attributes:
                    covered.add(f"{entity.name}.{attribute.name}")
        assert covered == all_attrs

    def test_embedding_mappings_valid(self):
        s, _, mapping = self._evolved_mapping()
        slice_ = extract(s, mapping)
        assert slice_.mapping.source.name == slice_.schema.name
        assert slice_.mapping.target.name == s.name
        # The embedding holds on a consistent pair of instances.
        full = Instance()
        full.add("Person", id=1, name="A", hobby="chess", shoe_size=42)
        part = Instance()
        part.add("Person", id=1, name="A")
        assert slice_.mapping.holds_for(part, full)

    def test_diff_on_equality_mapping(self):
        """Figure 6 framing: diff of S′ against mapS-S′ finds nothing new
        (all of S′ participates except nothing)."""
        mapping = paper.figure6_map_s_sprime()
        s_prime = paper.figure6_s_prime_schema()
        slice_ = diff(s_prime, mapping.invert())
        leftover_attrs = [
            a.name
            for e in slice_.schema.entities.values()
            for a in e.attributes
        ]
        # All S′ attributes participate in the mapping: only keys could
        # remain, and entities with nothing but keys are dropped.
        non_key = [a for a in leftover_attrs if a not in ("SID",)]
        assert non_key == []

    def test_diff_finds_new_attribute(self):
        """Add a column to S′; Diff reports exactly it."""
        s_prime = paper.figure6_s_prime_schema().clone()
        from repro.metamodel import Attribute

        s_prime.entity("Foreign").add_attribute(
            Attribute("Visa", STRING, nullable=True)
        )
        mapping = Mapping(
            paper.figure6_s_schema(), s_prime,
            paper.figure6_map_s_sprime().constraints,
            name="to_evolved",
        )
        slice_ = diff(s_prime, mapping.invert())
        assert "Foreign.Visa" in slice_.participating


class TestMerge:
    def _schemas(self):
        first = (
            SchemaBuilder("HRx").entity("Emp", key=["id"])
            .attribute("id", INT).attribute("name", STRING)
            .attribute("dept", STRING)
            .build()
        )
        second = (
            SchemaBuilder("Payroll").entity("Staff", key=["sid"])
            .attribute("sid", INT).attribute("full_name", STRING)
            .attribute("salary", INT)
            .entity("Account", key=["iban"])
            .attribute("iban", STRING).attribute("owner", INT)
            .build()
        )
        cs = CorrespondenceSet(first, second)
        cs.add_pair("Emp", "Staff")
        cs.add_pair("Emp.id", "Staff.sid")
        cs.add_pair("Emp.name", "Staff.full_name")
        return first, second, cs

    def test_corresponding_entities_collapse(self):
        first, second, cs = self._schemas()
        result = merge(first, second, cs)
        assert "Emp" in result.schema.entities
        assert "Staff" not in result.schema.entities

    def test_attributes_union(self):
        first, second, cs = self._schemas()
        merged_entity = merge(first, second, cs).schema.entity("Emp")
        names = set(merged_entity.own_attribute_names())
        assert names == {"id", "name", "dept", "salary"}

    def test_non_corresponding_entity_copied(self):
        first, second, cs = self._schemas()
        result = merge(first, second, cs)
        assert "Account" in result.schema.entities

    def test_embedding_mappings(self):
        first, second, cs = self._schemas()
        result = merge(first, second, cs)
        assert result.mapping_first.source.name == "HRx"
        assert result.mapping_second.source.name == "Payroll"
        # Second schema's Staff rows land in merged Emp.
        tgd = next(
            t for t in result.mapping_second.tgds if t.body[0].relation == "Staff"
        )
        assert tgd.head[0].relation == "Emp"
        # full_name flows into name.
        assert tgd.head[0].term("name") == tgd.body[0].term("full_name")

    def test_merge_migration_end_to_end(self):
        from repro.logic import chase

        first, second, cs = self._schemas()
        result = merge(first, second, cs)
        payroll = Instance()
        payroll.add("Staff", sid=7, full_name="Greta", salary=90)
        migrated = chase(payroll, result.mapping_second.tgds).instance
        row = migrated.rows("Emp")[0]
        assert row["id"] == 7 and row["name"] == "Greta" and row["salary"] == 90
        assert isinstance(row["dept"], LabeledNull)

    def test_type_conflict_reconciled(self):
        first = (
            SchemaBuilder("F").entity("T", key=["k"])
            .attribute("k", INT).attribute("v", INT).build()
        )
        from repro.metamodel import BIGINT

        second = (
            SchemaBuilder("G").entity("U", key=["k"])
            .attribute("k", INT).attribute("v", BIGINT).build()
        )
        cs = CorrespondenceSet(first, second)
        cs.add_pair("T", "U")
        cs.add_pair("T.k", "U.k")
        cs.add_pair("T.v", "U.v")
        merged = merge(first, second, cs).schema
        assert merged.entity("T").attribute("v").data_type == BIGINT

    def test_collision_renamed(self):
        first = (
            SchemaBuilder("F").entity("T", key=["k"])
            .attribute("k", INT).attribute("note", STRING).build()
        )
        from repro.metamodel import DATE

        second = (
            SchemaBuilder("G").entity("U", key=["k"])
            .attribute("k", INT).attribute("note", DATE).build()
        )
        cs = CorrespondenceSet(first, second)
        cs.add_pair("T", "U")
        cs.add_pair("T.k", "U.k")
        result = merge(first, second, cs)
        merged_entity = result.schema.entity("T")
        assert merged_entity.has_attribute("note")
        assert merged_entity.has_attribute("note_G")
        assert result.collisions_renamed == {"U.note": "T.note_G"}
