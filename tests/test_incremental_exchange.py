"""Incremental materialized exchange (docs/RUNTIME_SERVICES.md).

Covers the maintenance engine itself (insert seeding, counting/DRed
deletion, egd-merge rollback, the full re-exchange fallback), the
equivalence checker it is judged by, and the runtime services that
consume it (propagator delta path, synchronizer forward_update, p2p
materialized chains, batch loading)."""

import pytest

from repro.errors import ExpressivenessError
from repro.instances import Instance
from repro.instances.labeled_null import NullFactory
from repro.logic import parse_tgd
from repro.mappings import Mapping
from repro.metamodel import INT, STRING, SchemaBuilder
from repro.runtime import (
    BatchLoader,
    Endpoint,
    MaterializedExchange,
    PeerNetwork,
    Synchronizer,
    UpdatePropagator,
    UpdateSet,
    exchange,
    set_equal_modulo_nulls,
)
from repro.runtime.updates import apply_update, instance_delta
from repro.workloads import paper


def _dept_mapping():
    source = (
        SchemaBuilder("S").entity("Emp")
        .attribute("eid", INT).attribute("dept", STRING).build()
    )
    target = (
        SchemaBuilder("T").entity("InDept").attribute("dept", STRING)
        .entity("Badge").attribute("eid", INT).attribute("code", INT,
                                                         nullable=True)
        .build()
    )
    return Mapping(source, target, [
        parse_tgd("Emp(eid=e, dept=d) -> InDept(dept=d)"),
        parse_tgd("Emp(eid=e, dept=d) -> Badge(eid=e, code=c)"),
    ])


def _assert_matches_full(materialized, expected_source):
    mapping = materialized.mapping
    full = exchange(mapping, expected_source)
    assert set_equal_modulo_nulls(materialized.target_instance(), full)
    assert materialized.source_instance().set_equal(expected_source)


class TestMaterializedExchange:
    def test_insert_equivalent_to_full(self):
        mapping = _dept_mapping()
        source = Instance()
        for i in range(6):
            source.insert("Emp", {"eid": i, "dept": f"d{i % 2}"})
        materialized = MaterializedExchange(mapping, source)
        update = (UpdateSet()
                  .insert("Emp", eid=10, dept="d0")
                  .insert("Emp", eid=11, dept="d9"))
        delta = materialized.apply(update)
        # d0 exists already: only the fresh dept appears in the delta.
        assert [r["dept"] for r in delta.inserts.get("InDept", [])] == ["d9"]
        assert len(delta.inserts["Badge"]) == 2
        assert not delta.deletes
        _assert_matches_full(materialized, apply_update(source, update))
        assert materialized.stats["full_reexchange"] == 0
        assert materialized.stats["reused_rows"] > 0

    def test_delete_cascade_and_rederivation(self):
        mapping = _dept_mapping()
        source = Instance()
        source.insert("Emp", {"eid": 1, "dept": "sales"})
        source.insert("Emp", {"eid": 2, "dept": "sales"})
        materialized = MaterializedExchange(mapping, source)
        update = UpdateSet().delete("Emp", eid=1, dept="sales")
        delta = materialized.apply(update)
        # InDept(sales) loses its deriving trigger but is rederived from
        # the surviving employee — it must not show up in the delta.
        assert "InDept" not in delta.deletes
        assert [r["eid"] for r in delta.deletes["Badge"]] == [1]
        _assert_matches_full(materialized, apply_update(source, update))
        assert materialized.stats["overdeleted"] >= 1
        assert materialized.stats["rederived"] >= 1
        assert materialized.stats["full_reexchange"] == 0

    def test_delete_with_no_alternative_witness_cascades(self):
        mapping = _dept_mapping()
        source = Instance()
        source.insert("Emp", {"eid": 1, "dept": "sales"})
        materialized = MaterializedExchange(mapping, source)
        update = UpdateSet().delete("Emp", eid=1, dept="sales")
        delta = materialized.apply(update)
        assert [r["dept"] for r in delta.deletes["InDept"]] == ["sales"]
        assert materialized.target_instance().total_rows() == 0
        _assert_matches_full(materialized, apply_update(source, update))

    def test_duplicate_source_rows_bag_semantics(self):
        """Deleting one of two identical source rows keeps the derived
        row alive (the survivor is an alternative witness)."""
        mapping = _dept_mapping()
        source = Instance()
        source.insert("Emp", {"eid": 1, "dept": "sales"})
        source.insert("Emp", {"eid": 1, "dept": "sales"})
        materialized = MaterializedExchange(mapping, source)
        update = UpdateSet().delete("Emp", eid=1, dept="sales")
        materialized.apply(update)
        expected = apply_update(source, update)
        assert expected.cardinality("Emp") == 1
        _assert_matches_full(materialized, expected)
        # Deleting the last copy takes the derived rows with it.
        materialized.apply(update)
        assert materialized.target_instance().total_rows() == 0

    def test_egd_merge_and_rollback(self):
        source_schema = (
            SchemaBuilder("Se").entity("A").attribute("eid", INT)
            .entity("B").attribute("eid", INT)
            .attribute("office", STRING).build()
        )
        target_schema = (
            SchemaBuilder("Te").entity("Assign", key=("eid",))
            .attribute("eid", INT)
            .attribute("office", STRING, nullable=True).build()
        )
        mapping = Mapping(source_schema, target_schema, [
            parse_tgd("A(eid=e) -> Assign(eid=e, office=o)"),
            parse_tgd("B(eid=e, office=f) -> Assign(eid=e, office=f)"),
        ])
        source = Instance()
        source.insert("A", {"eid": 1})
        materialized = MaterializedExchange(mapping, source,
                                            enforce_target_keys=True)
        # Merge: the B row's constant office replaces the null.
        insert = UpdateSet().insert("B", eid=1, office="hq")
        materialized.apply(insert)
        current = apply_update(source, insert)
        # The chase may keep duplicate copies (the equivalence notion
        # is set-based); every copy must carry the merged constant.
        assert materialized.target_instance().as_sets()["Assign"] == {
            frozenset({("eid", 1), ("office", "hq")})
        }
        _assert_matches_full(materialized, current)
        # Rollback: deleting the B row must un-merge the office back to
        # a labeled null, exactly as a fresh exchange would produce.
        delete = UpdateSet().delete("B", eid=1, office="hq")
        materialized.apply(delete)
        current = apply_update(current, delete)
        _assert_matches_full(materialized, current)
        assert materialized.stats["merge_rollbacks"] >= 1
        assert materialized.stats["full_reexchange"] == 0

    def test_fallback_when_merged_value_flows_forward(self):
        """A later firing that carries the merged value in its frontier
        and *survives* the delete cascade makes rollback unsafe —
        maintenance detects it and falls back to a full re-exchange,
        still leaving an equivalent materialization."""
        source_schema = (
            SchemaBuilder("Sf").entity("A").attribute("eid", INT)
            .entity("B").attribute("eid", INT)
            .attribute("office", STRING)
            .entity("C").attribute("office", STRING).build()
        )
        target_schema = (
            SchemaBuilder("Tf").entity("Assign", key=("eid",))
            .attribute("eid", INT)
            .attribute("office", STRING, nullable=True)
            .entity("Log").attribute("eid", INT)
            .attribute("office", STRING).build()
        )
        mapping = Mapping(source_schema, target_schema, [
            parse_tgd("A(eid=e) -> Assign(eid=e, office=o)"),
            parse_tgd("B(eid=e, office=f) -> Assign(eid=e, office=f)"),
            parse_tgd("C(office=f) & Assign(eid=e, office=f) "
                      "-> Log(eid=e, office=f)"),
        ])
        source = Instance()
        source.insert("A", {"eid": 1})
        # The second office-"hq" assignment keeps a Log derivation with
        # the merged constant alive through the delete cascade.
        source.insert("B", {"eid": 2, "office": "hq"})
        materialized = MaterializedExchange(mapping, source,
                                            enforce_target_keys=True)
        current = source
        for update in (
            UpdateSet().insert("B", eid=1, office="hq"),   # merge
            UpdateSet().insert("C", office="hq"),          # flows forward
            UpdateSet().delete("B", eid=1, office="hq"),   # fallback
        ):
            materialized.apply(update)
            current = apply_update(current, update)
            _assert_matches_full(materialized, current)
        assert materialized.stats["full_reexchange"] == 1
        # The materialization keeps working after the rebuild.
        update = UpdateSet().insert("A", eid=2)
        materialized.apply(update)
        current = apply_update(current, update)
        _assert_matches_full(materialized, current)

    def test_rejects_non_tgd_mappings(self):
        with pytest.raises(ExpressivenessError):
            MaterializedExchange(paper.figure2_mapping(),
                                 paper.figure2_sql_instance())


class TestSetEqualModuloNulls:
    def test_renamed_nulls_are_equal(self):
        factory = NullFactory(0)
        a, b = factory.fresh(), factory.fresh()
        left, right = Instance(), Instance()
        left.insert("R", {"x": 1, "y": a})
        left.insert("R", {"x": 2, "y": a})
        right.insert("R", {"x": 1, "y": b})
        right.insert("R", {"x": 2, "y": b})
        assert set_equal_modulo_nulls(left, right)

    def test_shared_null_vs_distinct_nulls_differ(self):
        factory = NullFactory(0)
        a, b, c = factory.fresh(), factory.fresh(), factory.fresh()
        left, right = Instance(), Instance()
        left.insert("R", {"x": 1, "y": a})
        left.insert("S", {"y": a})
        right.insert("R", {"x": 1, "y": b})
        right.insert("S", {"y": c})
        assert not set_equal_modulo_nulls(left, right)

    def test_different_constants_differ(self):
        factory = NullFactory(0)
        left, right = Instance(), Instance()
        left.insert("R", {"x": 1, "y": factory.fresh()})
        right.insert("R", {"x": 2, "y": factory.fresh()})
        assert not set_equal_modulo_nulls(left, right)

    def test_hom_equivalent_universal_solutions(self):
        # Different shapes but homomorphically equivalent both ways —
        # the data-exchange notion of "the same universal solution".
        factory = NullFactory(0)
        left, right = Instance(), Instance()
        left.insert("R", {"y": factory.fresh()})
        left.insert("R", {"y": 5})
        right.insert("R", {"y": 5})
        assert set_equal_modulo_nulls(left, right)

    def test_interchangeable_all_null_rows_terminate(self):
        # Many mutually interchangeable all-null rows used to blow up a
        # fixed-order backtracking search; unit propagation + MRV must
        # answer instantly.
        factory = NullFactory(0)
        left, right = Instance(), Instance()
        for _ in range(60):
            left.insert("Room", {"office": factory.fresh()})
            right.insert("Room", {"office": factory.fresh()})
        left.insert("Assign", {"eid": 1, "office": "hq"})
        right.insert("Assign", {"eid": 1, "office": "hq"})
        assert set_equal_modulo_nulls(left, right)


class TestInstanceDeltaCounts:
    def test_duplicate_collapse_is_counted(self):
        before, after = Instance(), Instance()
        before.insert("R", {"x": 1})
        before.insert("R", {"x": 1})
        after.insert("R", {"x": 1})
        delta = instance_delta(before, after)
        assert delta.deletes == {"R": [{"x": 1}]}
        assert not delta.inserts

    def test_duplicate_growth_is_counted(self):
        before, after = Instance(), Instance()
        before.insert("R", {"x": 1})
        after.insert("R", {"x": 1})
        after.insert("R", {"x": 1})
        delta = instance_delta(before, after)
        assert delta.inserts == {"R": [{"x": 1}]}
        assert not delta.deletes

    def test_relation_scope_narrows_diff(self):
        before, after = Instance(), Instance()
        before.insert("R", {"x": 1})
        after.insert("S", {"x": 2})
        delta = instance_delta(before, after, relations={"S"})
        assert delta.inserts == {"S": [{"x": 2}]}
        assert not delta.deletes


class TestPropagatorDeltaPath:
    def test_chained_propagation_matches_fresh(self):
        mapping = paper.figure2_mapping()
        chained = UpdatePropagator(mapping)
        er = Instance(mapping.target)
        for i in range(8):
            er.insert_object("Employee", Id=i, Name=f"E{i}", Dept="D")
        updates = [
            UpdateSet().insert_object("Employee", Id=100 + i, Name="N",
                                      Dept="D")
            for i in range(3)
        ]
        target = er
        chained_results = []
        for update in updates:
            source_update, _, target = chained.propagate(target, update)
            chained_results.append(source_update)
        # Replay the same sequence without chaining (cache never hits).
        target = er
        for update, cached in zip(updates, chained_results):
            fresh = UpdatePropagator(mapping)
            source_update, _, target = fresh.propagate(target, update)
            assert source_update.describe() == cached.describe()


class TestSynchronizerForwardUpdate:
    def _synced(self):
        mapping = paper.figure2_mapping()
        primary = Endpoint(mapping, paper.figure2_sql_instance(),
                           name="primary")
        replica = Endpoint(paper.figure2_mapping(),
                           Instance(mapping.source), name="replica")
        synchronizer = Synchronizer(primary, replica)
        synchronizer.add_rule("Customer")
        synchronizer.synchronize()
        return synchronizer, primary, replica

    def test_forward_insert(self):
        synchronizer, primary, replica = self._synced()
        template = dict(primary.source.rows("Client")[0])
        template["Id"] = 99
        delta = synchronizer.forward_update(
            UpdateSet().insert("Client", **template)
        )
        assert not delta.is_empty
        assert 99 in {r["Id"] for r in replica.source.rows("Client")}
        assert synchronizer.verify_converged()

    def test_delete_heavy_rounds_stay_converged(self):
        synchronizer, primary, replica = self._synced()
        replicated = sorted(
            r["Id"] for r in replica.source.rows("Client")
        )
        assert replicated  # the rule replicated something to delete
        for client_id in replicated:
            delta = synchronizer.forward_update(
                UpdateSet().delete("Client", Id=client_id)
            )
            assert client_id not in {
                r["Id"] for r in replica.source.rows("Client")
            }
            assert synchronizer.verify_converged(), (
                f"diverged after deleting Client {client_id}: "
                f"{delta.describe()}"
            )
        assert replica.source.rows("Client") == []

    def test_mixed_rounds_match_full_synchronize(self):
        synchronizer, primary, replica = self._synced()
        template = dict(primary.source.rows("Client")[0])
        first_id = template["Id"]
        template["Id"] = 41
        synchronizer.forward_update(
            UpdateSet().insert("Client", **template)
            .delete("Client", Id=first_id)
        )
        assert synchronizer.verify_converged()
        # A fresh synchronize over the updated primary finds nothing
        # left to do.
        assert synchronizer.synchronize().is_empty


class TestPeerChainMaintenance:
    def _network(self, peers=4, rows=30):
        network = PeerNetwork()
        schemas = []
        for i in range(peers):
            schemas.append(
                SchemaBuilder(f"P{i}").entity(f"R{i}", key=["k"])
                .attribute("k", INT).attribute("v", INT).build()
            )
            data = None
            if i == 0:
                data = Instance()
                for r in range(rows):
                    data.add("R0", k=r, v=r * 2)
            network.add_peer(f"p{i}", schemas[i], data)
        for i in range(peers - 1):
            network.add_mapping(
                f"p{i}", f"p{i+1}",
                Mapping(schemas[i], schemas[i + 1], [
                    parse_tgd(f"R{i}(k=x, v=y) -> R{i+1}(k=x, v=y)")
                ]),
            )
        return network

    def test_propagate_update_matches_full_propagation(self):
        network = self._network()
        insert = network.propagate_update(
            "p0", "p3", UpdateSet().insert("R0", k=100, v=200)
        )
        assert insert.inserts == {"R3": [{"k": 100, "v": 200}]}
        delete = network.propagate_update(
            "p0", "p3", UpdateSet().delete("R0", k=3)
        )
        assert delete.deletes == {"R3": [{"k": 3, "v": 6}]}
        maintained = network.materialized_target("p0", "p3")
        assert set_equal_modulo_nulls(maintained,
                                      network.propagate("p0", "p3"))

    def test_empty_delta_short_circuits(self):
        network = self._network()
        delta = network.propagate_update(
            "p0", "p3", UpdateSet().delete("R0", k=10 ** 9)
        )
        assert delta.is_empty


class TestLoaderMaterializedFlush:
    def _setup(self):
        mapping = paper.figure2_mapping()
        db = paper.figure2_sql_instance()
        downstream = Mapping(
            mapping.source,
            SchemaBuilder("W").entity("Names", key=["Id"])
            .attribute("Id", INT).attribute("Name", STRING).build(),
            [parse_tgd("HR(Id=i, Name=n) -> Names(Id=i, Name=n)")],
        )
        return mapping, MaterializedExchange(downstream, db)

    def test_flush_appends_through_materialization(self):
        mapping, materialized = self._setup()
        before = materialized.target_instance().cardinality("Names")
        loader = BatchLoader(mapping)
        loader.stage("Employee", [{"Id": 500, "Name": "Zed",
                                   "Dept": "Ops"}])
        loaded, report = loader.flush(materialized=materialized)
        assert report.ok
        assert materialized.target_instance().cardinality("Names") == \
            before + 1
        full = exchange(materialized.mapping,
                        materialized.source_instance())
        assert set_equal_modulo_nulls(materialized.target_instance(),
                                      full)
        assert loaded.set_equal(materialized.source_instance())

    def test_reflush_is_idempotent(self):
        mapping, materialized = self._setup()
        loader = BatchLoader(mapping)
        loader.stage("Employee", [{"Id": 500, "Name": "Zed",
                                   "Dept": "Ops"}])
        loader.flush(materialized=materialized)
        after_first = materialized.target_instance()
        loader.stage("Employee", [{"Id": 500, "Name": "Zed",
                                   "Dept": "Ops"}])
        loader.flush(materialized=materialized)
        assert materialized.target_instance().set_equal(after_first)
