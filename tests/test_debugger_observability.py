"""Satellite coverage: MappingDebugger and provenance routes through
the instrumented engine facade — spans nest into one tree and the
debugger's textual output cross-references span ids."""

import pytest

import repro.observability as obs
from repro.core import ModelManagementEngine
from repro.instances import Instance
from repro.logic import parse_tgd
from repro.mappings import Mapping
from repro.metamodel import INT, SchemaBuilder
from repro.observability import tracer


@pytest.fixture(autouse=True)
def _clean_observability():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _two_hop_mapping():
    source = (SchemaBuilder("S").entity("Base", key=["a"])
              .attribute("a", INT).attribute("b", INT)
              .entity("Mid", key=["m"]).attribute("m", INT)
              .attribute("n", INT).build())
    target = (SchemaBuilder("T").entity("Final", key=["f"])
              .attribute("f", INT)
              .entity("Mid", key=["m"]).attribute("m", INT)
              .attribute("n", INT).build())
    tgds = [
        parse_tgd("Base(a=x, b=y) -> Mid(m=x, n=y)", name="step1"),
        parse_tgd("Mid(m=x, n=y) -> Final(f=y)", name="step2"),
    ]
    db = Instance()
    db.add("Base", a=1, b=10)
    db.add("Base", a=2, b=20)
    return Mapping(source, target, tgds, name="twohop"), db


class TestDebuggerSpans:
    def test_trace_steps_carry_span_ids(self):
        mapping, db = _two_hop_mapping()
        debugger = ModelManagementEngine().debugger(mapping)
        obs.enable()
        steps = debugger.trace(db)
        assert len(steps) == 2
        span_ids = {s.span_id for s in tracer.iter_spans()}
        for step in steps:
            assert step.span_id is not None
            assert step.span_id in span_ids
            assert f"[span {step.span_id}]" in step.describe()

    def test_trace_spans_nest_under_debug_trace(self):
        mapping, db = _two_hop_mapping()
        debugger = ModelManagementEngine().debugger(mapping)
        obs.enable()
        debugger.trace(db)
        (root,) = tracer.roots
        assert root.name == "debug.trace"
        assert root.attributes["mapping.name"] == "twohop"
        child_names = [c.name for c in root.children]
        assert child_names.count("debug.step") == 2
        # each step chases one tgd — nested under its step span
        step_children = [g.name for c in root.children
                        for g in c.children]
        assert "logic.chase" in step_children

    def test_trace_without_tracing_has_no_span_ids(self):
        mapping, db = _two_hop_mapping()
        debugger = ModelManagementEngine().debugger(mapping)
        steps = debugger.trace(db)
        assert all(step.span_id is None for step in steps)
        assert "[span" not in steps[0].describe()
        assert tracer.span_count() == 0

    def test_explain_route_produces_nested_provenance_spans(self):
        mapping, db = _two_hop_mapping()
        debugger = ModelManagementEngine().debugger(mapping)
        obs.enable()
        routes = debugger.explain_route({"f": 10}, "Final", db)
        assert routes  # derivation found
        (root,) = tracer.roots
        assert root.name == "debug.explain_route"
        assert root.attributes["relation"] == "Final"
        names = [s.name for s in tracer.iter_spans()]
        assert "provenance.route" in names
        assert "provenance.lineage" in names
        route_span = next(s for s in tracer.iter_spans()
                          if s.name == "provenance.route")
        assert route_span.parent_id == root.span_id

    def test_explain_row_span(self):
        mapping, db = _two_hop_mapping()
        debugger = ModelManagementEngine().debugger(mapping)
        obs.enable()
        entries = debugger.explain_row({"m": 1, "n": 10}, "Mid", db)
        assert entries
        names = [s.name for s in tracer.iter_spans()]
        assert names[0] == "debug.explain_row"
        assert "provenance.lineage" in names

    def test_explain_missing_span(self):
        mapping, db = _two_hop_mapping()
        debugger = ModelManagementEngine().debugger(mapping)
        obs.enable()
        reasons = debugger.explain_missing({"f": 999}, "Final", db)
        assert reasons
        assert tracer.roots[0].name == "debug.explain_missing"

    def test_full_session_is_one_coherent_forest(self):
        """A debugging session mixing exchange, trace and routes yields
        spans for every service, all exported together."""
        mapping, db = _two_hop_mapping()
        engine = ModelManagementEngine()
        debugger = engine.debugger(mapping)
        obs.enable()
        engine.exchange(mapping, db)
        debugger.trace(db)
        debugger.explain_route({"f": 10}, "Final", db)
        names = {s.name for s in tracer.iter_spans()}
        assert {"engine.exchange", "runtime.exchange", "logic.chase",
                "debug.trace", "debug.step", "debug.explain_route",
                "provenance.route"} <= names
