"""The benchmark regression watchdog: metric extraction from every
committed BENCH format, threshold judgments, and the acceptance
contract — an unchanged tree diffs clean, a baseline perturbed beyond
threshold demonstrably fails.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.observability.benchdiff import (
    HIGHER_REL_THRESHOLD,
    LOWER_REL_THRESHOLD,
    OVERHEAD_CEILING,
    STATS_OVERHEAD_CEILING,
    diff_dirs,
    diff_files,
    diff_payloads,
    extract_metrics,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def harness_payload(warm_ms=0.7, speedup="3.1x", timing=0.5):
    return {
        "benchmark": "query_executor",
        "format": "harness-v1",
        "tables": [
            {
                "headers": ["persons", "query", "interpreted",
                            "compiled warm", "speedup (warm)"],
                "rows": [
                    [4000, "unfold-extent", "33.0 ms",
                     f"{warm_ms:g} ms", speedup],
                ],
            }
        ],
        "timings_seconds": {"report": timing},
    }


def trajectory_payload(seminaive=0.03, rate=100_000):
    return {
        "benchmark": "chase_scaling",
        "results": [
            {
                "workload": "chain(stages=12)",
                "source_rows": 250,
                "rows_produced": 3000,
                "seminaive_seconds": seminaive,
                "seminaive_rows_per_sec": rate,
                "speedup": 7.7,
                "hom_equivalent": True,
            }
        ],
    }


def contract_payload(overhead=0.4, stats_overhead=3.0):
    return {
        "benchmark": "observability",
        "contract": {"max_overhead_percent": 5.0},
        "chase": {
            "disabled_overhead_percent": overhead,
            "enabled_seconds": 0.02,
            "spans": 12,
        },
        "stats": {
            "stats_overhead_percent": stats_overhead,
            "stats_extend_ns_per_row": 700.0,
        },
    }


class TestExtraction:
    def test_harness_cells_and_timings(self):
        metrics = {m.key: m for m in extract_metrics(harness_payload())}
        warm = metrics["4000/unfold-extent/compiled warm"]
        assert warm.kind == "lower" and warm.value == 0.7
        speed = metrics["4000/unfold-extent/speedup (warm)"]
        assert speed.kind == "higher" and speed.value == 3.1
        timing = metrics["timing/report"]
        assert timing.kind == "lower" and timing.value == 0.5

    def test_harness_seconds_cells_normalize_to_ms(self):
        payload = harness_payload()
        payload["tables"][0]["rows"][0][2] = "1.5 s"
        metrics = {m.key: m for m in extract_metrics(payload)}
        assert metrics["4000/unfold-extent/interpreted"].value == 1500.0

    def test_trajectory_fields(self):
        metrics = {m.key: m for m in extract_metrics(trajectory_payload())}
        prefix = "chain(stages=12)/rows=250"
        assert metrics[f"{prefix}/seminaive_seconds"].kind == "lower"
        assert metrics[f"{prefix}/seminaive_rows_per_sec"].kind == "higher"
        assert metrics[f"{prefix}/speedup"].kind == "higher"
        assert metrics[f"{prefix}/rows_produced"].kind == "info"
        # booleans are info, not judged as numbers
        assert metrics[f"{prefix}/hom_equivalent"].kind == "info"

    def test_contract_fields(self):
        metrics = {m.key: m for m in extract_metrics(contract_payload())}
        assert metrics["chase.disabled_overhead_percent"].kind == "ceiling"
        assert metrics["chase.enabled_seconds"].kind == "lower"
        assert metrics["chase.spans"].kind == "info"
        assert (
            metrics["stats.stats_overhead_percent"].kind == "stats_ceiling"
        )
        assert metrics["stats.stats_extend_ns_per_row"].kind == "info"

    def test_every_committed_baseline_yields_metrics(self):
        for path in sorted(REPO_ROOT.glob("BENCH_*.json")):
            payload = json.loads(path.read_text())
            assert extract_metrics(payload), f"{path.name} extracted nothing"


class TestJudgment:
    def test_identical_payloads_diff_clean(self):
        report = diff_payloads("q", harness_payload(), harness_payload())
        assert report.regressions == []
        assert report.compared > 0

    def test_lower_better_fails_beyond_2x(self):
        baseline = harness_payload(warm_ms=0.7)
        limit = 0.7 * (1.0 + LOWER_REL_THRESHOLD)
        ok = diff_payloads("q", baseline, harness_payload(warm_ms=limit))
        assert ok.regressions == []
        bad = diff_payloads(
            "q", baseline, harness_payload(warm_ms=limit * 1.1)
        )
        assert [f.key for f in bad.regressions] == [
            "4000/unfold-extent/compiled warm"
        ]

    def test_higher_better_fails_below_half(self):
        baseline = trajectory_payload(rate=100_000)
        floor = 100_000 * HIGHER_REL_THRESHOLD
        ok = diff_payloads("c", baseline, trajectory_payload(rate=floor))
        assert ok.regressions == []
        bad = diff_payloads(
            "c", baseline, trajectory_payload(rate=floor * 0.9)
        )
        assert [f.key for f in bad.regressions] == [
            "chain(stages=12)/rows=250/seminaive_rows_per_sec"
        ]

    def test_overhead_ceiling_is_absolute(self):
        # a big relative jump below the ceiling is fine...
        ok = diff_payloads(
            "o", contract_payload(overhead=0.1),
            contract_payload(overhead=OVERHEAD_CEILING),
        )
        assert all(
            f.status != "regressed"
            for f in ok.findings
            if f.key == "chase.disabled_overhead_percent"
        )
        # ...but exceeding the contract fails even from a high baseline
        bad = diff_payloads(
            "o", contract_payload(overhead=4.9),
            contract_payload(overhead=OVERHEAD_CEILING + 0.1),
        )
        assert [f.key for f in bad.regressions] == [
            "chase.disabled_overhead_percent"
        ]

    def test_stats_overhead_ceiling_is_absolute(self):
        ok = diff_payloads(
            "o", contract_payload(stats_overhead=0.5),
            contract_payload(stats_overhead=STATS_OVERHEAD_CEILING),
        )
        assert ok.regressions == []
        bad = diff_payloads(
            "o", contract_payload(stats_overhead=9.9),
            contract_payload(stats_overhead=STATS_OVERHEAD_CEILING + 0.1),
        )
        assert [f.key for f in bad.regressions] == [
            "stats.stats_overhead_percent"
        ]

    def test_info_metrics_never_fail(self):
        baseline = trajectory_payload()
        fresh = trajectory_payload()
        fresh["results"][0]["rows_produced"] = 999_999
        report = diff_payloads("c", baseline, fresh)
        assert report.regressions == []
        finding = next(
            f for f in report.findings if f.key.endswith("rows_produced")
        )
        assert finding.status == "changed"

    def test_improvements_reported_not_failed(self):
        report = diff_payloads(
            "q", harness_payload(warm_ms=2.0), harness_payload(warm_ms=0.2)
        )
        assert report.regressions == []
        assert any(f.status == "improved" for f in report.findings)

    def test_key_intersection_smoke_vs_full(self):
        """A smoke run (one size) against a full baseline (two sizes)
        judges only the shared keys; full-only keys are non-failing
        'missing' findings."""
        full = harness_payload()
        full["tables"][0]["rows"].append(
            [250, "unfold-extent", "2.0 ms", "0.6 ms", "3.3x"]
        )
        smoke = harness_payload()
        report = diff_payloads("q", full, smoke)
        assert report.regressions == []
        missing = [f for f in report.findings if f.status == "missing"]
        assert missing and all(f.key.startswith("250/") for f in missing)


class TestDirsAndCli:
    def write(self, directory, name, payload):
        (directory / name).write_text(json.dumps(payload))

    def test_diff_dirs_pairs_by_name(self, tmp_path):
        base = tmp_path / "base"
        fresh = tmp_path / "fresh"
        base.mkdir(), fresh.mkdir()
        self.write(base, "BENCH_query.json", harness_payload())
        self.write(fresh, "BENCH_query.json", harness_payload(warm_ms=9.0))
        self.write(fresh, "BENCH_new.json", trajectory_payload())
        reports = {r.name: r for r in diff_dirs(base, fresh)}
        assert reports["BENCH_query.json"].regressions
        # fresh-only file is reported, never failed
        assert reports["BENCH_new.json"].regressions == []

    def test_unchanged_tree_diffs_clean_and_perturbed_fails(self, tmp_path):
        """The acceptance contract, end to end through the CLI: the
        committed baseline vs itself exits 0; the same baseline with
        one timing perturbed beyond threshold exits 1."""
        baseline = REPO_ROOT / "BENCH_query.json"
        clean = diff_files(baseline, baseline)
        assert clean.regressions == [] and clean.compared > 0

        payload = json.loads(baseline.read_text())
        cell = payload["tables"][0]["rows"][0][2]  # e.g. "2.06 ms"
        value = float(cell.split()[0])
        payload["tables"][0]["rows"][0][2] = (
            f"{value * (1.0 + LOWER_REL_THRESHOLD) * 1.5:.2f} ms"
        )
        self.write(tmp_path, "BENCH_query.json", payload)

        script = str(REPO_ROOT / "benchmarks" / "regression.py")
        ok = subprocess.run(
            [sys.executable, script, "diff",
             "--baseline-dir", str(REPO_ROOT), "--fresh-dir", str(REPO_ROOT)],
            capture_output=True, text=True,
        )
        assert ok.returncode == 0, ok.stdout + ok.stderr
        bad = subprocess.run(
            [sys.executable, script, "diff",
             "--baseline-dir", str(REPO_ROOT),
             "--fresh-dir", str(tmp_path)],
            capture_output=True, text=True,
        )
        assert bad.returncode == 1, bad.stdout + bad.stderr
        assert "regressed" in bad.stdout

    def test_repro_bench_diff_cli(self, tmp_path):
        self.write(tmp_path, "BENCH_query.json", harness_payload())
        result = subprocess.run(
            [sys.executable, "-m", "repro", "bench", "diff",
             "--baseline-dir", str(tmp_path),
             "--fresh-dir", str(tmp_path), "--json"],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin"},
        )
        assert result.returncode == 0, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        assert payload[0]["regressions"] == 0
