"""Tests for the chase, core computation, certain answers, containment
and second-order tgds."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ChaseFailure, ChaseNonTermination, ExpressivenessError
from repro.instances import Instance, LabeledNull
from repro.logic import (
    ConjunctiveQuery,
    SecondOrderTGD,
    Var,
    are_equivalent,
    certain_answers,
    chase,
    core_of,
    deskolemize,
    is_contained_in,
    is_weakly_acyclic,
    naive_evaluate,
    parse_egd,
    parse_query,
    parse_tgd,
    skolemize,
)
from repro.logic.dependencies import key_egd
from repro.logic.homomorphism import are_hom_equivalent, instance_homomorphism
from repro.logic.second_order import execute_so_tgd, skolemize_all


class TestChaseFullTgds:
    def test_copy_tgd(self):
        db = Instance()
        db.add("A", x=1)
        db.add("A", x=2)
        result = chase(db, [parse_tgd("A(x=v) -> B(x=v)")])
        assert {r["x"] for r in result.instance.rows("B")} == {1, 2}

    def test_join_tgd(self):
        db = Instance()
        db.insert_all("E", [{"a": 1, "b": 2}, {"a": 2, "b": 3}])
        result = chase(db, [parse_tgd("E(a=x, b=y) & E(a=y, b=z) -> P(a=x, b=z)")])
        assert result.instance.rows("P") == [{"a": 1, "b": 3}]

    def test_idempotent_on_satisfied(self):
        db = Instance()
        db.add("A", x=1)
        db.add("B", x=1)
        result = chase(db, [parse_tgd("A(x=v) -> B(x=v)")])
        assert result.steps == 0

    def test_does_not_mutate_input_by_default(self):
        db = Instance()
        db.add("A", x=1)
        chase(db, [parse_tgd("A(x=v) -> B(x=v)")])
        assert db.rows("B") == []


class TestChaseExistentials:
    def test_fresh_nulls(self):
        db = Instance()
        db.add("Person", name="Ann")
        result = chase(db, [parse_tgd("Person(name=n) -> Badge(name=n, code=c)")])
        badge = result.instance.rows("Badge")[0]
        assert badge["name"] == "Ann"
        assert isinstance(badge["code"], LabeledNull)

    def test_standard_chase_does_not_refire(self):
        db = Instance()
        db.add("Person", name="Ann")
        tgd = parse_tgd("Person(name=n) -> Badge(name=n, code=c)")
        result = chase(db, [tgd])
        again = chase(result.instance, [tgd])
        assert again.steps == 0
        assert again.instance.cardinality("Badge") == 1

    def test_shared_existential_across_head_atoms(self):
        db = Instance()
        db.add("Emp", id=1)
        tgd = parse_tgd("Emp(id=i) -> Dept(did=d, head=i) & Member(did=d, emp=i)")
        result = chase(db, [tgd])
        dept = result.instance.rows("Dept")[0]
        member = result.instance.rows("Member")[0]
        assert dept["did"] == member["did"]
        assert isinstance(dept["did"], LabeledNull)

    def test_universal_solution_property(self):
        """The chase result maps homomorphically into any other solution."""
        db = Instance()
        db.add("S", a=1)
        tgd = parse_tgd("S(a=x) -> T(a=x, b=y)")
        universal = chase(db, [tgd]).instance
        solution = Instance()
        solution.add("S", a=1)
        solution.add("T", a=1, b=42)
        solution.add("T", a=1, b=43)
        target_only = Instance()
        target_only.relations = {
            "T": solution.relations["T"], "S": solution.relations["S"],
        }
        assert instance_homomorphism(universal, target_only) is not None


class TestChaseEgds:
    def test_key_merges_nulls(self):
        db = Instance()
        n1, n2 = LabeledNull(100), LabeledNull(101)
        db.add("R", k=1, v=n1)
        db.add("R", k=1, v=n2)
        result = chase(db, [parse_egd("R(k=x, v=a) & R(k=x, v=b) -> a = b")])
        values = {r["v"] for r in result.instance.rows("R")}
        assert len(values) == 1

    def test_null_takes_constant(self):
        db = Instance()
        n = LabeledNull(100)
        db.add("R", k=1, v=n)
        db.add("R", k=1, v="x")
        result = chase(db, [parse_egd("R(k=x, v=a) & R(k=x, v=b) -> a = b")])
        assert all(r["v"] == "x" for r in result.instance.rows("R"))

    def test_constant_conflict_fails(self):
        db = Instance()
        db.add("R", k=1, v="x")
        db.add("R", k=1, v="y")
        with pytest.raises(ChaseFailure):
            chase(db, [parse_egd("R(k=x, v=a) & R(k=x, v=b) -> a = b")])

    def test_key_egd_helper(self):
        egd = key_egd("R", ["k"], ["k", "v", "w"])
        db = Instance()
        n1, n2 = LabeledNull(0), LabeledNull(1)
        db.add("R", k=1, v=n1, w="c")
        db.add("R", k=1, v="seen", w=n2)
        result = chase(db, [egd])
        rows = result.instance.deduplicated().rows("R")
        assert rows == [{"k": 1, "v": "seen", "w": "c"}]

    def test_tgd_egd_interaction(self):
        """FK-style tgd invents a null; key egd then merges it with the
        existing constant row."""
        db = Instance()
        db.add("Empl", id=1, dept=5)
        db.add("Dept", did=5, name="QA")
        deps = [
            parse_tgd("Empl(id=i, dept=d) -> Dept(did=d, name=n)"),
            parse_egd("Dept(did=d, name=a) & Dept(did=d, name=b) -> a = b"),
        ]
        result = chase(db, deps)
        assert result.instance.deduplicated().rows("Dept") == [
            {"did": 5, "name": "QA"}
        ]


class TestChaseTermination:
    def test_non_terminating_raises(self):
        db = Instance()
        db.add("N", a=1, b=2)
        looping = parse_tgd("N(a=x, b=y) -> N(a=y, b=z)")
        with pytest.raises(ChaseNonTermination):
            chase(db, [looping], max_steps=200)

    def test_weak_acyclicity_positive(self):
        tgds = [
            parse_tgd("S(a=x) -> T(a=x, b=y)"),
            parse_tgd("T(a=x, b=y) -> U(c=y)"),
        ]
        assert is_weakly_acyclic(tgds)

    def test_weak_acyclicity_negative(self):
        looping = parse_tgd("N(a=x, b=y) -> N(a=y, b=z)")
        assert not is_weakly_acyclic([looping])

    def test_full_tgds_always_weakly_acyclic(self):
        tgds = [
            parse_tgd("A(x=v) -> B(x=v)"),
            parse_tgd("B(x=v) -> A(x=v)"),
        ]
        assert is_weakly_acyclic(tgds)


class TestCore:
    def test_collapses_redundant_null_row(self):
        db = Instance()
        db.add("T", a=1, b=2)
        db.add("T", a=1, b=LabeledNull(0))
        core = core_of(db)
        assert core.rows("T") == [{"a": 1, "b": 2}]

    def test_keeps_necessary_nulls(self):
        db = Instance()
        db.add("T", a=1, b=LabeledNull(0))
        core = core_of(db)
        assert core.cardinality("T") == 1

    def test_core_is_hom_equivalent(self):
        db = Instance()
        db.add("T", a=1, b=LabeledNull(0))
        db.add("T", a=1, b=LabeledNull(1))
        db.add("T", a=1, b=7)
        core = core_of(db)
        assert are_hom_equivalent(db, core)
        assert core.total_rows() == 1

    def test_core_of_chase_smaller_than_chase(self):
        db = Instance()
        db.insert_all("S", [{"a": i} for i in range(4)])
        tgds = [
            parse_tgd("S(a=x) -> T(a=x, b=y)"),
            parse_tgd("S(a=x) -> T(a=x, b=0)"),
        ]
        chased = chase(db, tgds).instance
        core = core_of(chased)
        assert core.cardinality("T") <= chased.cardinality("T")
        assert not core.nulls()  # b=0 rows subsume the null rows


class TestCertainAnswers:
    def test_nulls_filtered(self):
        db = Instance()
        db.add("S", a=1)
        universal = chase(db, [parse_tgd("S(a=x) -> T(a=x, b=y)")]).instance
        q_a = parse_query("q(x) :- T(a=x, b=y)")
        q_b = parse_query("q(y) :- T(a=x, b=y)")
        assert certain_answers(q_a, universal) == [(1,)]
        assert certain_answers(q_b, universal) == []

    def test_naive_evaluation_keeps_nulls(self):
        db = Instance()
        db.add("T", a=1, b=LabeledNull(0))
        q = parse_query("q(y) :- T(a=x, b=y)")
        assert len(naive_evaluate(q, db)) == 1

    def test_union_of_queries(self):
        db = Instance()
        db.add("A", x=1)
        db.add("B", x=2)
        qs = [parse_query("q(v) :- A(x=v)"), parse_query("q(v) :- B(x=v)")]
        assert set(certain_answers(qs, db)) == {(1,), (2,)}


class TestContainment:
    def test_projection_containment(self):
        specific = parse_query("q(x) :- R(a=x, b=x)")
        general = parse_query("q(x) :- R(a=x, b=y)")
        assert is_contained_in(specific, general)
        assert not is_contained_in(general, specific)

    def test_join_containment(self):
        two_hop = parse_query("q(x, z) :- E(a=x, b=y) & E(a=y, b=z)")
        anything = parse_query("q(x, z) :- E(a=x, b=u) & E(a=v, b=z)")
        assert is_contained_in(two_hop, anything)
        assert not is_contained_in(anything, two_hop)

    def test_equivalence_modulo_redundancy(self):
        minimal = parse_query("q(x) :- R(a=x, b=y)")
        redundant = parse_query("q(x) :- R(a=x, b=y) & R(a=x, b=z)")
        assert are_equivalent(minimal, redundant)

    def test_constants_matter(self):
        with_const = parse_query("q(x) :- R(a=x, b=5)")
        without = parse_query("q(x) :- R(a=x, b=y)")
        assert is_contained_in(with_const, without)
        assert not is_contained_in(without, with_const)


class TestSecondOrder:
    def test_skolemize_introduces_functions(self):
        tgd = parse_tgd("S(a=x) -> T(a=x, b=y)", name="m")
        implication = skolemize(tgd)
        head_term = implication.head[0].term("b")
        assert head_term.function == "f_m_y"
        assert head_term.args == (Var("x"),)

    def test_skolemize_full_tgd_unchanged(self):
        tgd = parse_tgd("S(a=x) -> T(a=x)")
        implication = skolemize(tgd)
        assert not implication.functions()

    def test_deskolemize_roundtrip(self):
        tgds = [
            parse_tgd("S(a=x) -> T(a=x, b=y)", name="m1"),
            parse_tgd("S(a=x) & S(a=x) -> U(u=x)", name="m2"),
        ]
        so = skolemize_all(tgds)
        back = deskolemize(so)
        assert len(back) == 2
        assert back[0].existentials() == {Var("e0_0")}

    def test_deskolemize_rejects_nested(self):
        from repro.logic.formulas import Atom
        from repro.logic.second_order import Implication
        from repro.logic.terms import FuncTerm, Var

        nested = FuncTerm("f", (FuncTerm("g", (Var("x"),)),))
        so = SecondOrderTGD(
            implications=(
                Implication(
                    body=(Atom.of("S", a=Var("x")),),
                    head=(Atom.of("T", b=nested),),
                ),
            )
        )
        with pytest.raises(ExpressivenessError):
            deskolemize(so)

    def test_execute_so_tgd_memoizes_skolems(self):
        tgds = [
            parse_tgd("S(a=x) -> T(a=x, b=y)", name="m1"),
            parse_tgd("S(a=x) -> U(a=x, b=y)", name="m1"),  # same name → same f?
        ]
        # Distinct existentials get distinct functions even with the same
        # tgd name, because skolemize includes the variable name.
        so = skolemize_all(tgds)
        db = Instance()
        db.add("S", a=1)
        db.add("S", a=2)
        out = execute_so_tgd(so, db)
        assert out.cardinality("T") == 2
        assert out.cardinality("U") == 2

    def test_execute_matches_chase_up_to_homomorphism(self):
        tgd = parse_tgd("S(a=x) -> T(a=x, b=y)", name="m")
        db = Instance()
        db.insert_all("S", [{"a": i} for i in range(3)])
        chased = chase(db, [tgd]).instance
        target_chase = Instance()
        target_chase.relations["T"] = chased.relations["T"]
        executed = execute_so_tgd(skolemize_all([tgd]), db)
        assert are_hom_equivalent(target_chase, executed)

    def test_so_tgd_size_metric(self):
        so = skolemize_all([parse_tgd("S(a=x) -> T(a=x, b=y)")])
        assert so.size() == 2
        assert not so.is_first_order


@given(st.lists(st.integers(0, 5), min_size=0, max_size=8))
@settings(max_examples=30, deadline=None)
def test_chase_is_a_solution(values):
    """After chasing, every dependency is satisfied."""
    db = Instance()
    for v in values:
        db.add("S", a=v)
    tgds = [
        parse_tgd("S(a=x) -> T(a=x, b=y)"),
        parse_tgd("T(a=x, b=y) -> U(u=y)"),
    ]
    result = chase(db, tgds)
    again = chase(result.instance, tgds)
    assert again.steps == 0
