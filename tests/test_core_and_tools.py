"""Tests for the engine facade, metadata repository, evolution scripts
and the tool layer."""

import pytest

from repro import ModelManagementEngine
from repro.algebra import Col, Scan, Select, eq, gt, project_names
from repro.errors import RepositoryError
from repro.instances import Instance
from repro.logic import parse_tgd
from repro.mappings import CorrespondenceSet, Mapping
from repro.metamodel import INT, STRING, SchemaBuilder
from repro.core.repository import MetadataRepository
from repro.core.scripts import evolve_view_script, migrate_script
from repro.operators import InheritanceStrategy
from repro.tools import (
    EtlPipeline,
    MessageMapper,
    QueryMediator,
    ReportSpec,
    ReportWriter,
    WrapperGenerator,
)
from repro.workloads import paper
from tests.test_metamodel_schema import person_hierarchy


class TestEngineFacade:
    def test_match_interpret_transgen_pipeline(self):
        engine = ModelManagementEngine()
        correspondences = engine.match(
            paper.figure4_source_schema(), paper.figure4_target_schema()
        )
        assert len(correspondences) > 0
        mapping = engine.interpret(paper.figure4_correspondences())
        transformation = engine.transgen(mapping)
        result = transformation.apply(paper.figure4_source_instance())
        assert result.cardinality("Staff") == 2

    def test_snowflake_interpretation_via_engine(self):
        engine = ModelManagementEngine()
        mapping = engine.interpret(paper.figure4_correspondences(),
                                   style="snowflake")
        assert len(mapping.equalities) == 4

    def test_modelgen_and_roundtrip(self):
        engine = ModelManagementEngine()
        result = engine.modelgen(person_hierarchy(), "relational",
                                 InheritanceStrategy.TPH)
        views = engine.transgen(result.mapping)
        db = Instance(person_hierarchy())
        db.insert_object("Employee", Id=1, Name="A", Dept="X")
        views.verify_roundtrip(db)

    def test_compose_and_scripts(self):
        engine = ModelManagementEngine()
        composed = engine.compose(paper.figure6_map_v_s(),
                                  paper.figure6_map_s_sprime())
        assert composed.target.name == "Sprime"

    def test_exchange(self):
        engine = ModelManagementEngine()
        result = engine.exchange(paper.figure2_mapping(),
                                 paper.figure2_sql_instance())
        assert result.set_equal(paper.figure2_er_instance())

    def test_runtime_accessors(self):
        engine = ModelManagementEngine()
        mapping = paper.figure2_mapping()
        db = paper.figure2_sql_instance()
        assert engine.query_processor(mapping, db) is not None
        assert engine.debugger(mapping) is not None
        assert engine.error_translator(mapping) is not None
        assert engine.access_controller(mapping) is not None
        report = engine.check_integrity_propagation(mapping, db)
        assert report.propagates


class TestRepository:
    def test_save_load_schema(self):
        repo = MetadataRepository()
        repo.save_schema(person_hierarchy())
        loaded = repo.load_schema("ERS")
        assert set(loaded.entities) == {"Person", "Employee", "Customer"}

    def test_versioning(self):
        repo = MetadataRepository()
        repo.save_schema(person_hierarchy(), comment="v1")
        evolved = person_hierarchy()
        from repro.metamodel import Attribute

        evolved.entity("Person").add_attribute(
            Attribute("Email", STRING, nullable=True)
        )
        repo.save_schema(evolved, comment="added email")
        assert repo.versions_of("schema", "ERS") == [1, 2]
        v1 = repo.load_schema("ERS", version=1)
        v2 = repo.load_schema("ERS", version=2)
        assert not v1.entity("Person").has_attribute("Email")
        assert v2.entity("Person").has_attribute("Email")
        assert repo.load_schema("ERS").entity("Person").has_attribute("Email")

    def test_unknown_name(self):
        with pytest.raises(RepositoryError):
            MetadataRepository().load_schema("nope")

    def test_unknown_version(self):
        repo = MetadataRepository()
        repo.save_schema(person_hierarchy())
        with pytest.raises(RepositoryError):
            repo.load_schema("ERS", version=9)

    def test_mapping_storage(self):
        repo = MetadataRepository()
        repo.save_mapping(paper.figure2_mapping())
        loaded = repo.load_mapping("figure2")
        assert loaded.holds_for(
            paper.figure2_sql_instance(), paper.figure2_er_instance()
        )
        assert repo.list_mappings() == ["figure2"]

    def test_disk_persistence(self, tmp_path):
        repo = MetadataRepository(tmp_path)
        repo.save_schema(person_hierarchy())
        repo.save_mapping(paper.figure2_mapping())
        reopened = MetadataRepository(tmp_path)
        assert reopened.list_schemas() == ["ERS"]
        assert reopened.list_mappings() == ["figure2"]
        assert reopened.load_schema("ERS").entity("Employee").parent.name == (
            "Person"
        )


class TestScripts:
    def test_migrate_script(self):
        result = migrate_script(
            paper.figure6_map_v_s(),
            paper.figure6_map_s_sprime(),
            database=paper.figure6_s_instance(),
        )
        migrated = result.artifacts["database"]
        assert migrated.cardinality("NamesP") == 3
        assert migrated.cardinality("Local") == 2
        assert migrated.cardinality("Foreign") == 1
        composed = result.artifacts["mapping"]
        assert composed.target.name == "Sprime"
        assert "composed" in result.describe()

    def test_evolve_view_script_finds_new_parts(self):
        # Evolve S′ further: Foreign gains a Visa column.
        s_prime = paper.figure6_s_prime_schema()
        from repro.metamodel import Attribute

        s_prime.entity("Foreign").add_attribute(
            Attribute("Visa", STRING, nullable=True)
        )
        map_s_sprime = Mapping(
            paper.figure6_s_schema(), s_prime,
            paper.figure6_map_s_sprime().constraints, name="mapS-Sprime",
        )
        result = evolve_view_script(
            paper.figure6_view_schema(), paper.figure6_map_v_s(), map_s_sprime
        )
        assert "Foreign.Visa" in result.artifacts["diff"].participating
        merged = result.artifacts["merged"].schema
        assert "Students" in merged.entities
        assert "Foreign" in merged.entities  # the new part joined the view


class TestEtl:
    def test_pipeline_with_cleaning_and_batches(self):
        source_schema = (
            SchemaBuilder("Raw").entity("Sales", key=["sid"])
            .attribute("sid", INT).attribute("amount", INT)
            .attribute("region", STRING)
            .build()
        )
        warehouse = (
            SchemaBuilder("Wh").entity("Facts", key=["sid"])
            .attribute("sid", INT).attribute("amount", INT)
            .attribute("region", STRING)
            .build()
        )
        mapping = Mapping(source_schema, warehouse, [
            parse_tgd("Sales(sid=s, amount=a, region=r) -> "
                      "Facts(sid=s, amount=a, region=r)")
        ])

        def drop_negative(relation, row):
            return None if row.get("amount", 0) < 0 else row

        pipeline = EtlPipeline("sales").add_step(mapping, cleaner=drop_negative)
        source = Instance(source_schema)
        for i in range(10):
            source.add("Sales", sid=i, amount=(i - 2) * 10, region="EU")
        result, stats = pipeline.run(source, batch_size=4)
        assert result.cardinality("Facts") == 8  # two negatives dropped
        batch_stats = [s for s in stats if "rows_in" in s]
        assert len(batch_stats) == 3  # 10 rows in batches of 4
        assert stats[-1]["violations"] == 0

    def test_two_step_pipeline(self):
        a = SchemaBuilder("A").entity("R", key=["k"]).attribute("k", INT).build()
        b = SchemaBuilder("B").entity("S", key=["k"]).attribute("k", INT).build()
        c = SchemaBuilder("C").entity("T", key=["k"]).attribute("k", INT).build()
        pipeline = (
            EtlPipeline()
            .add_step(Mapping(a, b, [parse_tgd("R(k=x) -> S(k=x)")]))
            .add_step(Mapping(b, c, [parse_tgd("S(k=x) -> T(k=x)")]))
        )
        source = Instance(a)
        source.add("R", k=1)
        result, _ = pipeline.run(source)
        assert result.rows("T") == [{"k": 1}]


class TestWrapper:
    def test_generate_from_inheritance_mapping(self):
        generator = WrapperGenerator()
        wrapper, source_code = generator.generate_from_mapping(
            paper.figure2_mapping(), paper.figure2_sql_instance()
        )
        assert "class Customer(Person):" in source_code
        assert len(wrapper.all("Person")) == 5
        assert len(wrapper.all("Employee")) == 2
        bob = wrapper.get("Employee", Id=2)
        assert bob["Dept"] == "Sales"

    def test_wrapper_insert_propagates_to_tables(self):
        generator = WrapperGenerator()
        wrapper, _ = generator.generate_from_mapping(
            paper.figure2_mapping(), paper.figure2_sql_instance()
        )
        wrapper.insert("Employee", Id=9, Name="New", Dept="Ops")
        assert any(r["Id"] == 9 for r in wrapper.database.rows("Empl"))
        assert any(r["Id"] == 9 for r in wrapper.database.rows("HR"))
        assert wrapper.get("Employee", Id=9) is not None

    def test_wrapper_delete(self):
        generator = WrapperGenerator()
        wrapper, _ = generator.generate_from_mapping(
            paper.figure2_mapping(), paper.figure2_sql_instance()
        )
        wrapper.delete("Employee", Id=2)
        assert all(r["Id"] != 2 for r in wrapper.database.rows("Empl"))
        assert all(r["Id"] != 2 for r in wrapper.database.rows("HR"))

    def test_generate_from_flat_schema(self):
        schema = paper.figure4_source_schema()
        db = paper.figure4_source_instance()
        wrapper, source_code = WrapperGenerator().generate(schema, db)
        assert "class Empl:" in source_code
        assert len(wrapper.all("Empl")) == 2


class TestMediator:
    def test_union_across_sources(self):
        global_schema = (
            SchemaBuilder("Global").entity("People", key=["id"])
            .attribute("id", INT).attribute("name", STRING).build()
        )
        s1 = SchemaBuilder("S1").entity("Emp", key=["id"]).attribute("id", INT) \
            .attribute("name", STRING).build()
        s2 = SchemaBuilder("S2").entity("Cust", key=["id"]) \
            .attribute("id", INT).attribute("name", STRING).build()
        m1 = Mapping(s1, global_schema,
                     [parse_tgd("Emp(id=i, name=n) -> People(id=i, name=n)")])
        m2 = Mapping(s2, global_schema,
                     [parse_tgd("Cust(id=i, name=n) -> People(id=i, name=n)")])
        d1 = Instance()
        d1.add("Emp", id=1, name="Ann")
        d2 = Instance()
        d2.add("Cust", id=2, name="Bob")
        d2.add("Cust", id=1, name="Ann")  # overlap
        mediator = QueryMediator(global_schema)
        mediator.add_source("hr", m1, d1)
        mediator.add_source("crm", m2, d2)
        rows = mediator.answer(project_names(Scan("People"), ["id", "name"]))
        assert {(r["id"], r["name"]) for r in rows} == {(1, "Ann"), (2, "Bob")}

    def test_selection_pushes_through(self):
        global_schema = (
            SchemaBuilder("G2").entity("People", key=["id"])
            .attribute("id", INT).attribute("name", STRING).build()
        )
        s1 = SchemaBuilder("S1b").entity("Emp", key=["id"]).attribute("id", INT) \
            .attribute("name", STRING).build()
        mapping = Mapping(
            s1, global_schema,
            [parse_tgd("Emp(id=i, name=n) -> People(id=i, name=n)")],
        )
        data = Instance()
        data.add("Emp", id=1, name="Ann")
        data.add("Emp", id=5, name="Eve")
        mediator = QueryMediator(global_schema)
        mediator.add_source("hr", mapping, data)
        rows = mediator.answer(
            Select(Scan("People"), gt(Col("id"), 3))
        )
        assert [r["id"] for r in rows] == [5]


class TestMessageMapper:
    def test_translate_nested_messages(self):
        source_schema = (
            SchemaBuilder("PO", metamodel="nested")
            .entity("PurchaseOrder", key=["po"]).attribute("po", INT)
            .attribute("buyer", STRING)
            .entity("Item", key=["sku"]).attribute("sku", STRING)
            .attribute("qty", INT)
            .containment("PurchaseOrder", "Item", name="items")
            .build()
        )
        target_schema = (
            SchemaBuilder("Inv", metamodel="nested")
            .entity("Invoice", key=["inv"]).attribute("inv", INT)
            .attribute("customer", STRING)
            .entity("Line", key=["code"]).attribute("code", STRING)
            .attribute("count", INT)
            .containment("Invoice", "Line", name="lines")
            .build()
        )
        mapping = Mapping(source_schema, target_schema, [
            parse_tgd("PurchaseOrder(po=p, buyer=b) -> "
                      "Invoice(inv=p, customer=b)"),
            parse_tgd(
                "Item(sku=s, qty=q, PurchaseOrder_po=p) -> "
                "Line(code=s, count=q, Invoice_inv=p)"
            ),
        ])
        # The flattened Item carries PurchaseOrder_po; Line must carry
        # Invoice_inv for re-nesting — declare it.
        from repro.metamodel import Attribute

        source_schema.entity("Item").add_attribute(
            Attribute("PurchaseOrder_po", INT)
        )
        target_schema.entity("Line").add_attribute(
            Attribute("Invoice_inv", INT)
        )
        mapper = MessageMapper(
            source_schema, "PurchaseOrder", target_schema, "Invoice", mapping
        )
        messages = [
            {"po": 7, "buyer": "ACME",
             "items": [{"sku": "a1", "qty": 3}, {"sku": "b2", "qty": 1}]},
        ]
        translated = mapper.translate(messages)
        assert translated[0]["inv"] == 7
        assert translated[0]["customer"] == "ACME"
        lines = {(l["code"], l["count"]) for l in translated[0]["lines"]}
        assert lines == {("a1", 3), ("b2", 1)}


class TestReportWriter:
    def test_text_report_through_mapping(self):
        writer = ReportWriter(
            paper.figure2_mapping(), paper.figure2_sql_instance()
        )
        spec = ReportSpec(
            entity="Employee",
            columns=["Id", "Name", "Dept"],
            title="Employees",
            typed=True,
            order_by=["Id"],
        )
        text = writer.render_text(spec)
        assert "Employees" in text
        assert "Bob" in text and "Sales" in text
        assert "(2 rows)" in text

    def test_aggregated_report(self):
        writer = ReportWriter(
            paper.figure2_mapping(), paper.figure2_sql_instance()
        )
        spec = ReportSpec(
            entity="Customer",
            columns=[],
            typed=True,
            aggregations=[("customers", "count", None),
                          ("avg_score", "avg", "CreditScore")],
        )
        rows = writer.rows(spec)
        assert rows[0]["customers"] == 2
        assert rows[0]["avg_score"] == 675.0

    def test_csv(self):
        writer = ReportWriter(
            paper.figure2_mapping(), paper.figure2_sql_instance()
        )
        spec = ReportSpec(entity="Person", columns=["Id", "Name"], typed=True,
                          order_by=["Id"])
        csv = writer.render_csv(spec)
        assert csv.splitlines()[0] == "Id,Name"
        assert len(csv.splitlines()) == 6
