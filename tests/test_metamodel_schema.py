"""Unit tests for schema elements, builder, and constraints."""

import pytest

from repro.errors import SchemaError
from repro.metamodel import (
    Attribute,
    Cardinality,
    Entity,
    INT,
    KeyConstraint,
    InclusionDependency,
    STRING,
    Schema,
    SchemaBuilder,
)


def person_hierarchy() -> Schema:
    """The paper's Figure 2 ER schema: Person <- Employee, Customer."""
    return (
        SchemaBuilder("ERS", metamodel="er")
        .entity("Person", key=["Id"])
        .attribute("Id", INT)
        .attribute("Name", STRING)
        .entity("Employee", parent="Person")
        .attribute("Dept", STRING)
        .entity("Customer", parent="Person")
        .attribute("CreditScore", INT)
        .attribute("BillingAddr", STRING)
        .disjoint("Employee", "Customer")
        .build()
    )


class TestBuilder:
    def test_builds_entities_and_attributes(self):
        schema = person_hierarchy()
        assert set(schema.entities) == {"Person", "Employee", "Customer"}
        assert schema.entity("Person").own_attribute_names() == ("Id", "Name")

    def test_parent_resolution(self):
        schema = person_hierarchy()
        assert schema.entity("Employee").parent is schema.entity("Person")

    def test_key_constraint_registered(self):
        schema = person_hierarchy()
        keys = schema.keys_of("Person")
        assert keys == [KeyConstraint("Person", ("Id",), is_primary=True)]

    def test_forward_parent_reference(self):
        schema = (
            SchemaBuilder("S")
            .entity("Child", parent="Root")
            .attribute("X", INT)
            .entity("Root", key=["Id"])
            .attribute("Id", INT)
            .build()
        )
        assert schema.entity("Child").parent.name == "Root"

    def test_duplicate_entity_rejected(self):
        builder = SchemaBuilder("S").entity("A")
        with pytest.raises(SchemaError):
            builder.entity("A")

    def test_duplicate_attribute_rejected(self):
        builder = SchemaBuilder("S").entity("A").attribute("x", INT)
        with pytest.raises(SchemaError):
            builder.attribute("x", STRING)

    def test_dangling_key_rejected(self):
        builder = SchemaBuilder("S").entity("A", key=["missing"]).attribute("x", INT)
        with pytest.raises(SchemaError):
            builder.build()

    def test_inheritance_cycle_rejected(self):
        builder = (
            SchemaBuilder("S")
            .entity("A", parent="B").attribute("x", INT)
            .entity("B", parent="A").attribute("y", INT)
        )
        with pytest.raises(SchemaError):
            builder.build()

    def test_metamodel_conformance(self):
        builder = (
            SchemaBuilder("R", metamodel="relational")
            .entity("Sub", parent="Base").attribute("x", INT)
            .entity("Base", key=["Id"]).attribute("Id", INT)
        )
        with pytest.raises(SchemaError):
            builder.build()  # relational metamodel has no generalization


class TestHierarchy:
    def test_ancestry(self):
        schema = person_hierarchy()
        names = [e.name for e in schema.entity("Employee").ancestry()]
        assert names == ["Employee", "Person"]

    def test_inherited_attributes(self):
        schema = person_hierarchy()
        assert schema.entity("Customer").all_attribute_names() == (
            "Id", "Name", "CreditScore", "BillingAddr",
        )

    def test_subtype_test(self):
        schema = person_hierarchy()
        assert schema.entity("Employee").is_subtype_of(schema.entity("Person"))
        assert not schema.entity("Person").is_subtype_of(schema.entity("Employee"))
        assert schema.entity("Person").is_subtype_of(schema.entity("Person"))

    def test_descendants(self):
        schema = person_hierarchy()
        names = {e.name for e in schema.entity("Person").descendants()}
        assert names == {"Employee", "Customer"}

    def test_key_attributes_come_from_root(self):
        schema = person_hierarchy()
        attrs = schema.entity("Customer").key_attributes()
        assert [a.name for a in attrs] == ["Id"]


class TestResolution:
    def test_resolve_entity(self):
        schema = person_hierarchy()
        assert schema.resolve("Person").name == "Person"

    def test_resolve_attribute(self):
        schema = person_hierarchy()
        attr = schema.resolve("Employee.Dept")
        assert isinstance(attr, Attribute)
        assert attr.path == "Employee.Dept"

    def test_resolve_inherited_attribute(self):
        schema = person_hierarchy()
        assert schema.resolve("Employee.Name").name == "Name"

    def test_unknown_raises(self):
        schema = person_hierarchy()
        with pytest.raises(SchemaError):
            schema.resolve("Nope")
        with pytest.raises(SchemaError):
            schema.resolve("Person.Nope")

    def test_contains(self):
        schema = person_hierarchy()
        assert "Person.Name" in schema
        assert "Person.Zip" not in schema

    def test_all_element_paths(self):
        schema = person_hierarchy()
        paths = {str(p) for p in schema.all_element_paths()}
        assert "ERS::Person" in paths
        assert "ERS::Customer.CreditScore" in paths


class TestClone:
    def test_clone_is_deep(self):
        schema = person_hierarchy()
        copy = schema.clone("ERS2")
        copy.entity("Person").add_attribute(Attribute("Extra", INT))
        assert not schema.entity("Person").has_attribute("Extra")
        assert copy.name == "ERS2"

    def test_clone_preserves_hierarchy(self):
        copy = person_hierarchy().clone()
        assert copy.entity("Employee").parent is copy.entity("Person")

    def test_clone_preserves_constraints(self):
        schema = person_hierarchy()
        assert schema.clone().constraints == schema.constraints


class TestAssociationsAndContainment:
    def test_association(self):
        schema = (
            SchemaBuilder("S", metamodel="er")
            .entity("A", key=["Id"]).attribute("Id", INT)
            .entity("B", key=["Id"]).attribute("Id", INT)
            .association("AB", "A", "B",
                         source_cardinality=Cardinality(0, None),
                         target_cardinality=Cardinality(0, None))
            .build()
        )
        assoc = schema.associations["AB"]
        assert assoc.is_many_to_many

    def test_containment(self):
        schema = (
            SchemaBuilder("S", metamodel="nested")
            .entity("Order", key=["Id"]).attribute("Id", INT)
            .entity("Line").attribute("Qty", INT)
            .containment("Order", "Line")
            .build()
        )
        cont = schema.containments["Order_Line"]
        assert cont.parent.name == "Order"
        assert cont.cardinality.is_many

    def test_describe_mentions_everything(self):
        schema = person_hierarchy()
        text = schema.describe()
        assert "Person" in text and "is-a Person" in text and "disjoint" in text
