"""Tests for ModelGen (metamodel translation + inheritance strategies)
and TransGen (query/update views, Figure 3, roundtripping)."""

import pytest

from repro.errors import RoundTripError
from repro.instances import Instance, InstanceGenerator, violations
from repro.mappings import Mapping
from repro.metamodel import INT, STRING, Cardinality, SchemaBuilder
from repro.operators import InheritanceStrategy, modelgen, transgen
from repro.operators.transgen import (
    AlgebraTransformation,
    ExchangeTransformation,
    TransformationPair,
)
from repro.workloads import paper, synthetic
from tests.test_metamodel_schema import person_hierarchy


class TestModelGenInheritance:
    def test_tpt_tables(self):
        result = modelgen(person_hierarchy(), "relational",
                          InheritanceStrategy.TPT)
        assert set(result.schema.entities) == {"Person", "Employee", "Customer"}
        employee = result.schema.entity("Employee")
        assert set(employee.own_attribute_names()) == {"Id", "Dept"}
        assert result.schema.metamodel == "relational"
        result.schema.check_metamodel()

    def test_tpt_foreign_keys(self):
        result = modelgen(person_hierarchy(), "relational",
                          InheritanceStrategy.TPT)
        fks = result.schema.inclusion_dependencies()
        assert any(f.source == "Employee" and f.target == "Person" for f in fks)

    def test_tph_single_table(self):
        result = modelgen(person_hierarchy(), "relational",
                          InheritanceStrategy.TPH)
        assert set(result.schema.entities) == {"Person_all"}
        table = result.schema.entity("Person_all")
        assert table.has_attribute("Person_type")
        assert table.has_attribute("Dept") and table.has_attribute("CreditScore")
        assert table.attribute("Dept").nullable  # subtype attrs nullable

    def test_tpc_concrete_tables(self):
        result = modelgen(person_hierarchy(), "relational",
                          InheritanceStrategy.TPC)
        assert set(result.schema.entities) == {
            "Person_c", "Employee_c", "Customer_c",
        }
        employee = result.schema.entity("Employee_c")
        # TPC tables carry inherited attributes too.
        assert set(employee.own_attribute_names()) == {"Id", "Name", "Dept"}

    def test_constraint_counts(self):
        for strategy, expected in [
            (InheritanceStrategy.TPT, 3),
            (InheritanceStrategy.TPH, 3),
            (InheritanceStrategy.TPC, 3),
        ]:
            result = modelgen(person_hierarchy(), "relational", strategy)
            assert len(result.mapping.equalities) == expected

    def test_mapping_orientation(self):
        result = modelgen(person_hierarchy(), "relational")
        assert result.mapping.source.name == result.schema.name
        assert result.mapping.target.name == "ERS"


class TestModelGenOtherConstructs:
    def test_association_to_join_table(self):
        schema = (
            SchemaBuilder("Uni", metamodel="er")
            .entity("Student", key=["sid"]).attribute("sid", INT)
            .entity("Course", key=["cid"]).attribute("cid", INT)
            .association("Enrolled", "Student", "Course")
            .build()
        )
        result = modelgen(schema, "relational")
        table = result.schema.entity("Enrolled")
        assert set(table.own_attribute_names()) == {"Student_sid", "Course_cid"}
        fks = result.schema.inclusion_dependencies()
        assert any(f.source == "Enrolled" and f.target == "Student" for f in fks)
        result.schema.check_metamodel()

    def test_containment_flattened(self):
        schema = (
            SchemaBuilder("Orders", metamodel="nested")
            .entity("Order", key=["oid"]).attribute("oid", INT)
            .entity("Line", key=["lid"]).attribute("lid", INT)
            .attribute("qty", INT)
            .containment("Order", "Line")
            .build()
        )
        result = modelgen(schema, "relational")
        line = result.schema.entity("Line")
        assert line.has_attribute("Order_oid")
        fks = result.schema.inclusion_dependencies()
        assert any(f.source == "Line" and f.target == "Order" for f in fks)

    def test_reference_to_fk(self):
        schema = (
            SchemaBuilder("App", metamodel="oo")
            .entity("User", key=["uid"]).attribute("uid", INT)
            .entity("Post", key=["pid"]).attribute("pid", INT)
            .reference("Post", "author", "User")
            .build()
        )
        result = modelgen(schema, "relational")
        post = result.schema.entity("Post")
        assert post.has_attribute("author_uid")

    def test_relational_to_oo_enrichment(self):
        schema = paper.figure4_source_schema()
        result = modelgen(schema, "oo")
        assert result.schema.metamodel == "oo"
        assert any(
            r.target.name == "Addr" for r in result.schema.references.values()
        )

    def test_relational_to_er_enrichment(self):
        result = modelgen(paper.figure4_source_schema(), "er")
        assert result.schema.associations
        result.schema.check_metamodel()

    def test_relational_to_nested(self):
        result = modelgen(paper.figure4_source_schema(), "nested")
        assert result.schema.containments
        result.schema.check_metamodel()


def _er_sample() -> Instance:
    db = Instance(person_hierarchy())
    db.insert_object("Person", Id=1, Name="Ann")
    db.insert_object("Employee", Id=2, Name="Bob", Dept="Sales")
    db.insert_object("Customer", Id=3, Name="Cat", CreditScore=700,
                     BillingAddr="x")
    return db


class TestTransGenViews:
    @pytest.mark.parametrize("strategy", list(InheritanceStrategy))
    def test_roundtrip_all_strategies(self, strategy):
        result = modelgen(person_hierarchy(), "relational", strategy)
        views = transgen(result.mapping)
        assert isinstance(views, TransformationPair)
        views.verify_roundtrip(_er_sample())

    @pytest.mark.parametrize("strategy", list(InheritanceStrategy))
    def test_generated_tables_satisfy_mapping(self, strategy):
        result = modelgen(person_hierarchy(), "relational", strategy)
        views = transgen(result.mapping)
        assert views.verify_constraints(_er_sample())

    def test_tpt_table_contents(self):
        result = modelgen(person_hierarchy(), "relational",
                          InheritanceStrategy.TPT)
        views = transgen(result.mapping)
        tables = views.update_view.apply(_er_sample())
        # Person table holds everyone (TPT root), Employee only Bob.
        assert {r["Id"] for r in tables.rows("Person")} == {1, 2, 3}
        assert {r["Id"] for r in tables.rows("Employee")} == {2}
        assert {r["Id"] for r in tables.rows("Customer")} == {3}

    def test_tph_table_contents(self):
        result = modelgen(person_hierarchy(), "relational",
                          InheritanceStrategy.TPH)
        views = transgen(result.mapping)
        tables = views.update_view.apply(_er_sample())
        rows = {r["Id"]: r for r in tables.rows("Person_all")}
        assert rows[2]["Person_type"] == "Employee"
        assert rows[2]["Dept"] == "Sales"
        assert rows[1]["Dept"] is None

    def test_query_view_reconstructs_types(self):
        result = modelgen(person_hierarchy(), "relational",
                          InheritanceStrategy.TPT)
        views = transgen(result.mapping)
        tables = views.update_view.apply(_er_sample())
        entities = views.query_view.apply(tables)
        by_id = {r["Id"]: r["$type"] for r in entities.rows("Person")}
        assert by_id == {1: "Person", 2: "Employee", 3: "Customer"}

    def test_figure2_paper_mapping_roundtrips(self):
        """The paper's own Figure 2 constraints → Figure 3-equivalent
        query view: evaluating it on the paper's table data must yield
        the paper's entity data."""
        mapping = paper.figure2_mapping()
        views = transgen(mapping)
        produced = views.query_view.apply(paper.figure2_sql_instance())
        assert produced.set_equal(paper.figure2_er_instance())

    def test_figure2_update_view(self):
        mapping = paper.figure2_mapping()
        views = transgen(mapping)
        tables = views.update_view.apply(paper.figure2_er_instance())
        assert tables.set_equal(paper.figure2_sql_instance())

    def test_figure2_roundtrip(self):
        views = transgen(paper.figure2_mapping())
        views.verify_roundtrip(paper.figure2_er_instance())

    def test_roundtrip_failure_detected(self):
        """Deliberately lossy views must be flagged."""
        mapping = paper.figure2_mapping()
        views = transgen(mapping)
        from repro.algebra import Scan, project_names

        broken = TransformationPair(
            query_view=views.query_view,
            update_view=AlgebraTransformation(
                [("HR", project_names(Scan("HR"), ["Id", "Name"]))],
                input_schema=mapping.target,
                output_schema=mapping.source,
            ),
            mapping=mapping,
        )
        with pytest.raises(RoundTripError):
            broken.verify_roundtrip(paper.figure2_er_instance())

    def test_roundtrip_scales_with_hierarchy(self):
        schema = synthetic.inheritance_schema("Deep", depth=2, branching=2)
        for strategy in InheritanceStrategy:
            result = modelgen(schema, "relational", strategy)
            views = transgen(result.mapping)
            db = InstanceGenerator(schema, seed=5).generate(30)
            views.verify_roundtrip(db)

    def test_query_view_sql_rendering(self):
        """The generated view renders to SQL (the Figure 3 deliverable)."""
        from repro.algebra import to_sql

        result = modelgen(person_hierarchy(), "relational",
                          InheritanceStrategy.TPT)
        views = transgen(result.mapping)
        _, expr = views.query_view.rules[0]
        sql = to_sql(expr)
        assert "UNION ALL" in sql and "JOIN" in sql


class TestTransGenExchange:
    def test_st_tgd_exchange(self):
        source, target, tgds = synthetic.exchange_tgds(relations=2,
                                                       existential_fraction=0.5,
                                                       seed=1)
        mapping = Mapping(source, target, tgds)
        transformation = transgen(mapping)
        assert isinstance(transformation, ExchangeTransformation)
        db = InstanceGenerator(source, seed=2).generate(10)
        result = transformation.apply(db)
        assert result.cardinality("T0") == 10
        assert result.cardinality("T1") == 10

    def test_exchange_core_minimization(self):
        from repro.logic import parse_tgd

        source = (
            SchemaBuilder("S2").entity("S", key=["a"]).attribute("a", INT)
            .build()
        )
        target = (
            SchemaBuilder("T2").entity("T", key=["a"])
            .attribute("a", INT).attribute("b", INT, nullable=True).build()
        )
        mapping = Mapping(source, target, [
            parse_tgd("S(a=x) -> T(a=x, b=y)"),
            parse_tgd("S(a=x) -> T(a=x, b=0)"),
        ])
        db = Instance()
        db.add("S", a=1)
        plain = transgen(mapping).apply(db)
        minimal = transgen(mapping, compute_core=True).apply(db)
        assert minimal.cardinality("T") < plain.cardinality("T")
        assert not minimal.nulls()
