"""Cost-based join ordering, the adaptive plan cache, and the
estimator gaps they lean on (ISSUE 8).

Covers the cost model and DP/greedy enumeration, the commute-safety
bails, randomized star/chain/cycle join graphs cross-checked against
the heuristic plans on all three engines, the stats-epoch and
divergence re-optimization lifecycle, and the BENCH floor judging used
by the optimizer benchmark.
"""

import random

import pytest

import repro.observability as obs
from repro.algebra import (
    Scan,
    Select,
    clear_plan_cache,
    eq,
    evaluate,
    explain,
    gt,
    optimize,
    project_names,
    Col,
    Distinct,
    GLOBAL_VECTOR_PLAN_CACHE,
)
from repro.algebra import expressions as E
from repro.algebra.estimate import Estimator, estimate_expr
from repro.algebra.optimizer import (
    COST,
    mirror_join_fingerprint,
    optimize_with_report,
    plan_cost,
)
from repro.algebra.plan_cache import PlanCache
from repro.instances import Instance
from repro.observability.benchdiff import diff_payloads
from repro.observability.querylog import QUERY_LOG


@pytest.fixture(autouse=True)
def _reset_cost_config():
    """Tests toggle COST knobs; never leak them across tests."""
    saved = {name: getattr(COST, name) for name in COST.__slots__}
    clear_plan_cache()
    yield
    for name, value in saved.items():
        setattr(COST, name, value)
    clear_plan_cache()


def _canon(rows):
    return sorted(
        tuple(sorted((k, repr(v)) for k, v in row.items())) for row in rows
    )


def _skewed_chain(n=600):
    """A ⋈j B fat (many-many), A ⋈k C selective; written fat-first."""
    keys = max(n // 30, 1)
    db = Instance()
    db.insert_all("A", [{"j": i % keys, "k": i, "va": i} for i in range(n)])
    db.insert_all("B", [{"j": i % keys, "vb": i} for i in range(n)])
    db.insert_all("C", [{"k": i * 7, "vc": i} for i in range(max(n // 60, 2))])
    query = E.Join(
        E.Join(Scan("A"), Scan("B"), E._JoinEq("j", "j")),
        Scan("C"),
        E._JoinEq("k", "k"),
    )
    return db, query


class TestCostModel:
    def test_fat_join_costs_more(self):
        db, query = _skewed_chain()
        est = Estimator(db)
        fat_first = plan_cost(query, est)
        good = E.Join(
            E.Join(Scan("A"), Scan("C"), E._JoinEq("k", "k")),
            Scan("B"),
            E._JoinEq("j", "j"),
        )
        assert plan_cost(good, est) < fat_first

    def test_semi_join_shape_cheaper_than_widening_join(self):
        db, _ = _skewed_chain()
        est = Estimator(db)
        semi = E.Join(
            Scan("A"),
            Distinct(project_names(Scan("B"), ["j"])),
            E._JoinEq("j", "j"),
        )
        widening = E.Join(
            Scan("A"),
            project_names(Scan("B"), ["j"]),
            E._JoinEq("j", "j"),
        )
        assert plan_cost(semi, est) < plan_cost(widening, est)

    def test_cross_join_priced_worse_than_keyed(self):
        db, _ = _skewed_chain()
        est = Estimator(db)
        keyed = E.Join(Scan("A"), Scan("B"), E._JoinEq("j", "j"))
        cross = E.Join(Scan("A"), Scan("B"))
        assert plan_cost(keyed, est) < plan_cost(cross, est)


class TestReorder:
    def test_skewed_chain_reordered_and_equivalent(self):
        db, query = _skewed_chain()
        report = optimize_with_report(query, db)
        assert report.reordered
        assert report.chosen_cost < report.heuristic_cost
        assert _canon(evaluate(report.chosen, db)) == _canon(
            evaluate(query, db)
        )

    def test_chosen_tree_joins_selective_leaf_first(self):
        db, query = _skewed_chain()
        chosen = optimize_with_report(query, db).chosen

        def leaf_sets(node):
            if isinstance(node, E.Scan):
                return {node.relation}
            found = set()
            for child in node.inputs():
                found |= leaf_sets(child)
            if isinstance(node, E.Join):
                joins.append(found)
            return found

        joins: list[set] = []
        leaf_sets(chosen)
        # The selective C leaf joins before the fat B leaf: some join
        # covers exactly {A, C}.
        assert {"A", "C"} in joins

    def test_disabled_keeps_heuristic(self):
        db, query = _skewed_chain()
        COST.enabled = False
        assert optimize(query, instance=db) == optimize(query)

    def test_outer_join_bails(self):
        db, query = _skewed_chain()
        outer = E.Join(
            E.Join(Scan("A"), Scan("B"), E._JoinEq("j", "j"), "left"),
            Scan("C"),
            E._JoinEq("k", "k"),
        )
        report = optimize_with_report(outer, db)
        assert not report.reordered

    def test_prefixed_join_bails(self):
        db, query = _skewed_chain()
        prefixed = E.Join(
            E.Join(Scan("A"), Scan("B"), E._JoinEq("j", "j"), "inner", "b."),
            Scan("C"),
            E._JoinEq("k", "k"),
        )
        assert not optimize_with_report(prefixed, db).reordered

    def test_theta_join_region_not_flattened(self):
        db, _ = _skewed_chain()
        theta = E.Join(
            E.Join(Scan("A"), Scan("B"), gt(Col("va"), Col("vb"))),
            Scan("C"),
            E._JoinEq("k", "k"),
        )
        assert not optimize_with_report(theta, db).reordered

    def test_unconstrained_shared_column_bails(self):
        """A and B both carry ``x`` but only ``j`` is joined: reordering
        could flip which ``x`` the left-wins merge keeps, so the region
        must stay in its written order."""
        db = Instance()
        db.insert_all("X1", [{"j": i % 3, "x": i} for i in range(30)])
        db.insert_all("X2", [{"j": i % 3, "x": -i} for i in range(30)])
        db.insert_all("X3", [{"j": i % 3, "y": i} for i in range(4)])
        query = E.Join(
            E.Join(Scan("X1"), Scan("X2"), E._JoinEq("j", "j")),
            Scan("X3"),
            E._JoinEq("j", "j"),
        )
        assert not optimize_with_report(query, db).reordered


class TestMirrorFingerprint:
    def test_mirror_matches_flipped_join(self):
        join = E.Join(Scan("A"), Scan("B"), E._JoinEq("j", "k"))
        flipped = E.Join(Scan("B"), Scan("A"), E._JoinEq("k", "j"))
        assert mirror_join_fingerprint(join) == flipped.fingerprint()

    def test_no_mirror_for_outer_or_theta(self):
        assert (
            mirror_join_fingerprint(
                E.Join(Scan("A"), Scan("B"), E._JoinEq("j", "j"), "left")
            )
            is None
        )
        assert (
            mirror_join_fingerprint(
                E.Join(Scan("A"), Scan("B"), gt(Col("a"), Col("b")))
            )
            is None
        )
        assert mirror_join_fingerprint(Scan("A")) is None


class TestEstimatorGaps:
    def test_sort_is_cardinality_passthrough(self):
        db, _ = _skewed_chain(200)
        scan = Scan("A")
        assert estimate_expr(E.Sort(scan, ["k"]), db) == estimate_expr(
            scan, db
        )

    def test_aggregate_capped_by_group_key_distincts(self):
        db = Instance()
        db.insert_all("G", [{"g": i % 5, "v": i} for i in range(400)])
        agg = E.Aggregate(Scan("G"), ["g"], [("n", "count", None)])
        est = estimate_expr(agg, db)
        assert est <= 5

    def test_ungrouped_aggregate_is_one_row(self):
        db = Instance()
        db.insert_all("G", [{"g": i} for i in range(50)])
        agg = E.Aggregate(Scan("G"), [], [("n", "count", None)])
        assert estimate_expr(agg, db) == 1.0

    def test_corrections_override_and_propagate(self):
        db, _ = _skewed_chain(200)
        join = E.Join(Scan("A"), Scan("B"), E._JoinEq("j", "j"))
        plain = Estimator(db)
        base = plain.rows(join)
        corrected = Estimator(
            db, corrections={join.fingerprint(): base * 10}
        )
        assert corrected.rows(join) == base * 10
        # ...and a parent above the corrected subtree sees the actuals.
        parent = Select(join, eq(Col("va"), 1))
        assert Estimator(
            db, corrections={join.fingerprint(): base * 10}
        ).rows(parent) > plain.rows(parent)


def _random_graph(shape: str, n: int, skewed: bool, rng: random.Random):
    """Build ``n`` relations joined as a chain/star/cycle with shared
    column names, plus the written left-deep query over them."""
    db = Instance()

    def value(dom):
        if skewed:
            return int((rng.random() ** 3) * dom)
        return rng.randrange(dom)

    if shape == "star":
        # Sized so skewed fan-out stays bounded: expected join
        # multiplier per dimension is rows_dim x sum(p_v^2) ~ 2.
        rows = [
            {f"k{d}": value(6) for d in range(1, n)} | {"f": i}
            for i in range(30)
        ]
        db.insert_all("F", rows)
        query: E.RelExpr = Scan("F")
        for d in range(1, n):
            db.insert_all(
                f"D{d}",
                [{f"k{d}": value(6), f"p{d}": i} for i in range(6)],
            )
            query = E.Join(
                query, Scan(f"D{d}"), E._JoinEq(f"k{d}", f"k{d}")
            )
        return db, query

    # chain / cycle: R_i carries k_i and k_{i+1}; the cycle closes the
    # loop with a second atom on the final join.
    for i in range(n):
        cols = [f"k{i}", f"k{(i + 1) % n}" if shape == "cycle" or i + 1 < n
                else f"k{i + 1}"]
        db.insert_all(
            f"R{i}",
            [{cols[0]: value(6), cols[1]: value(6), f"v{i}": r}
             for r in range(10)],
        )
    query = Scan("R0")
    for i in range(1, n):
        key = f"k{i}"
        atoms = [E._JoinEq(key, key)]
        if shape == "cycle" and i == n - 1:
            atoms.append(E._JoinEq("k0", "k0"))
        predicate = atoms[0] if len(atoms) == 1 else __import__(
            "repro.algebra.scalars", fromlist=["And"]
        ).And(*atoms)
        query = E.Join(query, Scan(f"R{i}"), predicate)
    return db, query


class TestRandomizedJoinGraphs:
    @pytest.mark.parametrize("shape", ["chain", "star", "cycle"])
    @pytest.mark.parametrize("skewed", [False, True],
                             ids=["uniform", "skewed"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_cost_based_equals_heuristic_on_all_engines(
        self, shape, skewed, seed
    ):
        rng = random.Random(seed * 31 + hash(shape) % 97)
        n = rng.randrange(5, 8) if shape != "star" else rng.randrange(6, 10)
        db, query = _random_graph(shape, n, skewed, rng)
        report = optimize_with_report(query, db)
        reference = _canon(evaluate(query, db, engine="interpreted"))
        for engine in ("interpreted", "compiled", "vectorized"):
            assert _canon(
                evaluate(report.chosen, db, engine=engine)
            ) == reference, f"{shape}/{engine} diverged"

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_dp_and_greedy_agree_on_small_graphs(self, seed):
        rng = random.Random(seed)
        shape = rng.choice(["chain", "star", "cycle"])
        db, query = _random_graph(shape, 4, True, rng)
        dp_chosen = optimize_with_report(query, db).chosen
        COST.dp_max_leaves = 0  # force the greedy path
        greedy_chosen = optimize_with_report(query, db).chosen
        reference = _canon(evaluate(query, db, engine="interpreted"))
        assert _canon(evaluate(dp_chosen, db)) == reference
        assert _canon(evaluate(greedy_chosen, db)) == reference


class TestAdaptivePlanCache:
    def test_stats_epoch_changes_on_insert(self):
        db, _ = _skewed_chain(60)
        before = db.stats_epoch()
        db.insert("C", {"k": -1, "vc": -1})
        assert db.stats_epoch() != before

    def test_epoch_change_replans_and_counts_eviction(self):
        obs.enable()
        db, query = _skewed_chain(120)
        cache = GLOBAL_VECTOR_PLAN_CACHE
        evaluate(query, db, engine="vectorized")
        baseline = cache.stats()
        evaluate(query, db, engine="vectorized")
        assert cache.stats()["adaptive_hits"] == (
            baseline["adaptive_hits"] + 1
        )
        db.insert("C", {"k": -1, "vc": -1})
        evaluate(query, db, engine="vectorized")
        stats = cache.stats()
        assert stats["adaptive_misses"] == baseline["adaptive_misses"] + 1
        assert stats["evictions_by_reason"]["epoch"] >= 1

    def test_divergence_triggers_reopt_and_querylog_flag(self):
        obs.enable()
        db = Instance()
        n, half = 240, 120
        rows_a = []
        for i in range(n):
            if i < half:
                rows_a.append({"j": 0, "k": 1 + i % 9, "va": i})
            else:
                rows_a.append(
                    {"j": i, "k": 0 if i < half + 24 else 1 + i % 9,
                     "va": i}
                )
        db.insert_all("A", rows_a)
        db.insert_all(
            "B", [{"j": 0 if i < half else i, "vb": i} for i in range(n)]
        )
        db.insert_all(
            "C",
            [{"k": 0 if i < 2 else 1001 + i % 7, "vc": i}
             for i in range(48)],
        )
        query = E.Join(
            E.Join(Scan("A"), Scan("B"), E._JoinEq("j", "j")),
            Scan("C"),
            E._JoinEq("k", "k"),
        )
        first = evaluate(query, db, engine="vectorized")
        second = evaluate(query, db, engine="vectorized")
        assert _canon(first) == _canon(second)
        stats = GLOBAL_VECTOR_PLAN_CACHE.stats()
        assert stats["reopts"] >= 1
        assert stats["evictions_by_reason"]["reopt"] >= 1
        assert any(entry.reopt for entry in QUERY_LOG.entries())
        from repro.observability import registry

        snapshot = registry.snapshot()
        assert snapshot["query.reopt.scheduled"]["value"] >= 1
        assert snapshot["query.reopt.applied"]["value"] >= 1
        assert (
            snapshot["query.plan_cache.evictions.reopt"]["value"] >= 1
        )

    def test_reopts_bounded(self):
        obs.enable()
        db, query = _skewed_chain(120)
        cache = GLOBAL_VECTOR_PLAN_CACHE
        plan, _ = cache.adaptive_lookup(query, db)

        class _FakeProfile:
            def __init__(self, factor):
                self.factor = factor

            def rows_out(self, node_id):
                return node_id * self.factor + 1

        fired = sum(
            bool(cache.note_divergence(query, plan, _FakeProfile(f)))
            for f in range(2, 12)
        )
        assert fired == COST.max_reopts

    def test_lru_eviction_reason_counted(self):
        small = PlanCache(capacity=1)
        small.lookup(Scan("A"))
        small.lookup(Scan("B"))
        assert small.stats()["evictions_by_reason"]["lru"] == 1


class TestExplainCost:
    def test_explain_reports_costs_and_reorder(self):
        db, query = _skewed_chain(120)
        result = explain(query, instance=db)
        assert result.cost is not None
        assert result.heuristic_cost is not None
        assert result.optimized
        assert result.cost < result.heuristic_cost
        rendered = result.render()
        assert "cost=" in rendered and "reordered" in rendered
        assert result.to_dict()["optimized"] is True

    def test_no_opt_shows_heuristic_plan(self):
        db, query = _skewed_chain(120)
        result = explain(query, instance=db, no_opt=True)
        assert not result.optimized
        assert result.cost == result.heuristic_cost
        cost_based = explain(query, instance=db)
        assert result.cost > cost_based.cost


class TestBenchFloorJudging:
    def _payload(self, speedup):
        return {
            "benchmark": "optimizer",
            "format": "harness-v1",
            "results": {},
            "tables": [
                {
                    "title": "t",
                    "headers": ["workload", "speedup"],
                    "rows": [["skewed-chain", f"{speedup:.1f}x"]],
                }
            ],
            "timings_seconds": {},
            "floors": {"skewed-chain/speedup": 2.0},
        }

    def test_below_floor_is_regression(self):
        report = diff_payloads(
            "BENCH_optimizer.json", self._payload(30.0), self._payload(1.4)
        )
        assert len(report.regressions) == 1
        assert "floor" in report.regressions[0].detail

    def test_above_floor_passes_even_when_slower(self):
        report = diff_payloads(
            "BENCH_optimizer.json", self._payload(30.0), self._payload(3.0)
        )
        assert not report.regressions
