"""Unit tests for relational algebra: scalars, evaluation, printing, SQL."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra import (
    Aggregate,
    And,
    Arith,
    Case,
    Col,
    Comparison,
    Difference,
    Distinct,
    EntityScan,
    Extend,
    FALSE,
    Func,
    In,
    IsNull,
    IsOf,
    Join,
    Lit,
    Not,
    Or,
    Project,
    Rename,
    Scan,
    Select,
    Sort,
    TRUE,
    UnionAll,
    Values,
    col,
    eq,
    eq_join,
    evaluate,
    ge,
    gt,
    lit,
    project_names,
    to_sql,
    to_text,
)
from repro.instances import Instance, LabeledNull
from tests.test_metamodel_schema import person_hierarchy


@pytest.fixture
def db():
    instance = Instance()
    instance.insert_all(
        "Empl",
        [
            {"EID": 1, "Name": "Ann", "AID": 10},
            {"EID": 2, "Name": "Bob", "AID": 20},
            {"EID": 3, "Name": "Cat", "AID": None},
        ],
    )
    instance.insert_all(
        "Addr",
        [
            {"AID": 10, "City": "Rome", "Zip": "00100"},
            {"AID": 20, "City": "Oslo", "Zip": "0150"},
            {"AID": 30, "City": "Lima", "Zip": "15001"},
        ],
    )
    return instance


class TestScalars:
    def test_col_and_lit(self, db):
        rows = evaluate(Project(Scan("Empl"), [("n", Col("Name")), ("k", Lit(7))]), db)
        assert rows[0] == {"n": "Ann", "k": 7}

    def test_arithmetic(self, db):
        rows = evaluate(Extend(Scan("Empl"), "Double", Arith("*", Col("EID"), Lit(2))), db)
        assert [r["Double"] for r in rows] == [2, 4, 6]

    def test_arithmetic_null_propagates(self, db):
        rows = evaluate(Extend(Scan("Empl"), "X", Arith("+", Col("AID"), Lit(1))), db)
        assert rows[2]["X"] is None

    def test_func(self, db):
        upper = Func("upper", [Col("Name")], lambda s: s.upper())
        rows = evaluate(Project(Scan("Empl"), [("U", upper)]), db)
        assert rows[0]["U"] == "ANN"

    def test_func_null_propagates(self, db):
        f = Func("inc", [Col("AID")], lambda x: x + 1)
        rows = evaluate(Project(Scan("Empl"), [("x", f)]), db)
        assert rows[2]["x"] is None

    def test_comparison_unknown_filters(self, db):
        rows = evaluate(Select(Scan("Empl"), gt(Col("AID"), 5)), db)
        assert len(rows) == 2  # the None row is unknown, filtered out

    def test_comparison_cross_type(self, db):
        rows = evaluate(Select(Scan("Empl"), eq(Col("Name"), 3)), db)
        assert rows == []

    def test_boolean_connectives(self, db):
        p = And(ge(Col("EID"), 1), Not(Or(eq(Col("Name"), "Bob"), FALSE)))
        rows = evaluate(Select(Scan("Empl"), p), db)
        assert {r["Name"] for r in rows} == {"Ann", "Cat"}

    def test_is_null(self, db):
        rows = evaluate(Select(Scan("Empl"), IsNull(Col("AID"))), db)
        assert [r["Name"] for r in rows] == ["Cat"]
        rows = evaluate(Select(Scan("Empl"), IsNull(Col("AID"), negated=True)), db)
        assert len(rows) == 2

    def test_is_null_true_for_labeled(self):
        db = Instance()
        db.add("R", x=LabeledNull(1))
        assert len(evaluate(Select(Scan("R"), IsNull(Col("x"))), db)) == 1

    def test_in(self, db):
        rows = evaluate(Select(Scan("Empl"), In(Col("Name"), ["Ann", "Cat"])), db)
        assert len(rows) == 2

    def test_case(self, db):
        expr = Project(
            Scan("Empl"),
            [("Band", Case([(eq(Col("EID"), 1), Lit("one"))], Lit("many")))],
        )
        assert [r["Band"] for r in evaluate(expr, db)] == ["one", "many", "many"]

    def test_labeled_null_equality_in_predicates(self):
        db = Instance()
        n = LabeledNull(5)
        db.add("R", x=n, y=n)
        db.add("R", x=LabeledNull(5), y=LabeledNull(6))
        rows = evaluate(Select(Scan("R"), eq(Col("x"), Col("y"))), db)
        assert len(rows) == 1


class TestRelationalOperators:
    def test_scan_copies(self, db):
        rows = evaluate(Scan("Empl"), db)
        rows[0]["EID"] = 99
        assert db.rows("Empl")[0]["EID"] == 1

    def test_values(self, db):
        rows = evaluate(Values([{"a": 1}, {"a": 2}]), db)
        assert len(rows) == 2

    def test_project_duplicate_columns_rejected(self):
        with pytest.raises(Exception):
            Project(Scan("R"), [("a", Col("x")), ("a", Col("y"))])

    def test_inner_join(self, db):
        expr = eq_join(Scan("Empl"), Scan("Addr"), [("AID", "AID")])
        rows = evaluate(expr, db)
        assert len(rows) == 2
        assert {r["City"] for r in rows} == {"Rome", "Oslo"}

    def test_left_join_pads_nulls(self, db):
        expr = eq_join(Scan("Empl"), Scan("Addr"), [("AID", "AID")], kind="left")
        rows = evaluate(expr, db)
        assert len(rows) == 3
        cat = next(r for r in rows if r["Name"] == "Cat")
        assert cat["City"] is None

    def test_join_same_column_names(self, db):
        # both sides have AID; ensure the equality compares correct sides
        expr = eq_join(Scan("Addr"), Scan("Addr"), [("AID", "AID")])
        rows = evaluate(expr, db)
        assert len(rows) == 3

    def test_join_right_prefix(self, db):
        expr = eq_join(
            Scan("Empl"), Scan("Addr"), [("AID", "AID")], right_prefix="a"
        )
        rows = evaluate(expr, db)
        assert all("a.AID" in r for r in rows)

    def test_theta_join(self, db):
        expr = Join(Scan("Empl"), Scan("Addr"), gt(Col("$right.AID"), Col("$left.EID")))
        rows = evaluate(expr, db)
        assert len(rows) == 9  # every AID (10,20,30) > every EID (1,2,3)

    def test_join_null_keys_never_match(self, db):
        db2 = Instance()
        db2.add("L", k=None)
        db2.add("R2", k=None)
        expr = eq_join(Scan("L"), Scan("R2"), [("k", "k")])
        assert evaluate(expr, db2) == []

    def test_labeled_null_join_matches_by_label(self):
        db = Instance()
        n = LabeledNull(1)
        db.add("L", k=n, a=1)
        db.add("R", k=n, b=2)
        db.add("R", k=LabeledNull(2), b=3)
        rows = evaluate(eq_join(Scan("L"), Scan("R"), [("k", "k")]), db)
        assert len(rows) == 1 and rows[0]["b"] == 2

    def test_union_all_pads_missing_columns(self, db):
        expr = UnionAll(
            project_names(Scan("Empl"), ["EID", "Name"]),
            Project(Scan("Addr"), [("EID", Col("AID")), ("City", Col("City"))]),
        )
        rows = evaluate(expr, db)
        assert len(rows) == 6
        assert all(set(r) == {"EID", "Name", "City"} for r in rows)

    def test_difference(self, db):
        all_ids = Project(Scan("Addr"), [("AID", Col("AID"))])
        used = Select(
            Project(Scan("Empl"), [("AID", Col("AID"))]),
            IsNull(Col("AID"), negated=True),
        )
        rows = evaluate(Difference(all_ids, used), db)
        assert [r["AID"] for r in rows] == [30]

    def test_distinct(self, db):
        expr = Distinct(Project(Scan("Addr"), [("c", Lit("x"))]))
        assert len(evaluate(expr, db)) == 1

    def test_rename(self, db):
        rows = evaluate(Rename(Scan("Empl"), {"EID": "Id"}), db)
        assert "Id" in rows[0] and "EID" not in rows[0]

    def test_aggregate_grouped(self, db):
        expr = Aggregate(
            Scan("Empl"),
            group_by=[],
            aggregations=[("n", "count", None), ("m", "max", Col("EID")),
                          ("s", "sum", Col("EID")), ("a", "avg", Col("EID")),
                          ("mn", "min", Col("EID"))],
        )
        row = evaluate(expr, db)[0]
        assert row == {"n": 3, "m": 3, "s": 6, "a": 2.0, "mn": 1}

    def test_aggregate_by_group(self, db):
        db.add("Empl", EID=4, Name="Ann", AID=30)
        expr = Aggregate(Scan("Empl"), ["Name"], [("n", "count", None)])
        rows = {r["Name"]: r["n"] for r in evaluate(expr, db)}
        assert rows["Ann"] == 2 and rows["Bob"] == 1

    def test_aggregate_empty_input_no_groups(self, db):
        expr = Aggregate(Scan("Nothing"), [], [("n", "count", None),
                                               ("s", "sum", Col("x"))])
        row = evaluate(expr, db)[0]
        assert row["n"] == 0 and row["s"] is None

    def test_aggregate_count_ignores_nulls(self, db):
        expr = Aggregate(Scan("Empl"), [], [("n", "count", Col("AID"))])
        assert evaluate(expr, db)[0]["n"] == 2

    def test_sort(self, db):
        rows = evaluate(Sort(Scan("Empl"), ["-EID"]), db)
        assert [r["EID"] for r in rows] == [3, 2, 1]

    def test_sort_nulls_last(self, db):
        rows = evaluate(Sort(Scan("Empl"), ["AID"]), db)
        assert rows[-1]["AID"] is None


class TestEntityScan:
    def test_polymorphic_scan(self):
        schema = person_hierarchy()
        db = Instance(schema)
        db.insert_object("Person", Id=1, Name="P")
        db.insert_object("Employee", Id=2, Name="E", Dept="QA")
        db.insert_object("Customer", Id=3, Name="C", CreditScore=1, BillingAddr="x")
        assert len(evaluate(EntityScan("Person"), db)) == 3
        assert len(evaluate(EntityScan("Employee"), db)) == 1
        assert len(evaluate(EntityScan("Person", only=True), db)) == 1

    def test_is_of_predicate(self):
        schema = person_hierarchy()
        db = Instance(schema)
        db.insert_object("Employee", Id=2, Name="E", Dept="QA")
        rows = evaluate(Select(EntityScan("Person"), IsOf("Person")), db)
        assert len(rows) == 1
        rows = evaluate(Select(EntityScan("Person"), IsOf("Person", only=True)), db)
        assert rows == []


class TestPrinting:
    def test_algebra_text(self, db):
        expr = Select(
            project_names(Scan("Empl"), ["EID", "Name"]), eq(Col("EID"), 1)
        )
        text = to_text(expr)
        assert "σ" in text and "π" in text and "Empl" in text

    def test_sql_rendering_runs(self, db):
        expr = eq_join(
            Select(Scan("Empl"), gt(Col("EID"), 1)), Scan("Addr"), [("AID", "AID")]
        )
        sql = to_sql(expr)
        assert "INNER JOIN" in sql and "WHERE EID > 1" in sql

    def test_sql_literals(self):
        expr = Select(Scan("R"), eq(Col("x"), "O'Hara"))
        assert "'O''Hara'" in to_sql(expr)

    def test_sql_case(self):
        expr = Project(
            Scan("R"),
            [("t", Case([(IsOf("Employee"), Lit("emp"))], Lit("other")))],
        )
        sql = to_sql(expr)
        assert "CASE WHEN" in sql and "IS OF" in sql


class TestExpressionUtilities:
    def test_relations(self, db):
        expr = UnionAll(Scan("A"), eq_join(Scan("B"), EntityScan("C"), []))
        assert expr.relations() == {"A", "B", "C"}

    def test_size_and_depth(self):
        expr = Select(Scan("A"), TRUE)
        assert expr.size() == 2 and expr.depth() == 2

    def test_structural_equality(self):
        a = Select(Scan("R"), eq(Col("x"), 1))
        b = Select(Scan("R"), eq(Col("x"), 1))
        assert a == b and hash(a) == hash(b)
        assert a != Select(Scan("R"), eq(Col("x"), 2))


@given(
    st.lists(
        st.fixed_dictionaries({"x": st.integers(-5, 5), "y": st.integers(-5, 5)}),
        max_size=30,
    )
)
@settings(max_examples=50, deadline=None)
def test_select_partition_property(rows):
    """σp(R) ∪ σ¬p(R) == R when p is two-valued on all rows."""
    db = Instance()
    db.insert_all("R", rows)
    p = gt(Col("x"), Col("y"))
    kept = evaluate(Select(Scan("R"), p), db)
    dropped = evaluate(Select(Scan("R"), Not(p)), db)
    assert len(kept) + len(dropped) == len(rows)


@given(
    st.lists(st.fixed_dictionaries({"k": st.integers(0, 3)}), max_size=15),
    st.lists(st.fixed_dictionaries({"k": st.integers(0, 3), "v": st.integers()}),
             max_size=15),
)
@settings(max_examples=50, deadline=None)
def test_join_cardinality_property(left, right):
    """|L ⋈ R| equals the sum over L of matching R rows."""
    db = Instance()
    db.insert_all("L", left)
    db.insert_all("R", right)
    rows = evaluate(eq_join(Scan("L"), Scan("R"), [("k", "k")]), db)
    expected = sum(
        sum(1 for r in right if r["k"] == l["k"]) for l in left
    )
    assert len(rows) == expected
