"""Property-based tests for evolution scripts: for random change
scripts, the derived mapping must hold between an original instance
and its manually-evolved counterpart, and migrating via TransGen must
agree with manual evolution."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.instances import Instance
from repro.metamodel import INT, STRING, SchemaBuilder, schema_violations
from repro.operators import transgen
from repro.operators.evolution import (
    AddColumn,
    DropColumn,
    RenameColumn,
    RenameEntity,
    evolve,
)


def _base_schema():
    return (
        SchemaBuilder("PB", metamodel="relational")
        .entity("R", key=["k"])
        .attribute("k", INT)
        .attribute("a", INT)
        .attribute("b", STRING)
        .build()
    )


_CHANGES = st.lists(
    st.sampled_from([
        AddColumn("R", "extra1", INT),
        AddColumn("R", "extra2", STRING),
        DropColumn("R", "a"),
        DropColumn("R", "b"),
        RenameColumn("R", "a", "alpha"),
        RenameColumn("R", "b", "beta"),
        RenameEntity("R", "R2"),
    ]),
    max_size=4,
)


def _script_is_applicable(changes) -> bool:
    """Filter scripts that reference columns already dropped/renamed."""
    live = {"a", "b"}
    for change in changes:
        if isinstance(change, DropColumn):
            if change.name not in live:
                return False
            live.discard(change.name)
        elif isinstance(change, RenameColumn):
            if change.old not in live:
                return False
            live.discard(change.old)
            live.add(change.new)
        elif isinstance(change, AddColumn):
            if change.name in live:
                return False
            live.add(change.name)
        elif isinstance(change, RenameEntity):
            pass
    # At most one entity rename (the sampled one is always R → R2).
    return sum(1 for c in changes if isinstance(c, RenameEntity)) <= 1


def _manually_evolve_row(row: dict, changes) -> tuple[str, dict]:
    relation = "R"
    out = dict(row)
    for change in changes:
        if isinstance(change, AddColumn):
            out[change.name] = change.default
        elif isinstance(change, DropColumn):
            out.pop(change.name, None)
        elif isinstance(change, RenameColumn):
            out[change.new] = out.pop(change.old)
        elif isinstance(change, RenameEntity):
            relation = change.new
    return relation, out


@given(
    _CHANGES,
    st.lists(
        st.tuples(st.integers(0, 50), st.integers(-5, 5),
                  st.text(alphabet="xyz", max_size=3)),
        max_size=5, unique_by=lambda t: t[0],
    ),
)
@settings(max_examples=60, deadline=None)
def test_derived_mapping_holds_between_manual_states(changes, rows):
    if not _script_is_applicable(changes):
        return
    result = evolve(_base_schema(), changes)
    assert schema_violations(result.schema) == []
    old = Instance()
    new = Instance()
    for k, a, b in rows:
        row = {"k": k, "a": a, "b": b}
        old.insert("R", row)
        relation, evolved_row = _manually_evolve_row(row, changes)
        new.insert(relation, evolved_row)
    assert result.mapping.holds_for(old, new)


@given(_CHANGES,
       st.lists(st.integers(0, 20), max_size=4, unique=True))
@settings(max_examples=40, deadline=None)
def test_transgen_migration_matches_manual(changes, keys):
    if not _script_is_applicable(changes):
        return
    result = evolve(_base_schema(), changes)
    views = transgen(result.mapping)
    old = Instance(result.mapping.source)
    expected = Instance(result.schema)
    for k in keys:
        row = {"k": k, "a": k * 2, "b": "x"}
        old.insert("R", row)
        relation, evolved_row = _manually_evolve_row(row, changes)
        expected.insert(relation, evolved_row)
    migrated = views.query_view.apply(old)
    # Added columns come back as NULLs from the view (no default data);
    # normalize both sides by dropping added-column keys with None.
    added = {c.name for c in changes if isinstance(c, AddColumn)}

    def normalize(instance):
        out = Instance()
        for rel, rows_ in instance.relations.items():
            for r in rows_:
                out.insert(rel, {
                    key: value for key, value in r.items()
                    if not (key in added and value is None)
                })
        return out

    assert normalize(migrated) == normalize(expected)


def test_doctests():
    """Run the docstring examples shipped in the public modules."""
    import doctest

    from repro.operators.match import lexical

    results = doctest.testmod(lexical)
    assert results.failed == 0
    assert results.attempted >= 1
