"""Coverage for the text and SQL printers across all node kinds."""

import pytest

from repro.algebra import (
    Aggregate,
    Arith,
    Case,
    Col,
    Difference,
    Distinct,
    EntityScan,
    Extend,
    FALSE,
    Func,
    In,
    IsNull,
    IsOf,
    Lit,
    Not,
    Or,
    Project,
    Rename,
    Scan,
    Select,
    Sort,
    TRUE,
    UnionAll,
    Values,
    eq,
    eq_join,
    to_sql,
    to_text,
)
from repro.algebra.printer import scalar_text


class TestAlgebraText:
    def test_every_relational_node_renders(self):
        exprs = [
            Scan("R"),
            EntityScan("E", only=True),
            Values([{"a": 1}]),
            Select(Scan("R"), eq(Col("x"), 1)),
            Project(Scan("R"), [("y", Col("x")), ("k", Lit(3))]),
            Extend(Scan("R"), "z", Arith("+", Col("x"), Lit(1))),
            eq_join(Scan("R"), Scan("S"), [("x", "x")], kind="left"),
            UnionAll(Scan("R"), Scan("S")),
            Difference(Scan("R"), Scan("S")),
            Distinct(Scan("R")),
            Rename(Scan("R"), {"x": "y"}),
            Aggregate(Scan("R"), ["g"], [("n", "count", None),
                                         ("s", "sum", Col("x"))]),
            Sort(Scan("R"), ["-x", "y"]),
        ]
        for expr in exprs:
            text = to_text(expr)
            assert text and "<" not in text.split("[")[0]

    def test_every_scalar_renders(self):
        scalars = [
            Col("x"),
            Lit("it's"),
            TRUE,
            FALSE,
            Func("upper", [Col("x")], str.upper),
            Arith("*", Col("x"), Lit(2)),
            eq(Col("x"), 1),
            Or(eq(Col("x"), 1), Not(FALSE)),
            IsNull(Col("x")),
            IsNull(Col("x"), negated=True),
            IsOf("T"),
            IsOf("T", only=True),
            In(Col("x"), [1, 2]),
            Case([(TRUE, Lit(1))], Lit(0)),
        ]
        for scalar in scalars:
            assert scalar_text(scalar)

    def test_text_is_repr(self):
        expr = Select(Scan("R"), eq(Col("x"), 1))
        assert repr(expr) == to_text(expr)


class TestSqlRendering:
    def test_every_node_renders_sql(self):
        exprs = [
            Scan("R"),
            EntityScan("E"),
            Values([{"a": 1, "b": "x"}]),
            Values([]),
            Select(Scan("R"), In(Col("x"), [1, 2])),
            Project(Scan("R"), [("y", Func("upper", [Col("x")], str.upper))]),
            Extend(Scan("R"), "z", Lit(None)),
            eq_join(Scan("R"), Scan("S"), [("x", "x")], kind="left"),
            UnionAll(Scan("R"), Scan("S")),
            Difference(Scan("R"), Scan("S")),
            Distinct(Scan("R")),
            Rename(Scan("R"), {"x": "y"}),
            Aggregate(Scan("R"), ["g"], [("n", "count", None),
                                         ("avg_x", "avg", Col("x"))]),
            Sort(Scan("R"), ["-x"]),
        ]
        for expr in exprs:
            sql = to_sql(expr)
            assert "SELECT" in sql

    def test_compact_mode(self):
        sql = to_sql(Select(Scan("R"), eq(Col("x"), 1)), pretty=False)
        assert "\n" not in sql

    def test_identifier_quoting(self):
        sql = to_sql(Scan("weird name"))
        assert '"weird name"' in sql

    def test_boolean_and_null_literals(self):
        sql = to_sql(Select(Scan("R"), eq(Col("b"), True)))
        assert "TRUE" in sql
        sql = to_sql(Project(Scan("R"), [("n", Lit(None))]))
        assert "NULL" in sql

    def test_left_join_keyword(self):
        sql = to_sql(eq_join(Scan("R"), Scan("S"), [("x", "x")], kind="left"))
        assert "LEFT OUTER JOIN" in sql

    def test_group_by_clause(self):
        sql = to_sql(Aggregate(Scan("R"), ["g"], [("n", "count", None)]))
        assert "GROUP BY g" in sql

    def test_order_by_desc(self):
        sql = to_sql(Sort(Scan("R"), ["-x"]))
        assert "ORDER BY x DESC" in sql
