"""Remaining coverage: script edge cases, loader options, CLI core
flag, engine evolve facade, and miscellaneous small behaviours."""

import json

import pytest

from repro import ModelManagementEngine
from repro.core.scripts import migrate_script
from repro.instances import Instance, dump_instance
from repro.logic import parse_tgd
from repro.mappings import Mapping
from repro.metamodel import INT, STRING, SchemaBuilder
from repro.metamodels import mapping_to_dict
from repro.runtime import BatchLoader
from repro.workloads import paper


class TestScriptsEdgeCases:
    def test_migrate_without_database(self):
        result = migrate_script(
            paper.figure6_map_v_s(), paper.figure6_map_s_sprime()
        )
        assert "database" not in result.artifacts
        assert "mapping" in result.artifacts
        assert "composed" in result.describe()


class TestLoaderOptions:
    def test_validation_disabled(self):
        loader = BatchLoader(paper.figure2_mapping(), validate=False)
        loader.stage("Employee", [
            {"Id": 1, "Name": "A", "Dept": "X"},
            {"Id": 1, "Name": "B", "Dept": "Y"},  # duplicate key
        ])
        _, report = loader.flush()
        assert report.ok  # nothing checked
        assert report.violations == []

    def test_loader_resets_after_flush(self):
        loader = BatchLoader(paper.figure2_mapping())
        loader.stage("Person", [{"Id": 50, "Name": "Q"}])
        loader.flush()
        loaded, report = loader.flush()
        assert report.target_rows == 0
        assert loaded.total_rows() == 0


class TestCliCoreFlag:
    def test_exchange_with_core(self, tmp_path, capsys):
        from repro.cli import main

        source = (
            SchemaBuilder("CS").entity("S", key=["a"]).attribute("a", INT)
            .build()
        )
        target = (
            SchemaBuilder("CT").entity("T", key=["a"])
            .attribute("a", INT).attribute("b", INT, nullable=True).build()
        )
        mapping = Mapping(source, target, [
            parse_tgd("S(a=x) -> T(a=x, b=y)"),
            parse_tgd("S(a=x) -> T(a=x, b=0)"),
        ])
        mapping_path = tmp_path / "m.json"
        mapping_path.write_text(json.dumps(mapping_to_dict(mapping)))
        db = Instance()
        db.add("S", a=1)
        data_path = tmp_path / "d.json"
        data_path.write_text(dump_instance(db))
        assert main(["exchange", str(mapping_path), str(data_path),
                     "--core"]) == 0
        result = json.loads(capsys.readouterr().out)
        assert len(result["relations"]["T"]) == 1  # core collapsed nulls


class TestEngineEvolveFacade:
    def test_evolve_via_engine(self):
        from repro.operators import AddColumn

        engine = ModelManagementEngine()
        schema = (
            SchemaBuilder("Fz").entity("R", key=["k"]).attribute("k", INT)
            .build()
        )
        result = engine.evolve(schema, [AddColumn("R", "extra", STRING)])
        assert result.schema.entity("R").has_attribute("extra")
        assert result.mapping.source.name == "Fz"


class TestMiscBehaviours:
    def test_instance_repr_and_iter(self):
        db = Instance()
        db.add("B", x=1)
        db.add("A", x=2)
        assert "A:1" in repr(db) and "B:1" in repr(db)
        assert [rel for rel, _ in db] == ["A", "B"]  # sorted iteration

    def test_instance_hash_forbidden(self):
        with pytest.raises(TypeError):
            hash(Instance())

    def test_correspondence_str(self):
        cs = paper.figure4_correspondences()
        text = str(next(iter(cs)))
        assert "≈" in text and "1.00" in text

    def test_mapping_describe(self):
        text = paper.figure2_mapping().describe()
        assert "figure2" in text and "equality" in text

    def test_schema_slice_repr(self):
        from repro.operators import diff

        mapping = paper.figure6_map_s_sprime()
        slice_ = diff(paper.figure6_s_prime_schema(), mapping.invert())
        assert slice_.mapping.source.name.endswith("_diff")

    def test_so_tgd_str_shows_functions(self):
        from repro.logic.second_order import skolemize_all

        so = skolemize_all([parse_tgd("S(a=x) -> T(a=x, b=y)", name="m")])
        assert "∃" in str(so) and "f_m_y" in str(so)

    def test_chase_result_metadata(self):
        from repro.logic import chase

        db = Instance()
        db.add("A", x=1)
        result = chase(db, [parse_tgd("A(x=v) -> B(x=v, y=w)", name="t")])
        assert result.steps == 1
        assert result.fired == {"t": 1}
        assert result.nulls_created == 1
