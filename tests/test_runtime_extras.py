"""Tests for the remaining §5 runtime services: keyword indexing,
business-logic pushdown, and synchronization/replication."""

import pytest

from repro.algebra import Col, eq, ge, gt
from repro.errors import ExpressivenessError
from repro.instances import Instance
from repro.logic import parse_tgd
from repro.mappings import Mapping
from repro.metamodel import INT, STRING, SchemaBuilder
from repro.runtime import (
    Endpoint,
    KeywordIndex,
    Synchronizer,
    TriggerSet,
    UpdateSet,
    pushdown,
)
from repro.workloads import paper


class TestKeywordIndex:
    def _tgd_setup(self):
        source_schema = (
            SchemaBuilder("Docs").entity("Article", key=["aid"])
            .attribute("aid", INT).attribute("title", STRING)
            .attribute("body", STRING)
            .build()
        )
        target_schema = (
            SchemaBuilder("Portal").entity("Page", key=["pid"])
            .attribute("pid", INT).attribute("headline", STRING)
            .build()
        )
        mapping = Mapping(source_schema, target_schema, [
            parse_tgd("Article(aid=a, title=t, body=b) -> "
                      "Page(pid=a, headline=t)")
        ])
        db = Instance(source_schema)
        db.add("Article", aid=1, title="Model Management",
               body="mappings between schemas")
        db.add("Article", aid=2, title="Data Exchange",
               body="chase and certain answers")
        return mapping, db

    def test_search_maps_hits_to_target(self):
        mapping, db = self._tgd_setup()
        index = KeywordIndex(mapping, db)
        hits = index.search("chase")
        assert hits
        assert hits[0].target_relation == "Page"
        assert hits[0].target_row["pid"] == 2
        assert hits[0].source_relation == "Article"

    def test_multi_term_ranking(self):
        mapping, db = self._tgd_setup()
        index = KeywordIndex(mapping, db)
        hits = index.search("model management chase")
        assert hits[0].target_row["pid"] == 1  # matches 2 terms
        assert hits[0].score > hits[-1].score

    def test_no_hits(self):
        mapping, db = self._tgd_setup()
        index = KeywordIndex(mapping, db)
        assert index.search("zeppelin") == []
        assert index.search("") == []

    def test_limit(self):
        mapping, db = self._tgd_setup()
        index = KeywordIndex(mapping, db)
        assert len(index.search("and schemas between", limit=1)) == 1

    def test_equality_mapping_index(self):
        mapping = paper.figure2_mapping()
        index = KeywordIndex(mapping, paper.figure2_sql_instance())
        hits = index.search("Engineering")
        assert hits
        assert hits[0].target_relation == "Person"
        assert hits[0].target_row["Id"] == 3

    def test_vocabulary(self):
        mapping, db = self._tgd_setup()
        assert KeywordIndex(mapping, db).vocabulary_size() > 5


class TestBusinessLogic:
    def test_target_triggers_fire(self):
        triggers = TriggerSet("ER")
        fired = []
        triggers.on_insert(
            "Customer",
            lambda rel, row: fired.append(row["Id"]),
            condition=ge(Col("CreditScore"), 700),
            name="vip",
        )
        update = (
            UpdateSet()
            .insert_object("Customer", Id=1, CreditScore=720, Name="A",
                           BillingAddr="x")
            .insert_object("Customer", Id=2, CreditScore=500, Name="B",
                           BillingAddr="y")
        )
        assert triggers.fire(update) == 1
        assert fired == [1]

    def test_delete_triggers(self):
        triggers = TriggerSet("ER")
        fired = []
        triggers.on_delete("HR", lambda rel, row: fired.append(row))
        update = UpdateSet().delete("HR", Id=1)
        assert triggers.fire(update) == 1

    def test_pushdown_translates_entity_and_columns(self):
        mapping = paper.figure2_mapping()
        triggers = TriggerSet("PersonsER")
        fired = []
        triggers.on_insert(
            "Customer",
            lambda rel, row: fired.append((rel, row)),
            condition=ge(Col("CreditScore"), 700),
            name="vip",
        )
        source_triggers = pushdown(triggers, mapping)
        translated = source_triggers.triggers[0]
        assert translated.entity == "Client"
        # Condition now references the table column name.
        assert "Score" in repr(translated.condition)
        assert "CreditScore" not in repr(translated.condition)

    def test_pushdown_equivalence(self):
        """Firing on the source delta matches firing on the target delta."""
        mapping = paper.figure2_mapping()
        target_fired, source_fired = [], []
        target_triggers = TriggerSet("PersonsER")
        target_triggers.on_insert(
            "Customer", lambda rel, row: target_fired.append(row["Id"]),
            condition=ge(Col("CreditScore"), 700),
        )
        source_triggers = pushdown(target_triggers, mapping)
        source_triggers.triggers[0].action = (
            lambda rel, row: source_fired.append(row["Id"])
        )
        # Object-level insert on the target...
        target_update = UpdateSet().insert_object(
            "Customer", Id=30, Name="Rich", CreditScore=800, BillingAddr="z"
        )
        target_triggers.fire(target_update)
        # ...and its translation to the source (via update propagation).
        from repro.runtime import UpdatePropagator

        propagator = UpdatePropagator(mapping)
        er = Instance(mapping.target)
        source_update, _, _ = propagator.propagate(er, target_update)
        source_triggers.fire(source_update)
        assert target_fired == source_fired == [30]

    def test_pushdown_rejects_unanchored_column(self):
        """A condition over an attribute stored outside the anchor
        relation cannot be pushed down."""
        mapping = paper.figure2_mapping()
        triggers = TriggerSet("PersonsER")
        # Employee anchors on Empl (most specific fragment), but Name
        # is stored in HR.
        triggers.on_insert(
            "Employee", lambda rel, row: None,
            condition=eq(Col("Name"), "Bob"),
        )
        with pytest.raises(ExpressivenessError):
            pushdown(triggers, mapping)

    def test_pushdown_tgd_mapping(self):
        source = (
            SchemaBuilder("Sx").entity("Raw", key=["k"]).attribute("k", INT)
            .attribute("v", INT).build()
        )
        target = (
            SchemaBuilder("Tx").entity("Fact", key=["k"]).attribute("k", INT)
            .attribute("w", INT).build()
        )
        mapping = Mapping(source, target,
                          [parse_tgd("Raw(k=x, v=y) -> Fact(k=x, w=y)")])
        triggers = TriggerSet("Tx")
        triggers.on_insert("Fact", lambda rel, row: None,
                           condition=gt(Col("w"), 10))
        translated = pushdown(triggers, mapping).triggers[0]
        assert translated.entity == "Raw"
        assert "v" in repr(translated.condition)


class TestSynchronization:
    def _endpoints(self):
        mapping = paper.figure2_mapping()
        primary = Endpoint(mapping, paper.figure2_sql_instance(),
                           name="primary")
        # The replica starts empty (fresh tables).
        replica_mapping = paper.figure2_mapping()
        empty = Instance(replica_mapping.source)
        replica = Endpoint(replica_mapping, empty, name="replica")
        return primary, replica

    def test_replicate_all_customers(self):
        primary, replica = self._endpoints()
        synchronizer = Synchronizer(primary, replica)
        synchronizer.add_rule("Customer")
        delta = synchronizer.synchronize()
        assert delta.size() > 0
        assert {r["Id"] for r in replica.source.rows("Client")} == {4, 5}
        assert replica.source.rows("HR") == []  # employees not replicated
        assert synchronizer.verify_converged()

    def test_filtered_replication(self):
        primary, replica = self._endpoints()
        synchronizer = Synchronizer(primary, replica)
        synchronizer.add_rule("Customer", condition=ge(Col("CreditScore"),
                                                       700))
        synchronizer.synchronize()
        assert {r["Id"] for r in replica.source.rows("Client")} == {4}

    def test_idempotent(self):
        primary, replica = self._endpoints()
        synchronizer = Synchronizer(primary, replica)
        synchronizer.add_rule("Customer")
        first = synchronizer.synchronize()
        second = synchronizer.synchronize()
        assert first.size() > 0
        assert second.is_empty

    def test_rule_removes_stale_replica_objects(self):
        primary, replica = self._endpoints()
        # Replica has a customer the primary does not (stale copy).
        replica.source.add("Client", Id=99, Name="Ghost", Score=1, Addr="?")
        synchronizer = Synchronizer(primary, replica)
        synchronizer.add_rule("Customer")
        synchronizer.synchronize()
        ids = {r["Id"] for r in replica.source.rows("Client")}
        assert 99 not in ids and ids == {4, 5}

    def test_uncovered_replica_objects_preserved(self):
        primary, replica = self._endpoints()
        replica.source.add("HR", Id=77, Name="LocalOnly")
        synchronizer = Synchronizer(primary, replica)
        synchronizer.add_rule("Customer")
        synchronizer.synchronize()
        assert any(r["Id"] == 77 for r in replica.source.rows("HR"))

    def test_mismatched_targets_rejected(self):
        from repro.errors import MappingError

        mapping = paper.figure2_mapping()
        primary = Endpoint(mapping, paper.figure2_sql_instance())
        other = Mapping(
            paper.figure6_s_schema(), paper.figure6_s_prime_schema(),
            paper.figure6_map_s_sprime().constraints,
        )
        replica = Endpoint(other, paper.figure6_s_instance())
        with pytest.raises(MappingError):
            Synchronizer(primary, replica)
