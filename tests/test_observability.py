"""Tests for the engine-wide tracing/metrics layer
(:mod:`repro.observability`)."""

import json

import pytest

import repro.observability as obs
from repro.core import ModelManagementEngine
from repro.instances import Instance
from repro.logic import chase, parse_tgd
from repro.observability import (
    COUNT_BUCKETS,
    Histogram,
    instrumented,
    registry,
    tracer,
)
from repro.workloads import paper


@pytest.fixture(autouse=True)
def _clean_observability():
    """Every test starts disabled with empty tracer/registry, and
    leaves the process in that state."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_span_yields_none_and_records_nothing(self):
        with obs.span("work", size=3) as span:
            pass
        assert span is None
        assert tracer.span_count() == 0
        assert len(registry) == 0

    def test_nesting_builds_a_tree(self):
        obs.enable()
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                pass
        assert [s.name for s in tracer.iter_spans()] == ["outer", "inner"]
        assert inner.parent_id == outer.span_id
        assert tracer.roots == [outer]
        assert outer.children == [inner]

    def test_attributes_and_timing(self):
        obs.enable()
        with obs.span("op", rows=7) as span:
            span.set_attribute("extra", "x")
            span.set_attributes(more=1)
        assert span.attributes == {"rows": 7, "extra": "x", "more": 1}
        assert span.wall_ms is not None and span.wall_ms >= 0
        assert span.cpu_ms is not None

    def test_finish_feeds_registry(self):
        obs.enable()
        with obs.span("op.widget"):
            pass
        assert registry.counter("span.op.widget.calls").value == 1
        assert registry.histogram("span.op.widget.wall_ms").count == 1

    def test_exception_still_finishes_span(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("boom"):
                raise ValueError("x")
        (span,) = tracer.iter_spans()
        assert span.wall_ms is not None

    def test_jsonl_roundtrip(self, tmp_path):
        obs.enable()
        with obs.span("a", k=1):
            with obs.span("b"):
                pass
        path = tracer.export_jsonl(tmp_path / "trace.jsonl")
        lines = [json.loads(line) for line in
                 path.read_text().splitlines()]
        assert [entry["name"] for entry in lines] == ["a", "b"]
        by_id = {entry["span_id"]: entry for entry in lines}
        child = next(e for e in lines if e["name"] == "b")
        assert by_id[child["parent_id"]]["name"] == "a"
        assert next(e for e in lines if e["name"] == "a")[
            "attributes"] == {"k": 1}

    def test_render_tree(self):
        obs.enable()
        with obs.span("root", rows=2):
            with obs.span("leaf"):
                pass
        text = tracer.render()
        assert "root" in text and "leaf" in text
        assert "ms" in text and "rows=2" in text
        assert tracer.render(attributes=False).count("rows=2") == 0

    def test_render_empty(self):
        assert "no spans" in tracer.render()


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_and_gauge(self):
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2.5)
        assert registry.counter("c").value == 5
        assert registry.gauge("g").value == 2.5

    def test_kind_mismatch(self):
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_histogram_summary_and_percentiles(self):
        h = Histogram("h", buckets=COUNT_BUCKETS)
        for value in range(1, 101):
            h.observe(value)
        s = h.summary()
        assert s["count"] == 100 and s["min"] == 1 and s["max"] == 100
        assert s["mean"] == pytest.approx(50.5)
        # fixed-bucket estimation: exact at boundaries, interpolated
        # inside — stay within one bucket width.
        assert s["p50"] == pytest.approx(50, abs=13)
        assert s["p99"] == pytest.approx(99, abs=26)

    def test_histogram_empty(self):
        h = Histogram("h")
        assert h.percentile(50) is None
        assert h.summary()["count"] == 0

    def test_snapshot_and_export(self, tmp_path):
        registry.counter("runs").inc(2)
        registry.histogram("ms").observe(1.5)
        snap = registry.snapshot()
        assert snap["runs"] == {"type": "counter", "value": 2}
        assert snap["ms"]["count"] == 1
        path = registry.export_json(tmp_path / "metrics.json")
        assert json.loads(path.read_text())["runs"]["value"] == 2

    def test_render(self):
        registry.counter("n").inc()
        registry.histogram("ms").observe(3.0)
        text = registry.render()
        assert "n = 1" in text and "p50" in text


# ----------------------------------------------------------------------
# @instrumented
# ----------------------------------------------------------------------
class TestInstrumented:
    def test_disabled_is_transparent(self):
        @instrumented("t.f", attrs=lambda x: 1 / 0)  # must never run
        def f(x):
            return x + 1

        assert f(1) == 2
        assert tracer.span_count() == 0

    def test_enabled_records_span_with_attrs(self):
        @instrumented("t.f", attrs=lambda x: {"x": x})
        def f(x):
            return x + 1

        obs.enable()
        assert f(41) == 42
        (span,) = tracer.iter_spans()
        assert span.name == "t.f" and span.attributes == {"x": 41}

    def test_bare_decorator_uses_qualname(self):
        @instrumented
        def plain():
            return 7

        obs.enable()
        assert plain() == 7
        (span,) = tracer.iter_spans()
        assert span.name.endswith("plain")

    def test_exception_propagates_and_span_closes(self):
        @instrumented("t.err")
        def bad():
            raise RuntimeError("nope")

        obs.enable()
        with pytest.raises(RuntimeError):
            bad()
        (span,) = tracer.iter_spans()
        assert span.wall_ms is not None


# ----------------------------------------------------------------------
# engine wiring
# ----------------------------------------------------------------------
class TestEngineInstrumentation:
    def test_facade_call_nests_operator_span(self):
        engine = ModelManagementEngine()
        obs.enable()
        engine.compose(paper.figure6_map_v_s(), paper.figure6_map_s_sprime())
        names = [s.name for s in tracer.iter_spans()]
        assert names[0] == "engine.compose"
        assert "op.compose" in names
        compose_root = tracer.roots[0]
        assert compose_root.attributes["first.constraints"] >= 1

    def test_exchange_reports_chase_metrics(self):
        from repro.mappings import Mapping
        from repro.metamodel import INT, SchemaBuilder

        engine = ModelManagementEngine()
        db = Instance()
        db.add("S", a=1)
        source = (SchemaBuilder("S").entity("S", key=["a"])
                  .attribute("a", INT).build())
        target = (SchemaBuilder("T").entity("T", key=["a"])
                  .attribute("a", INT).build())
        mapping = Mapping(source, target, [parse_tgd("S(a=x) -> T(a=x)")])
        obs.enable()
        engine.exchange(mapping, db)
        assert registry.counter("chase.runs").value == 1
        assert registry.counter("chase.steps").value == 1
        names = [s.name for s in tracer.iter_spans()]
        assert names[0] == "engine.exchange"
        assert "runtime.exchange" in names and "logic.chase" in names

    def test_chase_metrics_disabled_by_default(self):
        db = Instance()
        db.add("S", a=1)
        chase(db, [parse_tgd("S(a=x) -> T(a=x)")])
        assert "chase.runs" not in registry
        assert tracer.span_count() == 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_trace_command(self, tmp_path, capsys):
        from repro.cli import main

        script = tmp_path / "script.py"
        script.write_text(
            "from repro.core import ModelManagementEngine\n"
            "from repro.workloads import paper\n"
            "engine = ModelManagementEngine()\n"
            "engine.compose(paper.figure6_map_v_s(),\n"
            "               paper.figure6_map_s_sprime())\n"
        )
        out = tmp_path / "trace.jsonl"
        code = main(["trace", str(script), "--quiet", "--out", str(out)])
        captured = capsys.readouterr().out
        assert code == 0
        assert "engine.compose" in captured
        assert out.exists() and "op.compose" in out.read_text()

    def test_metrics_command(self, tmp_path, capsys):
        from repro.cli import main

        script = tmp_path / "script.py"
        script.write_text(
            "from repro.instances import Instance\n"
            "from repro.logic import chase, parse_tgd\n"
            "db = Instance(); db.add('S', a=1)\n"
            "chase(db, [parse_tgd('S(a=x) -> T(a=x)')])\n"
        )
        code = main(["metrics", str(script), "--quiet", "--json"])
        captured = capsys.readouterr().out
        assert code == 0
        assert json.loads(captured)["chase.runs"]["value"] == 1
