"""Tests for the mapping runtime: all Section 5 services."""

import pytest

from repro.algebra import (
    Col, EntityScan, IsOf, Project, Scan, Select, eq, project_names,
)
from repro.errors import AccessDenied, ExpressivenessError, TransformationError
from repro.instances import Instance, LabeledNull
from repro.logic import parse_query, parse_tgd
from repro.mappings import Mapping
from repro.metamodel import INT, STRING, SchemaBuilder
from repro.operators import modelgen, transgen, InheritanceStrategy
from repro.runtime import (
    AccessController,
    BatchLoader,
    ErrorTranslator,
    MappingDebugger,
    MaterializedTarget,
    PeerNetwork,
    Permission,
    QueryProcessor,
    UpdatePropagator,
    UpdateSet,
    check_constraint_propagation,
    exchange,
    inexpressible_constraints,
    lineage,
)
from repro.runtime.updates import apply_update, instance_delta
from repro.workloads import paper
from tests.test_metamodel_schema import person_hierarchy


def _figure2_views_mapping():
    return paper.figure2_mapping()


def _er_sample():
    db = Instance(person_hierarchy())
    db.insert_object("Person", Id=1, Name="Ann")
    db.insert_object("Employee", Id=2, Name="Bob", Dept="Sales")
    db.insert_object("Customer", Id=3, Name="Cat", CreditScore=700,
                     BillingAddr="x")
    return db


class TestExecutor:
    def test_exchange_equality_mapping(self):
        result = exchange(paper.figure2_mapping(), paper.figure2_sql_instance())
        assert result.set_equal(paper.figure2_er_instance())

    def test_exchange_tgd_mapping(self):
        mapping = Mapping(
            paper.figure6_s_schema(), paper.figure6_s_prime_schema(),
            [parse_tgd("Names(SID=s, Name=n) -> NamesP(SID=s, Name=n)")],
        )
        result = exchange(mapping, paper.figure6_s_instance())
        assert result.cardinality("NamesP") == 3


class TestQueryProcessor:
    def test_view_unfolding(self):
        processor = QueryProcessor(
            paper.figure2_mapping(), paper.figure2_sql_instance()
        )
        query = Project(
            Select(EntityScan("Person"), IsOf("Employee")),
            [("Id", Col("Id")), ("Dept", Col("Dept"))],
        )
        rows = processor.answer_algebra(query)
        assert {(r["Id"], r["Dept"]) for r in rows} == {
            (2, "Sales"), (3, "Engineering"),
        }

    def test_unfolded_reads_source_relations(self):
        processor = QueryProcessor(
            paper.figure2_mapping(), paper.figure2_sql_instance()
        )
        query = project_names(EntityScan("Person"), ["Id"])
        unfolded = processor.unfolded(query)
        assert unfolded.relations() <= {"HR", "Empl", "Client"}

    def test_certain_answers_tgd(self):
        source = (
            SchemaBuilder("S3").entity("S", key=["a"]).attribute("a", INT)
            .build()
        )
        target = (
            SchemaBuilder("T3").entity("T", key=["a"]).attribute("a", INT)
            .attribute("b", INT, nullable=True).build()
        )
        mapping = Mapping(source, target, [parse_tgd("S(a=x) -> T(a=x, b=y)")])
        db = Instance()
        db.add("S", a=1)
        processor = QueryProcessor(mapping, db)
        assert processor.answer_cq(parse_query("q(x) :- T(a=x, b=y)")) == [(1,)]
        assert processor.answer_cq(parse_query("q(y) :- T(a=x, b=y)")) == []

    def test_algebra_over_universal_solution_drops_nulls(self):
        source = (
            SchemaBuilder("S4").entity("S", key=["a"]).attribute("a", INT)
            .build()
        )
        target = (
            SchemaBuilder("T4").entity("T", key=["a"]).attribute("a", INT)
            .attribute("b", INT, nullable=True).build()
        )
        mapping = Mapping(source, target, [parse_tgd("S(a=x) -> T(a=x, b=y)")])
        db = Instance()
        db.add("S", a=1)
        processor = QueryProcessor(mapping, db)
        rows = processor.answer_algebra(project_names(Scan("T"), ["a", "b"]))
        assert rows == []  # the b-null row is not a certain answer
        rows = processor.answer_algebra(project_names(Scan("T"), ["a"]))
        assert rows == [{"a": 1}]


class TestUpdatePropagation:
    def test_insert_propagates(self):
        mapping = paper.figure2_mapping()
        propagator = UpdatePropagator(mapping)
        er = _mapping_er_instance(mapping)
        update = UpdateSet().insert_object(
            "Employee", Id=9, Name="New", Dept="Ops"
        )
        source_update, new_source, new_target = propagator.propagate(er, update)
        assert {r["Id"] for r in new_source.rows("Empl")} >= {9}
        assert any(
            row.get("Id") == 9 for row in source_update.inserts.get("HR", [])
        )
        assert any(
            row.get("Id") == 9 for row in source_update.inserts.get("Empl", [])
        )

    def test_delete_propagates(self):
        mapping = paper.figure2_mapping()
        propagator = UpdatePropagator(mapping)
        er = _mapping_er_instance(mapping)
        update = UpdateSet().delete("Person", Id=2)
        source_update, new_source, _ = propagator.propagate(er, update)
        assert all(r["Id"] != 2 for r in new_source.rows("Empl"))
        deleted = source_update.deletes
        assert any(row.get("Id") == 2 for row in deleted.get("HR", []))

    def test_tgd_mapping_rejected(self):
        mapping = Mapping(
            paper.figure6_s_schema(), paper.figure6_s_prime_schema(),
            [parse_tgd("Names(SID=s, Name=n) -> NamesP(SID=s, Name=n)")],
        )
        with pytest.raises(ExpressivenessError):
            UpdatePropagator(mapping)

    def test_instance_delta(self):
        before, after = Instance(), Instance()
        before.add("R", x=1)
        before.add("R", x=2)
        after.add("R", x=2)
        after.add("R", x=3)
        delta = instance_delta(before, after)
        assert delta.inserts["R"] == [{"x": 3}]
        assert delta.deletes["R"] == [{"x": 1}]

    def test_apply_update_typed(self):
        db = _er_sample()
        update = UpdateSet().insert_object("Person", Id=10, Name="Zoe")
        new = apply_update(db, update)
        assert len(new.objects_of("Person", strict=True)) == 2


def _mapping_er_instance(mapping):
    """figure2 ER data bound to the mapping's own target schema object."""
    db = Instance(mapping.target)
    db.insert_object("Person", Id=1, Name="Ann")
    db.insert_object("Employee", Id=2, Name="Bob", Dept="Sales")
    db.insert_object("Employee", Id=3, Name="Carol", Dept="Engineering")
    db.insert_object("Customer", Id=4, Name="Dave", CreditScore=710,
                     BillingAddr="12 Elm St")
    db.insert_object("Customer", Id=5, Name="Eve", CreditScore=640,
                     BillingAddr="9 Oak Ave")
    return db


class TestProvenance:
    def _setup(self):
        source = Instance()
        source.insert_all("Empl", [
            {"EID": 1, "AID": 10}, {"EID": 2, "AID": 20},
        ])
        source.insert_all("Addr", [
            {"AID": 10, "City": "Rome"}, {"AID": 20, "City": "Oslo"},
        ])
        tgd = parse_tgd(
            "Empl(EID=e, AID=a) & Addr(AID=a, City=c) -> Staff(SID=e, City=c)",
            name="to_staff",
        )
        return source, [tgd]

    def test_lineage_finds_witnesses(self):
        source, tgds = self._setup()
        entries = lineage({"SID": 1, "City": "Rome"}, "Staff", source, tgds)
        assert len(entries) == 1
        witnessed = {rel for rel, _ in entries[0].source_rows}
        assert witnessed == {"Empl", "Addr"}
        assert {"EID": 1, "AID": 10} in [r for _, r in entries[0].source_rows]

    def test_lineage_absent_row(self):
        source, tgds = self._setup()
        assert lineage({"SID": 9, "City": "Rome"}, "Staff", source, tgds) == []

    def test_lineage_with_invented_null(self):
        source = Instance()
        source.add("P", name="Ann")
        tgd = parse_tgd("P(name=n) -> Q(name=n, code=c)", name="invent")
        null = LabeledNull(0)
        entries = lineage({"name": "Ann", "code": null}, "Q", source, [tgd])
        assert len(entries) == 1  # null matches the existential


class TestDebugging:
    def test_trace_equality_mapping(self):
        debugger = MappingDebugger(paper.figure2_mapping())
        steps = debugger.trace(paper.figure2_sql_instance())
        assert any(s.output_relation == "Person" for s in steps)
        assert all(s.row_count >= 0 for s in steps)

    def test_trace_tgd_mapping(self):
        mapping = Mapping(
            paper.figure6_s_schema(), paper.figure6_s_prime_schema(),
            [parse_tgd("Names(SID=s, Name=n) -> NamesP(SID=s, Name=n)",
                       name="names")],
        )
        steps = MappingDebugger(mapping).trace(paper.figure6_s_instance())
        assert steps[0].row_count == 3

    def test_explain_missing_no_source_match(self):
        mapping = Mapping(
            paper.figure6_s_schema(), paper.figure6_s_prime_schema(),
            [parse_tgd("Names(SID=s, Name=n) -> NamesP(SID=s, Name=n)",
                       name="names")],
        )
        debugger = MappingDebugger(mapping)
        reasons = debugger.explain_missing(
            {"SID": 99, "Name": "Ghost"}, "NamesP", paper.figure6_s_instance()
        )
        assert any("no source row matches" in r for r in reasons)

    def test_explain_missing_unproduced_relation(self):
        mapping = Mapping(
            paper.figure6_s_schema(), paper.figure6_s_prime_schema(),
            [parse_tgd("Names(SID=s, Name=n) -> NamesP(SID=s, Name=n)")],
        )
        reasons = MappingDebugger(mapping).explain_missing(
            {"SID": 1}, "Local", paper.figure6_s_instance()
        )
        assert "no dependency produces" in reasons[0]


class TestErrorTranslation:
    def test_message_rewritten(self):
        mapping = paper.figure2_mapping()
        translator = ErrorTranslator(mapping)
        error = KeyError("constraint violated on table Empl")
        translated = translator.translate(error, operation="save Employee")
        assert "Empl" not in translated.message.replace("Employee", "")
        assert "Employee" in translated.message

    def test_column_level_translation(self):
        mapping = paper.figure2_mapping()
        element_map = ErrorTranslator(mapping).element_map()
        assert element_map.get("Client") == "Person"
        # Column mapping: Client.Score ↔ CreditScore
        assert any("Score" in k for k in element_map)

    def test_tgd_mapping_translation(self):
        source = (
            SchemaBuilder("Sx").entity("T1", key=["k"]).attribute("k", INT)
            .attribute("v", INT).build()
        )
        target = (
            SchemaBuilder("Tx").entity("T2", key=["k"]).attribute("k", INT)
            .attribute("w", INT).build()
        )
        mapping = Mapping(source, target,
                          [parse_tgd("T1(k=x, v=y) -> T2(k=x, w=y)")])
        translated = ErrorTranslator(mapping).translate(
            ValueError("bad value in T1.v")
        )
        assert "T2.w" in translated.message


class TestNotifications:
    def _mapping(self):
        source = (
            SchemaBuilder("Sn").entity("Ord", key=["oid"])
            .attribute("oid", INT).attribute("cust", INT).build()
        )
        target = (
            SchemaBuilder("Tn").entity("BigOrders", key=["oid"])
            .attribute("oid", INT).attribute("cust", INT).build()
        )
        return Mapping(source, target, [
            parse_tgd("Ord(oid=o, cust=c) -> BigOrders(oid=o, cust=c)")
        ])

    def test_incremental_insert(self):
        mapping = self._mapping()
        db = Instance()
        db.add("Ord", oid=1, cust=10)
        materialized = MaterializedTarget(mapping, db)
        received = []
        materialized.subscribe(received.append)
        delta = materialized.on_source_change(
            UpdateSet().insert("Ord", oid=2, cust=20)
        )
        assert not delta.recomputed
        assert delta.inserted["BigOrders"] == [{"oid": 2, "cust": 20}]
        assert received and received[0] is delta
        assert materialized.target.cardinality("BigOrders") == 2
        assert materialized.maintenance_stats["incremental"] == 1

    def test_delete_maintained_incrementally(self):
        mapping = self._mapping()
        db = Instance()
        db.add("Ord", oid=1, cust=10)
        db.add("Ord", oid=2, cust=20)
        materialized = MaterializedTarget(mapping, db)
        delta = materialized.on_source_change(
            UpdateSet().delete("Ord", oid=1)
        )
        assert not delta.recomputed
        assert delta.deleted["BigOrders"] == [{"oid": 1, "cust": 10}]
        assert materialized.target.cardinality("BigOrders") == 1
        assert materialized.maintenance_stats["incremental"] == 1

    def test_forced_recompute_lane(self):
        mapping = self._mapping()
        db = Instance()
        db.add("Ord", oid=1, cust=10)
        materialized = MaterializedTarget(mapping, db, incremental=False)
        delta = materialized.on_source_change(
            UpdateSet().insert("Ord", oid=2, cust=20)
        )
        assert delta.recomputed
        assert materialized.target.cardinality("BigOrders") == 2
        assert materialized.maintenance_stats["recomputed"] == 1

    def test_incremental_matches_recompute(self):
        """Incremental maintenance must agree with full recomputation."""
        mapping = self._mapping()
        db = Instance()
        for i in range(5):
            db.add("Ord", oid=i, cust=i * 10)
        incremental = MaterializedTarget(mapping, db)
        for i in range(5, 10):
            incremental.on_source_change(
                UpdateSet().insert("Ord", oid=i, cust=i * 10)
            )
        full = exchange(mapping, incremental.source)
        assert incremental.target.set_equal(full)

    def test_join_tgd_incremental(self):
        source = (
            SchemaBuilder("Sj")
            .entity("E", key=["eid"]).attribute("eid", INT).attribute("aid", INT)
            .entity("A", key=["aid"]).attribute("aid", INT).attribute("city", STRING)
            .build()
        )
        target = (
            SchemaBuilder("Tj").entity("Stf", key=["eid"])
            .attribute("eid", INT).attribute("city", STRING).build()
        )
        mapping = Mapping(source, target, [
            parse_tgd("E(eid=e, aid=a) & A(aid=a, city=c) -> Stf(eid=e, city=c)")
        ])
        db = Instance()
        db.add("A", aid=1, city="Rome")
        materialized = MaterializedTarget(mapping, db)
        assert materialized.target.cardinality("Stf") == 0
        delta = materialized.on_source_change(
            UpdateSet().insert("E", eid=7, aid=1)
        )
        assert delta.inserted["Stf"] == [{"eid": 7, "city": "Rome"}]


class TestAccessControl:
    def test_check_denies_unauthorized(self):
        mapping = paper.figure2_mapping()
        controller = AccessController(mapping)
        controller.grant("alice", "HR")
        controller.grant("alice", "Empl")
        query = project_names(
            Select(EntityScan("Person"), IsOf("Customer")), ["Id"]
        )
        with pytest.raises(AccessDenied):
            controller.check("alice", query)  # needs Client

    def test_check_allows_authorized(self):
        mapping = paper.figure2_mapping()
        controller = AccessController(mapping)
        for relation in ("HR", "Empl", "Client"):
            controller.grant("root", relation)
        controller.check("root", project_names(EntityScan("Person"), ["Id"]))

    def test_row_filter_pushdown(self):
        from repro.algebra import evaluate, gt

        mapping = paper.figure2_mapping()
        controller = AccessController(mapping)
        for relation in ("HR", "Empl", "Client"):
            row_filter = gt(Col("Id"), 4) if relation == "Client" else None
            controller.grant("bob", relation, row_filter=row_filter)
        query = project_names(
            Select(EntityScan("Person"), IsOf("Customer")), ["Id"]
        )
        restricted = controller.restricted_query("bob", query)
        rows = evaluate(restricted, paper.figure2_sql_instance())
        assert {r["Id"] for r in rows} == {5}  # Id=4 filtered out

    def test_tgd_footprint(self):
        mapping = Mapping(
            paper.figure6_s_schema(), paper.figure6_s_prime_schema(),
            [parse_tgd("Names(SID=s, Name=n) -> NamesP(SID=s, Name=n)")],
        )
        controller = AccessController(mapping)
        footprint = controller.source_footprint(
            project_names(Scan("NamesP"), ["SID"])
        )
        assert footprint == {"Names"}


class TestIntegrity:
    def test_propagation_ok(self):
        report = check_constraint_propagation(
            paper.figure2_mapping(), paper.figure2_sql_instance()
        )
        assert report.source_satisfied
        assert report.propagates

    def test_propagation_vacuous_when_source_invalid(self):
        db = paper.figure2_sql_instance()
        db.add("Empl", Id=999, Dept="Ghost")  # FK violation
        report = check_constraint_propagation(paper.figure2_mapping(), db)
        assert not report.source_satisfied
        assert report.propagates  # vacuously

    def test_disjointness_inexpressible_under_tpt(self):
        """The paper's Section 5 example, verbatim: disjoint subclasses
        mapped to distinct tables."""
        result = modelgen(person_hierarchy(), "relational",
                          InheritanceStrategy.TPT)
        flagged = inexpressible_constraints(result.mapping)
        assert any(
            "Employee" in str(f.constraint.entities) for f in flagged
        ), flagged

    def test_disjointness_expressible_under_tph(self):
        """With a single table (TPH), disjointness is enforceable via
        the discriminator — nothing should be flagged."""
        result = modelgen(person_hierarchy(), "relational",
                          InheritanceStrategy.TPH)
        assert inexpressible_constraints(result.mapping) == []


class TestP2P:
    def _network(self):
        network = PeerNetwork()
        a = SchemaBuilder("PA").entity("R", key=["k"]).attribute("k", INT) \
            .attribute("v", INT).build()
        b = SchemaBuilder("PB").entity("S", key=["k"]).attribute("k", INT) \
            .attribute("v", INT).build()
        c = SchemaBuilder("PC").entity("T", key=["k"]).attribute("k", INT) \
            .attribute("v", INT).build()
        data = Instance()
        data.add("R", k=1, v=10)
        data.add("R", k=2, v=20)
        network.add_peer("a", a, data)
        network.add_peer("b", b)
        network.add_peer("c", c)
        network.add_mapping("a", "b", Mapping(a, b, [
            parse_tgd("R(k=x, v=y) -> S(k=x, v=y)")
        ]))
        network.add_mapping("b", "c", Mapping(b, c, [
            parse_tgd("S(k=x, v=y) -> T(k=x, v=y)")
        ]))
        return network

    def test_chain_discovery(self):
        network = self._network()
        assert len(network.find_chain("a", "c")) == 2

    def test_propagation(self):
        network = self._network()
        result = network.propagate("a", "c")
        assert {r["k"] for r in result.rows("T")} == {1, 2}

    def test_collapsed_equals_propagated(self):
        network = self._network()
        hop_by_hop = network.propagate("a", "c")
        collapsed = network.propagate_collapsed("a", "c")
        restricted = Instance()
        restricted.relations["T"] = hop_by_hop.rows("T")
        assert collapsed.set_equal(restricted)

    def test_missing_chain(self):
        from repro.errors import MappingError

        network = self._network()
        with pytest.raises(MappingError):
            network.find_chain("c", "a")


class TestBatchLoader:
    def test_load_through_update_view(self):
        mapping = paper.figure2_mapping()
        loader = BatchLoader(mapping)
        loader.stage("Employee", [
            {"Id": 21, "Name": "Nia", "Dept": "QA"},
            {"Id": 22, "Name": "Oz", "Dept": "QA"},
        ])
        loader.stage("Customer", [
            {"Id": 23, "Name": "Pia", "CreditScore": 700, "BillingAddr": "a"},
        ])
        loaded, report = loader.flush()
        assert report.ok
        assert report.batches == 2 and report.target_rows == 3
        assert {r["Id"] for r in loaded.rows("Empl")} == {21, 22}
        assert {r["Id"] for r in loaded.rows("HR")} == {21, 22}
        assert {r["Id"] for r in loaded.rows("Client")} == {23}

    def test_validation_reports_duplicates(self):
        mapping = paper.figure2_mapping()
        loader = BatchLoader(mapping)
        loader.stage("Employee", [
            {"Id": 1, "Name": "A", "Dept": "X"},
            {"Id": 1, "Name": "B", "Dept": "Y"},
        ])
        _, report = loader.flush()
        assert not report.ok
        assert any("key violation" in v for v in report.violations)

    def test_append_to_existing(self):
        mapping = paper.figure2_mapping()
        loader = BatchLoader(mapping)
        loader.stage("Person", [{"Id": 30, "Name": "Quin"}])
        loaded, report = loader.flush(destination=paper.figure2_sql_instance())
        assert report.ok
        assert {r["Id"] for r in loaded.rows("HR")} == {1, 2, 3, 30}

    def test_tgd_mapping_rejected(self):
        mapping = Mapping(
            paper.figure6_s_schema(), paper.figure6_s_prime_schema(),
            [parse_tgd("Names(SID=s, Name=n) -> NamesP(SID=s, Name=n)")],
        )
        with pytest.raises(TransformationError):
            BatchLoader(mapping)
