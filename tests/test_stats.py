"""Statistics service: maintenance invariants and estimator rules.

The central invariant: however a relation got to its current rows —
appends absorbed in place, removals, clears, epoch bumps — the cached
:class:`RelationStats` the instance serves must equal the statistics
recomputed from scratch over the current rows.  The randomized test
drives arbitrary mutation sequences (including labeled nulls, SQL
nulls, ragged rows, and unhashable cells) and checks that equality
after every step.
"""

import random

import pytest

from repro.algebra import expressions as E
from repro.algebra import scalars as S
from repro.algebra.estimate import (
    divergence_ratio,
    estimate_expr,
    worst_divergent,
)
from repro.algebra.plan_cache import PlanCache
from repro.instances.database import Instance
from repro.instances.labeled_null import LabeledNull
from repro.observability.stats import (
    ColumnStats,
    ESTIMATION,
    RelationStats,
)


# ----------------------------------------------------------------------
# ColumnStats unit behavior
# ----------------------------------------------------------------------
def test_column_stats_basic_counts():
    stats = ColumnStats()
    for value in [1, 2, 2, None, LabeledNull("x"), 3]:
        stats.observe(value)
    assert stats.present == 6
    assert stats.nulls == 1
    assert stats.labeled == 1
    assert stats.non_null == 4
    assert stats.distinct == 3
    assert stats.frequency(2) == 2
    assert stats.frequency(99) == 0
    assert stats.lo == 1 and stats.hi == 3


def test_column_stats_never_observed_frequency_is_none():
    assert ColumnStats().frequency(1) is None


def test_column_stats_mixed_kinds_turn_ordering_off():
    stats = ColumnStats()
    stats.observe(1)
    stats.observe("a")
    assert stats.kind == "off"
    assert not stats.ordered
    assert stats.lo is None and stats.hi is None
    # Ordering stays off even if later values are homogeneous.
    stats.observe(5)
    assert not stats.ordered


def test_column_stats_string_minmax():
    stats = ColumnStats()
    for value in ["pear", "apple", "plum"]:
        stats.observe(value)
    assert stats.ordered
    assert stats.lo == "apple" and stats.hi == "plum"


def test_column_stats_unhashable_values_counted():
    stats = ColumnStats()
    stats.observe([1, 2])
    stats.observe([1, 2])
    stats.observe([3])
    assert stats.distinct == 2
    assert stats.frequency([1, 2]) == 2


def test_most_common_is_deterministic_and_bounded():
    stats = ColumnStats()
    for value in ["b", "a", "b", "c", "a", "b"]:
        stats.observe(value)
    assert stats.most_common(2) == [("b", 3), ("a", 2)]
    # Default size comes from the estimator config.
    ESTIMATION.mcv_size = 1
    assert stats.most_common() == [("b", 3)]


def test_relation_stats_null_fraction_counts_missing_columns():
    rs = RelationStats.from_rows(
        "r",
        [{"a": 1, "b": None}, {"a": 2}, {"a": LabeledNull("n"), "b": 3}],
    )
    assert rs.rows == 3
    assert rs.null_fraction("a") == pytest.approx(1 / 3)
    # b: one null + one missing row.
    assert rs.null_fraction("b") == pytest.approx(2 / 3)
    # Column never observed at all.
    assert rs.null_fraction("zzz") == 1.0


# ----------------------------------------------------------------------
# incremental maintenance == from scratch
# ----------------------------------------------------------------------
def _random_row(rng: random.Random) -> dict:
    row = {}
    for name in ("a", "b", "c"):
        if rng.random() < 0.3:
            continue  # ragged: column absent from this row
        roll = rng.random()
        if roll < 0.15:
            row[name] = None
        elif roll < 0.3:
            row[name] = LabeledNull(f"n{rng.randrange(5)}")
        elif roll < 0.6:
            row[name] = rng.randrange(8)
        elif roll < 0.85:
            row[name] = rng.choice(["x", "y", "z"])
        else:
            row[name] = [rng.randrange(3)]  # unhashable
    return row


def _assert_stats_fresh(instance: Instance) -> None:
    for relation in instance.relation_names():
        expected = RelationStats.from_rows(
            relation, instance.rows(relation)
        )
        assert instance.relation_stats(relation) == expected, relation


@pytest.mark.parametrize("seed", range(6))
def test_randomized_maintenance_matches_from_scratch(seed):
    rng = random.Random(seed)
    instance = Instance()
    relations = ("r", "s")
    for _ in range(60):
        relation = rng.choice(relations)
        action = rng.random()
        if action < 0.55:
            instance.insert_all(
                relation,
                [_random_row(rng) for _ in range(rng.randrange(1, 5))],
            )
        elif action < 0.75:
            rows = list(instance.rows(relation))
            if rows:
                victims = rng.sample(rows, rng.randrange(1, len(rows) + 1))
                instance.remove_rows(relation, victims)
        elif action < 0.85:
            instance.clear(relation)
        elif action < 0.95:
            instance.mark_dirty()
        # else: no mutation — exercise the cache-hit path
        if rng.random() < 0.5:
            _assert_stats_fresh(instance)
    _assert_stats_fresh(instance)


def test_stats_counters_follow_the_validation_contract():
    instance = Instance()
    instance.insert_all("r", [{"a": 1}, {"a": 2}])

    def deltas():
        before = dict(instance.index_stats)
        def diff():
            return {
                key: instance.index_stats[key] - before[key]
                for key in ("stats_hits", "stats_extends", "stats_rebuilds")
            }
        return diff

    diff = deltas()
    instance.relation_stats("r")  # cold: build
    assert diff() == {
        "stats_hits": 0, "stats_extends": 0, "stats_rebuilds": 1
    }

    diff = deltas()
    instance.relation_stats("r")  # warm: hit
    assert diff() == {
        "stats_hits": 1, "stats_extends": 0, "stats_rebuilds": 0
    }

    instance.insert("r", {"a": 3})
    diff = deltas()
    stats = instance.relation_stats("r")  # append: extend in place
    assert stats.rows == 3
    assert diff() == {
        "stats_hits": 0, "stats_extends": 1, "stats_rebuilds": 0
    }

    instance.remove_rows("r", [instance.rows("r")[0]])
    diff = deltas()
    stats = instance.relation_stats("r")  # removal: rebuild
    assert stats.rows == 2
    assert diff() == {
        "stats_hits": 0, "stats_extends": 0, "stats_rebuilds": 1
    }

    instance.mark_dirty()
    diff = deltas()
    instance.relation_stats("r")  # epoch bump: rebuild
    assert diff() == {
        "stats_hits": 0, "stats_extends": 0, "stats_rebuilds": 1
    }


def test_relation_stats_for_missing_relation_is_empty():
    stats = Instance().relation_stats("nope")
    assert stats.rows == 0
    assert stats.columns == {}


# ----------------------------------------------------------------------
# estimator rules
# ----------------------------------------------------------------------
@pytest.fixture
def people() -> Instance:
    instance = Instance()
    for i in range(100):
        instance.insert(
            "emp",
            {"id": i, "dept": i % 10, "name": f"n{i}", "salary": 1000 + i},
        )
    for d in range(10):
        instance.insert("dept", {"dept": d, "dname": f"d{d}"})
    return instance


def test_scan_estimate_is_row_count(people):
    assert estimate_expr(E.Scan("emp"), people) == 100.0
    assert estimate_expr(E.Scan("missing"), people) == 0.0


def test_equality_select_uses_exact_frequency(people):
    expr = E.Select(
        E.Scan("emp"), S.Comparison("=", S.Col("dept"), S.Lit(3))
    )
    assert estimate_expr(expr, people) == pytest.approx(10.0)
    absent = E.Select(
        E.Scan("emp"), S.Comparison("=", S.Col("dept"), S.Lit(99))
    )
    assert estimate_expr(absent, people) == 0.0


def test_range_select_interpolates_min_max(people):
    expr = E.Select(
        E.Scan("emp"), S.Comparison("<", S.Col("salary"), S.Lit(1050))
    )
    est = estimate_expr(expr, people)
    assert 40.0 <= est <= 60.0


def test_equijoin_divides_by_larger_distinct(people):
    join = E.Join(E.Scan("emp"), E.Scan("dept"), E._JoinEq("dept", "dept"))
    assert estimate_expr(join, people) == pytest.approx(100.0)


def test_left_join_estimates_at_least_left_rows(people):
    join = E.Join(
        E.Scan("emp"),
        E.Select(E.Scan("dept"), S.Comparison("=", S.Col("dname"),
                                               S.Lit("d3"))),
        E._JoinEq("dept", "dept"),
        kind="left",
    )
    assert estimate_expr(join, people) >= 100.0


def test_union_sums_and_distinct_caps(people):
    union = E.UnionAll(E.Scan("emp"), E.Scan("emp"))
    assert estimate_expr(union, people) == 200.0
    distinct = E.Distinct(
        E.Project(E.Scan("emp"), [("dept", S.Col("dept"))])
    )
    assert estimate_expr(distinct, people) == pytest.approx(10.0)


def test_aggregate_group_count(people):
    grouped = E.Aggregate(
        E.Scan("emp"), ["dept"], [("n", "count", None)]
    )
    assert estimate_expr(grouped, people) == pytest.approx(10.0)
    ungrouped = E.Aggregate(E.Scan("emp"), [], [("n", "count", None)])
    assert estimate_expr(ungrouped, people) == 1.0


def test_isnull_uses_null_fraction():
    instance = Instance()
    instance.insert_all(
        "r", [{"a": 1}, {"a": None}, {"a": None}, {"a": 2}]
    )
    expr = E.Select(E.Scan("r"), S.IsNull(S.Col("a")))
    assert estimate_expr(expr, instance) == pytest.approx(2.0)
    negated = E.Select(E.Scan("r"), S.IsNull(S.Col("a"), negated=True))
    assert estimate_expr(negated, instance) == pytest.approx(2.0)


def test_in_sums_frequencies(people):
    expr = E.Select(E.Scan("emp"), S.In(S.Col("dept"), [1, 2, 99]))
    assert estimate_expr(expr, people) == pytest.approx(20.0)


def test_divergence_ratio_symmetric():
    assert divergence_ratio(10.0, 10) == pytest.approx(1.0)
    assert divergence_ratio(99.0, 9) == pytest.approx(10.0)
    assert divergence_ratio(9.0, 99) == pytest.approx(10.0)
    assert divergence_ratio(0.0, 0) == 1.0


def test_annotate_plan_and_worst_divergent(people):
    cache = PlanCache()
    # A predicate the estimator scores badly on purpose: equality on a
    # computed column it has no statistics for.
    expr = E.Select(
        E.Scan("emp"), S.Comparison("=", S.Col("dept"), S.Lit(3))
    )
    plan, hit = cache.lookup(expr)
    assert not hit
    from repro.algebra.estimate import annotate_plan

    estimates = annotate_plan(plan, people)
    assert estimates == [node.est_rows for node in plan.nodes]
    assert all(est is not None for est in estimates)
    _, profile = plan.execute_profiled(people)
    worst = worst_divergent(plan.nodes, profile)
    assert worst is not None
    assert worst["ratio"] == pytest.approx(1.0)
    assert not worst["flagged"]

    # Shrink the divergence factor to force flagging on any mismatch.
    people.insert_all("emp", [{"dept": 3}] * 100)
    annotate_plan(plan, people)
    _, profile = plan.execute_profiled(people)
    ESTIMATION.divergence_factor = 1.0
    worst = worst_divergent(plan.nodes, profile)
    assert worst["flagged"]
