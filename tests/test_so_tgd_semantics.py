"""Regression tests for SO-tgd mapping semantics, including the
inverted-mapping case that once executed the SO-tgd against the wrong
side."""

import pytest

from repro.instances import Instance
from repro.logic import parse_tgd
from repro.logic.second_order import skolemize_all
from repro.mappings import Mapping, MappingLanguage
from repro.metamodel import INT, SchemaBuilder


def _so_mapping():
    a = SchemaBuilder("SA").entity("R", key=["k"]).attribute("k", INT).build()
    b = (
        SchemaBuilder("SB").entity("T", key=["k"])
        .attribute("k", INT).attribute("v", INT, nullable=True).build()
    )
    so = skolemize_all([parse_tgd("R(k=x) -> T(k=x, v=y)", name="m")])
    return Mapping(a, b, so, name="so_map")


class TestSoTgdHoldsFor:
    def test_holds_on_consistent_pair(self):
        mapping = _so_mapping()
        d1, d2 = Instance(), Instance()
        d1.add("R", k=1)
        d2.add("T", k=1, v=42)
        assert mapping.holds_for(d1, d2)

    def test_fails_when_target_missing(self):
        mapping = _so_mapping()
        d1 = Instance()
        d1.add("R", k=1)
        assert not mapping.holds_for(d1, Instance())

    def test_function_consistency_enforced(self):
        """Two body matches for the same arguments must map to the SAME
        target value (Skolem semantics): T rows with distinct v for one
        k satisfy it (hom picks one), but an empty slot does not."""
        mapping = _so_mapping()
        d1, d2 = Instance(), Instance()
        d1.add("R", k=1)
        d1.add("R", k=2)
        d2.add("T", k=1, v=10)
        assert not mapping.holds_for(d1, d2)  # k=2 unaccounted
        d2.add("T", k=2, v=20)
        assert mapping.holds_for(d1, d2)

    def test_inverted_so_mapping(self):
        """invert() transposes the relation: ⟨D2, D1⟩ ∈ invert(m) iff
        ⟨D1, D2⟩ ∈ m — including for SO-tgd mappings."""
        mapping = _so_mapping()
        inverted = mapping.invert()
        d1, d2 = Instance(), Instance()
        d1.add("R", k=1)
        d2.add("T", k=1, v=42)
        assert inverted.holds_for(d2, d1)
        # And the failing pair still fails after inversion.
        assert not inverted.holds_for(Instance(), d1)

    def test_language_reported(self):
        assert _so_mapping().language == MappingLanguage.SO_TGD
