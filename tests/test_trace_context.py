"""Trace-context propagation and adaptive sampling.

The tentpole contract: work fanned out to shard workers, p2p hop
threads, and the queued synchronizer joins the submitting request's
trace — one trace_id, one connected span tree — with head sampling
deterministic per root kind and tail-keep promoting slow/error traces.
"""

import copy
import threading

import pytest

import repro.observability as obs
from repro.instances import Instance
from repro.logic import chase, parse_tgd
from repro.mappings import Mapping
from repro.metamodel import INT, SchemaBuilder
from repro.observability import SAMPLER, TraceContext, tracer
from repro.observability.context import activate, capture, propagating
from repro.observability.sampling import Sampler
from repro.runtime.p2p import PeerNetwork
from repro.runtime.updates import UpdateSet


def _all_spans():
    return list(tracer.iter_spans())


def _assert_connected_single_trace(spans):
    """Every span shares one trace_id and every parent_id resolves —
    the tree has no orphans."""
    assert spans
    trace_ids = {s.trace_id for s in spans}
    assert len(trace_ids) == 1, f"expected one trace, got {trace_ids}"
    by_id = {s.span_id: s for s in spans}
    roots = [s for s in spans if s.parent_id is None]
    assert len(roots) == 1
    for span in spans:
        if span.parent_id is not None:
            assert span.parent_id in by_id, (
                f"{span.name} ({span.span_id}) orphaned: parent "
                f"{span.parent_id} not in tree"
            )
    return trace_ids.pop()


# ----------------------------------------------------------------------
# context capture / restore
# ----------------------------------------------------------------------
class TestTraceContext:
    def test_capture_returns_none_when_idle(self):
        obs.enable()
        assert capture() is None

    def test_capture_and_activate_cross_thread(self):
        obs.enable()
        seen = {}

        def worker(ctx):
            with activate(ctx):
                with obs.span("child.on.worker"):
                    pass
            seen["trace"] = tracer.roots[0].trace_id

        with obs.span("request") as root:
            ctx = capture()
            assert ctx.trace_id == root.trace_id
            thread = threading.Thread(target=worker, args=(ctx,))
            thread.start()
            thread.join()
        spans = _all_spans()
        assert [s.name for s in spans] == ["request", "child.on.worker"]
        _assert_connected_single_trace(spans)
        assert spans[1].thread != spans[0].thread

    def test_propagating_captures_at_wrap_time(self):
        obs.enable()
        with obs.span("request"):
            fn = propagating(lambda: obs.span("inner").__enter__())
        # Wrapped while the span was open: calls made later (span
        # closed, other thread) still join the captured context.
        thread = threading.Thread(target=fn)
        thread.start()
        thread.join()
        spans = _all_spans()
        assert {s.name for s in spans} == {"request", "inner"}
        assert len({s.trace_id for s in spans}) == 1

    def test_propagating_passthrough_without_context(self):
        obs.enable()
        fn = lambda: 42  # noqa: E731
        assert propagating(fn) is fn

    def test_activate_none_is_noop(self):
        obs.enable()
        with activate(None):
            with obs.span("solo"):
                pass
        assert tracer.roots[0].name == "solo"

    def test_nested_roots_get_distinct_trace_ids(self):
        obs.enable()
        with obs.span("first"):
            pass
        with obs.span("second"):
            pass
        assert len(tracer.trace_ids()) == 2

    def test_traceparent_rendering(self):
        obs.enable()
        with obs.span("request"):
            ctx = capture()
            header = ctx.traceparent()
        version, trace_id, span_id, flags = header.split("-")
        assert version == "00"
        assert len(trace_id) == 32 and trace_id == ctx.trace_id
        assert len(span_id) == 16
        assert flags == "01"

    def test_error_stamps_attribute(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("doomed"):
                raise ValueError("boom")
        assert tracer.roots[0].attributes["error"] == "ValueError"


# ----------------------------------------------------------------------
# adaptive sampling
# ----------------------------------------------------------------------
class TestSampler:
    def test_inactive_until_configured(self):
        sampler = Sampler()
        sampler.reset()
        if not sampler.active:  # env may force it on in the CI lane
            assert all(sampler.decide("query.execute") for _ in range(20))
            assert sampler.kept == 0  # inactive: no counters recorded

    def test_head_sampling_is_deterministic(self):
        sampler = Sampler()
        sampler.configure(default_rate=0.25)
        decisions = [sampler.decide("query.execute") for _ in range(8)]
        assert decisions == [True, False, False, False] * 2
        assert sampler.kept == 2 and sampler.dropped == 6

    def test_per_kind_rates_with_prefix_match(self):
        sampler = Sampler()
        sampler.configure(
            default_rate=1.0, rates={"query": 0.5, "query.execute": 0.0}
        )
        assert sampler.rate_for("query.execute") == 0.0    # exact
        assert sampler.rate_for("query.plan") == 0.5       # prefix
        assert sampler.rate_for("logic.chase") == 1.0      # default
        assert not sampler.decide("query.execute")
        assert sampler.decide("logic.chase")

    def test_env_parsing(self):
        from repro.observability.sampling import _parse_env

        assert _parse_env("") is None
        assert _parse_env("nonsense=x") is None
        assert _parse_env("0.25")["default"] == 0.25
        parsed = _parse_env("query.execute=0.1,default=0.5,tail_ms=99")
        assert parsed["rates"] == {"query.execute": 0.1}
        assert parsed["default"] == 0.5 and parsed["tail_ms"] == 99.0

    def test_head_dropped_root_not_kept(self):
        obs.enable()
        SAMPLER.configure(default_rate=0.5, tail_keep_ms=10_000.0)
        with obs.span("req"):
            pass
        with obs.span("req"):  # second of kind: dropped, fast, no error
            pass
        assert len(tracer.roots) == 1
        assert SAMPLER.snapshot()["dropped"] == 1

    def test_tail_keep_promotes_slow_trace(self):
        obs.enable()
        SAMPLER.configure(default_rate=0.5, tail_keep_ms=0.0)
        with obs.span("req"):
            pass
        with obs.span("req") as second:  # head-dropped, tail-promoted
            with obs.span("child"):
                pass
        assert len(tracer.roots) == 2
        assert second.sampled and second.children[0].sampled
        assert SAMPLER.snapshot()["tail_promoted"] == 1

    def test_tail_keep_promotes_error_trace(self):
        obs.enable()
        SAMPLER.configure(default_rate=0.5, tail_keep_ms=10_000.0)
        with obs.span("req"):
            pass
        with pytest.raises(RuntimeError):
            with obs.span("req"):
                raise RuntimeError("fail")
        assert len(tracer.roots) == 2
        assert tracer.roots[1].attributes["error"] == "RuntimeError"

    def test_children_inherit_drop_decision(self):
        obs.enable()
        SAMPLER.configure(default_rate=0.5, tail_keep_ms=10_000.0)
        with obs.span("req"):
            pass
        with obs.span("req") as root:
            with obs.span("child") as child:
                assert child.sampled is False
                assert child.trace_id == root.trace_id
        assert len(tracer.roots) == 1


# ----------------------------------------------------------------------
# cross-thread joins through the engine
# ----------------------------------------------------------------------
def _chain_db(rows=60, stages=2):
    db = Instance()
    db.insert_all("R0", [{"a": i, "b": i % 7} for i in range(rows)])
    deps = [
        parse_tgd(f"R{k}(a=x, b=y) -> R{k + 1}(a=x, b=y)")
        for k in range(stages)
    ]
    return db, deps


def _peer_network(peers=4, rows=30):
    network = PeerNetwork()
    schemas = []
    for i in range(peers):
        schemas.append(
            SchemaBuilder(f"P{i}").entity(f"R{i}", key=["k"])
            .attribute("k", INT).attribute("v", INT).build()
        )
        data = None
        if i == 0:
            data = Instance()
            for r in range(rows):
                data.add("R0", k=r, v=r * 2)
        network.add_peer(f"p{i}", schemas[i], data)
    for i in range(peers - 1):
        network.add_mapping(
            f"p{i}", f"p{i + 1}",
            Mapping(schemas[i], schemas[i + 1], [
                parse_tgd(f"R{i}(k=x, v=y) -> R{i + 1}(k=x, v=y)")
            ]),
        )
    return network


class TestCrossThreadJoins:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_chase_joins_request_trace(self, shards):
        obs.enable()
        SAMPLER.configure(default_rate=1.0)  # sampling active, keep-all
        db, deps = _chain_db()
        with obs.span("request"):
            chase(db, deps, shards=shards)
        spans = _all_spans()
        trace_id = _assert_connected_single_trace(spans)
        rounds = [s for s in spans if s.name == "chase.shard.round"]
        assert rounds, "no shard-round spans recorded"
        assert {s.attributes["shard"] for s in rounds} == set(range(shards))
        # Worker spans really ran on pool threads, not the caller.
        request = spans[0]
        assert any(s.thread != request.thread for s in rounds)
        assert all(s.trace_id == trace_id for s in rounds)
        chase_span = next(s for s in spans if s.name == "logic.chase")
        assert all(s.parent_id == chase_span.span_id for s in rounds)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_pipelined_p2p_joins_request_trace(self, shards, monkeypatch):
        monkeypatch.setenv("REPRO_CHASE_SHARDS", str(shards))
        obs.enable()
        SAMPLER.configure(default_rate=1.0)
        network = _peer_network()
        batches = [
            UpdateSet().insert("R0", k=100 + i, v=i) for i in range(6)
        ]
        with obs.span("request"):
            network.propagate_updates(
                "p0", "p3", [copy.deepcopy(b) for b in batches],
                queue_depth=2,
            )
        spans = _all_spans()
        trace_id = _assert_connected_single_trace(spans)
        hops = [s for s in spans if s.name == "runtime.p2p.hop"]
        assert {s.attributes["hop"] for s in hops} == {0, 1, 2}
        hop_threads = {s.thread for s in hops}
        assert hop_threads == {f"p2p-hop-{i}" for i in range(3)}
        assert all(s.trace_id == trace_id for s in hops)

    def test_queued_synchronizer_joins_submitter_trace(self):
        from repro.runtime.synchronization import (
            Endpoint,
            QueuedSynchronizer,
            Synchronizer,
        )
        from repro.workloads import paper

        mapping = paper.figure2_mapping()
        primary = Endpoint(mapping, paper.figure2_sql_instance(),
                           name="primary")
        replica = Endpoint(paper.figure2_mapping(),
                           Instance(mapping.source), name="replica")
        synchronizer = Synchronizer(primary, replica)
        synchronizer.add_rule("Customer")
        synchronizer.synchronize()

        obs.enable()
        obs.reset()  # drop spans recorded while wiring the synchronizer
        queued = QueuedSynchronizer(synchronizer, maxsize=2)
        template = dict(synchronizer.primary.source.rows("Client")[0])
        with obs.span("request"):
            for i in range(3):
                row = dict(template)
                row["Id"] = 1000 + i
                queued.submit(UpdateSet().insert("Client", **row))
            queued.drain()
        queued.close()
        spans = _all_spans()
        trace_id = _assert_connected_single_trace(spans)
        forwarded = [
            s for s in spans if s.thread == "sync-forwarder"
        ]
        assert forwarded, "no spans recorded on the forwarder thread"
        assert all(s.trace_id == trace_id for s in forwarded)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_end_to_end_exchange_feeding_p2p(self, shards, monkeypatch):
        """The acceptance scenario: a sharded exchange feeding
        pipelined p2p propagation yields ONE trace connecting the
        coordinator, all shard workers, and every hop thread, with
        journal events carrying that trace_id."""
        monkeypatch.setenv("REPRO_CHASE_SHARDS", str(shards))
        obs.enable()
        SAMPLER.configure(default_rate=1.0)
        from repro.observability.journal import JOURNAL

        network = _peer_network(rows=40)
        batches = [
            UpdateSet().insert("R0", k=200 + i, v=i) for i in range(8)
        ]
        with obs.span("request"):
            network.propagate_updates("p0", "p3", batches, queue_depth=1)
        spans = _all_spans()
        trace_id = _assert_connected_single_trace(spans)

        rounds = [s for s in spans if s.name == "chase.shard.round"]
        assert {s.attributes["shard"] for s in rounds} == set(range(shards))
        hops = [s for s in spans if s.name == "runtime.p2p.hop"]
        assert {s.thread for s in hops} == {
            f"p2p-hop-{i}" for i in range(3)
        }
        # ≥ 3 distinct threads participated in the one trace:
        # the caller, shard workers, and hop threads.
        assert len({s.thread for s in spans}) >= 3

        round_events = JOURNAL.events(kind="chase.round")
        assert round_events
        assert all(e.trace_id == trace_id for e in round_events)


# ----------------------------------------------------------------------
# trace_id plumbing into exports and the query log
# ----------------------------------------------------------------------
class TestTraceIdPlumbing:
    def test_span_export_includes_trace_id(self, tmp_path):
        import json

        obs.enable()
        with obs.span("request"):
            with obs.span("inner"):
                pass
        path = tracer.export_jsonl(tmp_path / "spans.jsonl")
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert len({r["trace_id"] for r in records}) == 1
        assert all(len(r["trace_id"]) == 32 for r in records)

    def test_query_log_entries_carry_trace_id(self):
        from repro.algebra import expressions as E
        from repro.algebra.evaluator import evaluate
        from repro.observability.querylog import QUERY_LOG

        inst = Instance()
        for i in range(10):
            inst.insert("t", {"a": i})
        obs.enable()
        with obs.span("request") as root:
            evaluate(E.Scan("t"), inst)
        entries = QUERY_LOG.entries()
        assert entries
        assert entries[-1].trace_id == root.trace_id
        assert entries[-1].to_dict()["trace_id"] == root.trace_id
