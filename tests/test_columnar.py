"""Columnar batch storage: layout invariants, the row-view boundary,
and the instance-level batch cache.

The batch is the columnar *image* of a row list — same multiset of
rows, observable through :meth:`ColumnBatch.to_rows` — so the central
property here is the round trip: ``from_rows`` → ``to_rows`` must
reproduce every row dict exactly, for homogeneous and ragged shapes,
labeled nulls, ``None`` cells, mixed-type columns and empty relations.
The cache tests pin the persistent-index maintenance contract that
:meth:`Instance.column_batch` shares with the (relation, attr)
indexes: appends extend in place, removals and ``mark_dirty`` force a
rebuild, and a clean re-read is a hit that returns the same object.
"""

import random

import pytest

from repro.instances import Instance, LabeledNull
from repro.instances.columnar import Column, ColumnBatch


# ----------------------------------------------------------------------
# randomized row ↔ columnar round trips
# ----------------------------------------------------------------------
def _random_cell(rng):
    roll = rng.random()
    if roll < 0.12:
        return None
    if roll < 0.24:
        return LabeledNull(rng.randint(0, 6))
    if roll < 0.45:
        return rng.randint(-5, 5)
    if roll < 0.60:
        return rng.choice(["x", "yy", "", "z"])
    if roll < 0.72:
        return rng.random()
    if roll < 0.82:
        return rng.choice([True, False])
    return (rng.randint(0, 3), rng.choice(["a", "b"]))


def _random_rows(rng):
    names = [f"c{i}" for i in range(rng.randint(1, 6))]
    rows = []
    for _ in range(rng.randint(0, 25)):
        if rng.random() < 0.5:
            keep = names  # homogeneous stretch
        else:
            keep = [n for n in names if rng.random() < 0.7]
        rows.append({n: _random_cell(rng) for n in keep})
    return rows


@pytest.mark.parametrize("seed", range(50))
def test_round_trip_random_rows(seed):
    rng = random.Random(seed)
    rows = _random_rows(rng)
    batch = ColumnBatch.from_rows(rows)
    assert len(batch) == len(rows)
    assert batch.to_rows() == rows
    # row_at agrees with the bulk boundary
    for i in range(len(rows)):
        assert batch.row_at(i) == rows[i]


@pytest.mark.parametrize("seed", range(25))
def test_round_trip_through_instance(seed):
    """The instance's cached batch observes exactly the stored rows —
    including rows appended after the batch was first built."""
    rng = random.Random(1000 + seed)
    db = Instance()
    first = _random_rows(rng)
    db.insert_all("R", first)
    assert db.column_batch("R").to_rows() == first
    tail = _random_rows(rng)
    db.insert_all("R", tail)
    assert db.column_batch("R").to_rows() == first + tail


def test_round_trip_empty_relation():
    assert ColumnBatch.from_rows([]).to_rows() == []
    db = Instance()
    batch = db.column_batch("nowhere")
    assert len(batch) == 0 and batch.to_rows() == []


def test_to_rows_builds_fresh_dicts():
    rows = [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
    batch = ColumnBatch.from_rows(rows)
    out = batch.to_rows()
    assert out == rows
    out[0]["a"] = 99
    assert batch.to_rows()[0]["a"] == 1
    assert rows[0]["a"] == 1


# ----------------------------------------------------------------------
# column-level invariants
# ----------------------------------------------------------------------
def test_null_mask_distinguishes_absent_from_null():
    rows = [{"a": None, "b": 1}, {"b": 2}, {"a": 3, "b": None}]
    batch = ColumnBatch.from_rows(rows)
    a = batch.cols["a"]
    assert not a.full and bytes(a.present) == b"\x01\x00\x01"
    # absent is not null: only row 0 holds a present SQL NULL
    assert bytes(a.null_mask()) == b"\x01\x00\x00"
    b = batch.cols["b"]
    assert b.full
    assert bytes(b.null_mask()) == b"\x00\x00\x01"


def test_labels_side_table_points_at_inline_nulls():
    n1, n2 = LabeledNull(1), LabeledNull(2)
    batch = ColumnBatch.from_rows(
        [{"a": n1}, {"a": 7}, {"a": n2}, {"a": None}]
    )
    col = batch.cols["a"]
    assert col.labels() == {0: n1, 2: n2}
    assert col.values[0] is n1  # inline, not tombstoned


def test_take_and_compress_normalize_full_masks():
    """Selections that drop every key-less row must yield a *full*
    column — downstream fast paths key off ``present is None``."""
    rows = [{"a": 1, "b": 1}, {"b": 2}, {"a": 3, "b": 3}]
    batch = ColumnBatch.from_rows(rows)
    assert not batch.cols["a"].full
    taken = batch.take([0, 2])
    assert taken.cols["a"].full and taken.to_rows() == [rows[0], rows[2]]
    squeezed = batch.compress([True, False, True])
    assert squeezed.cols["a"].full
    assert squeezed.to_rows() == [rows[0], rows[2]]
    partial = batch.take([0, 1])
    assert not partial.cols["a"].full
    assert partial.to_rows() == [rows[0], rows[1]]


def test_from_homogeneous_rows_matches_generic():
    rows = [{"a": i, "b": -i} for i in range(5)]
    shaped = ColumnBatch.from_homogeneous_rows(rows, ("a", "b"))
    assert shaped.to_rows() == ColumnBatch.from_rows(rows).to_rows()


def test_column_take_preserves_values_identity_semantics():
    marker = object()
    col = Column([marker, 1, 2])
    assert col.take([0]).values[0] is marker


# ----------------------------------------------------------------------
# instance batch cache: the persistent-index maintenance contract
# ----------------------------------------------------------------------
def _stats(db):
    return dict(db.index_stats)


def test_cache_hit_returns_same_object():
    db = Instance()
    db.insert_all("R", [{"a": 1}, {"a": 2}])
    first = db.column_batch("R")
    before = _stats(db)
    again = db.column_batch("R")
    assert again is first
    assert db.index_stats["hits"] == before["hits"] + 1


def test_append_extends_batch_in_place():
    db = Instance()
    db.insert_all("R", [{"a": 1}])
    batch = db.column_batch("R")
    db.insert("R", {"a": 2, "b": 9})
    before = _stats(db)
    grown = db.column_batch("R")
    assert grown is batch  # extended, not rebuilt
    assert db.index_stats["extends"] == before["extends"] + 1
    assert grown.to_rows() == [{"a": 1}, {"a": 2, "b": 9}]
    # the pre-existing column gained a presence mask for the old rows
    assert bytes(grown.cols["b"].present) == b"\x00\x01"


def test_remove_rows_drops_cache_and_rebuilds():
    db = Instance()
    db.insert_all("R", [{"a": 1}, {"a": 2}, {"a": 3}])
    stale = db.column_batch("R")
    victims = [row for row in db.rows("R") if row["a"] == 2]
    db.remove_rows("R", victims)
    before = _stats(db)
    fresh = db.column_batch("R")
    assert fresh is not stale
    assert db.index_stats["rebuilds"] == before["rebuilds"] + 1
    assert fresh.to_rows() == [{"a": 1}, {"a": 3}]


def test_mark_dirty_invalidates_batch():
    db = Instance()
    db.insert_all("R", [{"a": 1}])
    stale = db.column_batch("R")
    db.relations["R"][0]["a"] = 42  # declared in-place mutation
    db.mark_dirty()
    fresh = db.column_batch("R")
    assert fresh is not stale
    assert fresh.to_rows() == [{"a": 42}]


def test_clear_rebuilds_empty():
    db = Instance()
    db.insert_all("R", [{"a": 1}])
    db.column_batch("R")
    db.clear("R")
    assert db.column_batch("R").to_rows() == []
