"""Unit tests for instances: rows, labeled nulls, validation, generation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConstraintViolation, SchemaError
from repro.instances import (
    Instance,
    InstanceGenerator,
    LabeledNull,
    NullFactory,
    is_null,
    validate_instance,
    violations,
)
from repro.metamodel import INT, STRING, SchemaBuilder

from tests.test_metamodel_schema import person_hierarchy


def relational_schema():
    return (
        SchemaBuilder("DB", metamodel="relational")
        .entity("HR", key=["Id"]).attribute("Id", INT).attribute("Name", STRING)
        .entity("Empl", key=["Id"]).attribute("Id", INT).attribute("Dept", STRING)
        .foreign_key("Empl", ["Id"], "HR", ["Id"])
        .build()
    )


class TestLabeledNull:
    def test_equality_by_label(self):
        assert LabeledNull(1) == LabeledNull(1)
        assert LabeledNull(1) != LabeledNull(2)
        assert LabeledNull(1) != 1

    def test_hashable(self):
        assert len({LabeledNull(1), LabeledNull(1), LabeledNull(2)}) == 2

    def test_factory_is_fresh(self):
        factory = NullFactory()
        nulls = [factory.fresh() for _ in range(100)]
        assert len(set(nulls)) == 100

    def test_is_null(self):
        assert is_null(None)
        assert is_null(LabeledNull(3))
        assert not is_null(0)
        assert not is_null("")

    def test_sorts_after_constants(self):
        assert LabeledNull(1) > 99999
        assert not (LabeledNull(1) < 99999)


class TestInstanceBasics:
    def test_insert_and_rows(self):
        db = Instance()
        db.add("R", x=1, y="a")
        db.insert("R", {"x": 2, "y": "b"})
        assert db.cardinality("R") == 2
        assert db.rows("R")[0] == {"x": 1, "y": "a"}

    def test_missing_relation_is_empty(self):
        assert Instance().rows("nope") == []

    def test_bag_semantics_kept_but_set_equality(self):
        a, b = Instance(), Instance()
        a.add("R", x=1)
        a.add("R", x=1)
        b.add("R", x=1)
        assert a == b  # set semantics for comparison
        assert a.cardinality("R") == 2

    def test_deduplicated(self):
        db = Instance()
        db.add("R", x=1)
        db.add("R", x=1)
        assert db.deduplicated().cardinality("R") == 1

    def test_delete(self):
        db = Instance()
        db.add("R", x=1)
        db.add("R", x=2)
        removed = db.delete("R", lambda r: r["x"] == 1)
        assert len(removed) == 1
        assert db.rows("R") == [{"x": 2}]

    def test_union_and_contains(self):
        a, b = Instance(), Instance()
        a.add("R", x=1)
        b.add("R", x=2)
        u = a.union(b)
        assert u.contains_instance(a) and u.contains_instance(b)
        assert not a.contains_instance(u)

    def test_copy_is_deep(self):
        a = Instance()
        row = a.add("R", x=1)
        b = a.copy()
        row["x"] = 99
        assert b.rows("R") == [{"x": 1}]

    def test_active_domain_and_nulls(self):
        db = Instance()
        null = LabeledNull(7)
        db.add("R", x=1, y=null, z=None)
        assert db.active_domain() == {1}
        assert db.nulls() == {null}

    def test_substitute(self):
        db = Instance()
        n1, n2 = LabeledNull(1), LabeledNull(2)
        db.add("R", x=n1, y=n2)
        out = db.substitute({n1: 42})
        assert out.rows("R") == [{"x": 42, "y": n2}]

    def test_without_null_rows(self):
        db = Instance()
        db.add("R", x=1)
        db.add("R", x=LabeledNull(1))
        certain = db.without_null_rows()
        assert certain.rows("R") == [{"x": 1}]

    def test_show_renders(self):
        db = Instance()
        db.add("R", x=1, y="a")
        text = db.show()
        assert "R (1 rows)" in text and "x | y" in text


class TestTypedExtents:
    def test_insert_object_goes_to_root_extent(self):
        db = Instance(person_hierarchy())
        db.insert_object("Employee", Id=1, Name="Ann", Dept="QA")
        db.insert_object("Person", Id=2, Name="Bob")
        assert db.cardinality("Person") == 2
        assert [r["$type"] for r in db.rows("Person")] == ["Employee", "Person"]

    def test_objects_of_polymorphic(self):
        db = Instance(person_hierarchy())
        db.insert_object("Employee", Id=1, Name="Ann", Dept="QA")
        db.insert_object("Customer", Id=2, Name="Bob", CreditScore=700,
                         BillingAddr="X")
        db.insert_object("Person", Id=3, Name="Eve")
        assert len(db.objects_of("Person")) == 3
        assert len(db.objects_of("Person", strict=True)) == 1
        assert len(db.objects_of("Employee")) == 1

    def test_insert_object_rejects_unknown_attribute(self):
        db = Instance(person_hierarchy())
        with pytest.raises(SchemaError):
            db.insert_object("Person", Id=1, Name="A", Bogus=2)

    def test_insert_object_requires_schema(self):
        with pytest.raises(SchemaError):
            Instance().insert_object("Person", Id=1)


class TestValidation:
    def test_valid_instance(self):
        schema = relational_schema()
        db = Instance(schema)
        db.add("HR", Id=1, Name="Ann")
        db.add("Empl", Id=1, Dept="QA")
        assert violations(db) == []
        validate_instance(db)

    def test_type_violation(self):
        db = Instance(relational_schema())
        db.add("HR", Id="not-an-int", Name="Ann")
        assert any("conform" in v for v in violations(db))

    def test_missing_required(self):
        db = Instance(relational_schema())
        db.add("HR", Id=1)
        assert any("missing required" in v for v in violations(db))

    def test_key_violation(self):
        db = Instance(relational_schema())
        db.add("HR", Id=1, Name="Ann")
        db.add("HR", Id=1, Name="Bob")
        assert any("key violation" in v for v in violations(db))

    def test_foreign_key_violation(self):
        db = Instance(relational_schema())
        db.add("Empl", Id=9, Dept="QA")
        assert any("inclusion violation" in v for v in violations(db))
        with pytest.raises(ConstraintViolation):
            validate_instance(db)

    def test_undeclared_relation(self):
        db = Instance(relational_schema())
        db.add("Ghost", x=1)
        assert any("not declared" in v for v in violations(db))

    def test_disjointness_violation(self):
        schema = person_hierarchy()
        db = Instance(schema)
        db.insert_object("Employee", Id=1, Name="A", Dept="QA")
        db.insert_object("Customer", Id=1, Name="A", CreditScore=1,
                         BillingAddr="x")
        assert any("disjointness" in v for v in violations(db))

    def test_nullable_attribute_accepts_none(self):
        schema = (
            SchemaBuilder("S", metamodel="relational")
            .entity("R", key=["Id"]).attribute("Id", INT)
            .attribute("Opt", STRING, nullable=True)
            .build()
        )
        db = Instance(schema)
        db.add("R", Id=1, Opt=None)
        assert violations(db) == []

    def test_labeled_nulls_pass_type_checks(self):
        db = Instance(relational_schema())
        db.add("HR", Id=1, Name=LabeledNull(1))
        assert violations(db) == []


class TestGenerator:
    def test_generated_instance_is_valid(self):
        schema = relational_schema()
        db = InstanceGenerator(schema, seed=1).generate(rows_per_entity=50)
        assert violations(db) == []
        assert db.cardinality("HR") == 50

    def test_deterministic(self):
        schema = relational_schema()
        a = InstanceGenerator(schema, seed=7).generate(30)
        b = InstanceGenerator(schema, seed=7).generate(30)
        assert a == b

    def test_different_seeds_differ(self):
        schema = relational_schema()
        a = InstanceGenerator(schema, seed=1).generate(30)
        b = InstanceGenerator(schema, seed=2).generate(30)
        assert a != b

    def test_per_entity_override(self):
        schema = relational_schema()
        db = InstanceGenerator(schema).generate(10, per_entity={"HR": 25})
        assert db.cardinality("HR") == 25
        assert db.cardinality("Empl") == 10

    def test_hierarchy_generation(self):
        schema = person_hierarchy()
        db = InstanceGenerator(schema, seed=3).generate(60)
        types = {r["$type"] for r in db.rows("Person")}
        assert types == {"Person", "Employee", "Customer"}
        assert violations(db) == []

    @given(st.integers(min_value=0, max_value=40), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_generator_always_valid(self, n, seed):
        schema = relational_schema()
        db = InstanceGenerator(schema, seed=seed).generate(n)
        assert violations(db) == []
