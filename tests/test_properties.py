"""Cross-cutting property-based tests on the engine's core invariants.

Each property is a theorem the implementation must satisfy; hypothesis
searches for counterexamples:

* chase confluence — the order of dependencies does not change the
  result up to homomorphic equivalence (universal solutions are unique
  up to homomorphism);
* core idempotence and hom-equivalence;
* composition semantics — exchanging through the composed mapping
  equals the two-step exchange, up to homomorphic equivalence;
* composition associativity on copy-style chains;
* invert is an involution; quasi-inverse recovers the certain part;
* roundtripping of ModelGen+TransGen views on random hierarchy data;
* serialization is lossless for random schemas.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.instances import Instance, InstanceGenerator
from repro.logic import chase, core_of, parse_tgd
from repro.logic.homomorphism import are_hom_equivalent, instance_homomorphism
from repro.mappings import Mapping
from repro.metamodel import INT, SchemaBuilder
from repro.metamodels import schema_from_dict, schema_to_dict
from repro.operators import (
    InheritanceStrategy,
    compose,
    modelgen,
    quasi_inverse,
    transgen,
)
from repro.workloads import synthetic

# ----------------------------------------------------------------------
# chase properties
# ----------------------------------------------------------------------
_TGD_POOL = [
    parse_tgd("A(x=v) -> B(x=v)", name="t1"),
    parse_tgd("B(x=v) -> C(x=v, y=w)", name="t2"),
    parse_tgd("A(x=v) & B(x=v) -> D(x=v)", name="t3"),
    parse_tgd("C(x=v, y=w) -> E(y=w)", name="t4"),
    parse_tgd("D(x=v) -> C(x=v, y=0)", name="t5"),
]


@given(
    st.permutations(_TGD_POOL),
    st.lists(st.integers(0, 4), min_size=0, max_size=6),
)
@settings(max_examples=40, deadline=None)
def test_chase_confluence(order, values):
    """Universal solutions are unique up to homomorphic equivalence,
    whatever the firing order."""
    db = Instance()
    for value in values:
        db.add("A", x=value)
    first = chase(db, list(order)).instance
    second = chase(db, _TGD_POOL).instance
    assert are_hom_equivalent(first, second)


@given(st.lists(st.integers(0, 3), min_size=0, max_size=5))
@settings(max_examples=30, deadline=None)
def test_core_is_idempotent_and_equivalent(values):
    db = Instance()
    for value in values:
        db.add("S", a=value)
    chased = chase(db, [
        parse_tgd("S(a=x) -> T(a=x, b=y)"),
        parse_tgd("S(a=x) -> T(a=x, b=1)"),
    ]).instance
    target = Instance()
    target.relations["T"] = chased.relations.get("T", [])
    core = core_of(target)
    assert are_hom_equivalent(core, target)
    again = core_of(core)
    assert again.total_rows() == core.total_rows()


# ----------------------------------------------------------------------
# composition properties
# ----------------------------------------------------------------------
def _chain_schemas():
    def flat(name, rel):
        return (
            SchemaBuilder(name).entity(rel, key=[f"{rel}_k"])
            .attribute(f"{rel}_k", INT).attribute(f"{rel}_v", INT).build()
        )

    return flat("CA", "R"), flat("CB", "S"), flat("CC", "T"), flat("CD", "U")


_M12_VARIANTS = [
    "R(R_k=x, R_v=y) -> S(S_k=x, S_v=y)",       # copy
    "R(R_k=x, R_v=y) -> S(S_k=x, S_v=e)",       # invent v
    "R(R_k=x, R_v=y) -> S(S_k=y, S_v=x)",       # swap
]
_M23_VARIANTS = [
    "S(S_k=x, S_v=y) -> T(T_k=x, T_v=y)",
    "S(S_k=x, S_v=y) -> T(T_k=x, T_v=x)",
]


@given(
    st.sampled_from(_M12_VARIANTS),
    st.sampled_from(_M23_VARIANTS),
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3)),
        min_size=0, max_size=5,
    ),
)
@settings(max_examples=40, deadline=None)
def test_composition_equals_two_step_exchange(m12_text, m23_text, rows):
    a, b, c, _ = _chain_schemas()
    m12 = Mapping(a, b, [parse_tgd(m12_text)])
    m23 = Mapping(b, c, [parse_tgd(m23_text)])
    composed = compose(m12, m23, prefer_first_order=False)

    source = Instance()
    for k, v in rows:
        source.add("R", R_k=k, R_v=v)
    step1 = chase(source, m12.tgds).instance
    step2 = chase(step1, m23.tgds).instance
    two_step = Instance()
    two_step.relations["T"] = step2.relations.get("T", [])

    from repro.logic.second_order import execute_so_tgd
    from repro.logic.second_order import skolemize_all

    so = composed.so_tgd or skolemize_all(composed.tgds)
    direct = execute_so_tgd(so, source)
    one_step = Instance()
    one_step.relations["T"] = direct.relations.get("T", [])
    assert are_hom_equivalent(two_step, one_step)


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                min_size=0, max_size=4))
@settings(max_examples=25, deadline=None)
def test_composition_associativity(rows):
    """(m12 ∘ m23) ∘ m34 and m12 ∘ (m23 ∘ m34) agree on exchange."""
    a, b, c, d = _chain_schemas()
    m12 = Mapping(a, b, [parse_tgd("R(R_k=x, R_v=y) -> S(S_k=x, S_v=y)")])
    m23 = Mapping(b, c, [parse_tgd("S(S_k=x, S_v=y) -> T(T_k=x, T_v=e)")])
    m34 = Mapping(c, d, [parse_tgd("T(T_k=x, T_v=y) -> U(U_k=x, U_v=y)")])
    left = compose(compose(m12, m23), m34)
    right = compose(m12, compose(m23, m34))

    source = Instance()
    for k, v in rows:
        source.add("R", R_k=k, R_v=v)
    left_result = chase(source, left.tgds).instance
    right_result = chase(source, right.tgds).instance
    left_u, right_u = Instance(), Instance()
    left_u.relations["U"] = left_result.relations.get("U", [])
    right_u.relations["U"] = right_result.relations.get("U", [])
    assert are_hom_equivalent(left_u, right_u)


# ----------------------------------------------------------------------
# inverse properties
# ----------------------------------------------------------------------
def test_invert_is_involution():
    from repro.workloads import paper

    mapping = paper.figure6_map_s_sprime()
    twice = mapping.invert().invert()
    assert twice.source.name == mapping.source.name
    assert twice.constraints == mapping.constraints


@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                min_size=1, max_size=5, unique_by=lambda t: t[0]))
@settings(max_examples=30, deadline=None)
def test_quasi_inverse_recovers_certain_part(rows):
    """Forward-then-backward exchange preserves what the mapping kept:
    the original is homomorphically embeddable in the recovery."""
    a, b, _, _ = _chain_schemas()
    lossy = Mapping(a, b, [parse_tgd("R(R_k=x, R_v=y) -> S(S_k=x)")])
    backward = quasi_inverse(lossy)
    source = Instance()
    for k, v in rows:
        source.add("R", R_k=k, R_v=v)
    forward = chase(source, lossy.tgds).instance
    target_only = Instance()
    target_only.relations["S"] = forward.relations.get("S", [])
    recovered = chase(target_only, backward.tgds).instance
    recovered_r = Instance()
    recovered_r.relations["R"] = recovered.relations.get("R", [])
    # The key column must round-trip exactly:
    assert {r["R_k"] for r in recovered_r.rows("R")} == {
        r["R_k"] for r in source.rows("R")
    }
    # And every recovered value column is an unknown (labeled null) —
    # the mapping dropped it, so the inverse cannot invent it.
    from repro.instances import LabeledNull

    assert all(
        isinstance(r["R_v"], LabeledNull) for r in recovered_r.rows("R")
    )


# ----------------------------------------------------------------------
# modelgen/transgen roundtripping on random data
# ----------------------------------------------------------------------
@given(
    st.sampled_from(list(InheritanceStrategy)),
    st.integers(min_value=0, max_value=2**16),
    st.integers(min_value=1, max_value=30),
)
@settings(max_examples=25, deadline=None)
def test_views_roundtrip_random_hierarchy_data(strategy, seed, rows):
    schema = synthetic.inheritance_schema("P", depth=2, branching=2,
                                          attributes_per_entity=1)
    views = transgen(modelgen(schema, "relational", strategy).mapping)
    db = InstanceGenerator(schema, seed=seed).generate(rows)
    views.verify_roundtrip(db)


# ----------------------------------------------------------------------
# serialization losslessness on random schemas
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=2**16),
       st.integers(min_value=1, max_value=3))
@settings(max_examples=25, deadline=None)
def test_serialization_roundtrip_random_schema(seed, depth):
    schema = synthetic.snowflake_schema("Rand", depth=depth, branching=2,
                                        attributes_per_entity=3, seed=seed)
    data = schema_to_dict(schema)
    assert schema_to_dict(schema_from_dict(data)) == data
