"""Additional tool-layer coverage: mediator CQ answering and plans,
report filters, ETL edge cases."""

import pytest

from repro.algebra import Col, Scan, gt, project_names
from repro.errors import MappingError
from repro.instances import Instance
from repro.logic import parse_query, parse_tgd
from repro.mappings import Mapping
from repro.metamodel import INT, STRING, SchemaBuilder
from repro.tools import EtlPipeline, QueryMediator, ReportSpec, ReportWriter
from repro.workloads import paper


def _global_and_sources():
    global_schema = (
        SchemaBuilder("Gl").entity("People", key=["id"])
        .attribute("id", INT).attribute("name", STRING).build()
    )
    s1 = (
        SchemaBuilder("Sa").entity("Emp", key=["id"])
        .attribute("id", INT).attribute("name", STRING).build()
    )
    m1 = Mapping(s1, global_schema,
                 [parse_tgd("Emp(id=i, name=n) -> People(id=i, name=n)")])
    d1 = Instance()
    d1.add("Emp", id=1, name="Ann")
    return global_schema, s1, m1, d1


class TestMediatorExtras:
    def test_answer_cq(self):
        global_schema, _, m1, d1 = _global_and_sources()
        mediator = QueryMediator(global_schema)
        mediator.add_source("hr", m1, d1)
        answers = mediator.answer_cq(
            parse_query("q(n) :- People(id=i, name=n)")
        )
        assert answers == [("Ann",)]

    def test_explain_reports_plans(self):
        global_schema, _, m1, d1 = _global_and_sources()
        mediator = QueryMediator(global_schema)
        mediator.add_source("hr", m1, d1)
        plans = mediator.explain(project_names(Scan("People"), ["id"]))
        assert "hr" in plans

    def test_refresh_replaces_data(self):
        global_schema, _, m1, d1 = _global_and_sources()
        mediator = QueryMediator(global_schema)
        mediator.add_source("hr", m1, d1)
        fresh = Instance()
        fresh.add("Emp", id=9, name="New")
        mediator.refresh("hr", fresh)
        rows = mediator.answer(project_names(Scan("People"), ["id"]))
        assert [r["id"] for r in rows] == [9]

    def test_wrong_target_schema_rejected(self):
        global_schema, s1, m1, d1 = _global_and_sources()
        other = (
            SchemaBuilder("Other").entity("X", key=["id"])
            .attribute("id", INT).build()
        )
        mediator = QueryMediator(other)
        with pytest.raises(MappingError):
            mediator.add_source("hr", m1, d1)

    def test_duplicate_source_rejected(self):
        global_schema, _, m1, d1 = _global_and_sources()
        mediator = QueryMediator(global_schema)
        mediator.add_source("hr", m1, d1)
        with pytest.raises(MappingError):
            mediator.add_source("hr", m1, d1)


class TestReportExtras:
    def test_where_filter(self):
        writer = ReportWriter(paper.figure2_mapping(),
                              paper.figure2_sql_instance())
        spec = ReportSpec(
            entity="Customer", columns=["Id", "Name"], typed=True,
            where=gt(Col("CreditScore"), 650),
        )
        rows = writer.rows(spec)
        assert [r["Name"] for r in rows] == ["Dave"]

    def test_group_by_with_order(self):
        writer = ReportWriter(paper.figure2_mapping(),
                              paper.figure2_sql_instance())
        spec = ReportSpec(
            entity="Employee", columns=[], typed=True,
            group_by=["Dept"],
            aggregations=[("n", "count", None)],
            order_by=["Dept"],
        )
        rows = writer.rows(spec)
        assert [r["Dept"] for r in rows] == ["Engineering", "Sales"]

    def test_csv_escaping(self):
        writer = ReportWriter(paper.figure2_mapping(),
                              paper.figure2_sql_instance())
        db = paper.figure2_sql_instance()
        # Route through a raw writer to exercise the escaping helper.
        from repro.tools.report import _csv_cell

        assert _csv_cell('say "hi", ok') == '"say ""hi"", ok"'
        assert _csv_cell(None) == ""
        assert _csv_cell(1.5) == "1.50"


class TestEtlExtras:
    def test_empty_source(self):
        s = SchemaBuilder("Ea").entity("R", key=["k"]).attribute("k", INT).build()
        t = SchemaBuilder("Eb").entity("T", key=["k"]).attribute("k", INT).build()
        pipeline = EtlPipeline().add_step(
            Mapping(s, t, [parse_tgd("R(k=x) -> T(k=x)")])
        )
        result, stats = pipeline.run(Instance(s))
        assert result.total_rows() == 0

    def test_batching_covers_all_rows(self):
        s = SchemaBuilder("Ec").entity("R", key=["k"]).attribute("k", INT).build()
        t = SchemaBuilder("Ed").entity("T", key=["k"]).attribute("k", INT).build()
        pipeline = EtlPipeline().add_step(
            Mapping(s, t, [parse_tgd("R(k=x) -> T(k=x)")])
        )
        source = Instance(s)
        for i in range(23):
            source.add("R", k=i)
        for batch_size in (1, 7, 23, 100):
            result, _ = pipeline.run(source, batch_size=batch_size)
            assert result.cardinality("T") == 23, batch_size

    def test_deduplicate_flag(self):
        s = SchemaBuilder("Ee").entity("R", key=["k"]).attribute("k", INT).build()
        t = SchemaBuilder("Ef").entity("T", key=["k"]).attribute("k", INT).build()
        mapping = Mapping(s, t, [parse_tgd("R(k=x) -> T(k=x)")])
        source = Instance(s)
        source.add("R", k=1)
        source.add("R", k=1)
        result, _ = EtlPipeline().add_step(mapping).run(source)
        assert result.cardinality("T") == 1
