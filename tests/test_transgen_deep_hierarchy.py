"""Adversarial TransGen tests: hand-written (not ModelGen-generated)
mappings over a three-level hierarchy, in the paper's Figure 2 custom
style where tables hold *unions of types* rather than clean per-type
fragments.

Hierarchy: Person ⊃ Employee ⊃ Manager, and Person ⊃ Customer.
Tables (deliberately Figure-2-ish):

* ``People``  — Id, Name of everyone **except** customers;
* ``Staff``   — Id, Dept of employees and managers;
* ``Bosses``  — Id, Reports of managers only;
* ``Clients`` — Id, Name, Score of customers only.

Fragment patterns: Person {People}, Employee {People, Staff},
Manager {People, Staff, Bosses}, Customer {Clients} — reconstruction
needs chained joins *and* chained anti-joins.
"""

import pytest

from repro.algebra import (
    Col,
    EntityScan,
    IsOf,
    Or,
    Project,
    Scan,
    Select,
    project_names,
)
from repro.instances import Instance
from repro.mappings import EqualityConstraint, Mapping
from repro.metamodel import INT, STRING, SchemaBuilder
from repro.operators import transgen


def deep_er_schema():
    return (
        SchemaBuilder("DeepER", metamodel="er")
        .entity("Person", key=["Id"])
        .attribute("Id", INT)
        .attribute("Name", STRING)
        .entity("Employee", parent="Person")
        .attribute("Dept", STRING)
        .entity("Manager", parent="Employee")
        .attribute("Reports", INT)
        .entity("Customer", parent="Person")
        .attribute("Score", INT)
        .build()
    )


def deep_sql_schema():
    return (
        SchemaBuilder("DeepSQL", metamodel="relational")
        .entity("People", key=["Id"])
        .attribute("Id", INT).attribute("Name", STRING)
        .entity("Staff", key=["Id"])
        .attribute("Id", INT).attribute("Dept", STRING)
        .entity("Bosses", key=["Id"])
        .attribute("Id", INT).attribute("Reports", INT)
        .entity("Clients", key=["Id"])
        .attribute("Id", INT).attribute("Name", STRING)
        .attribute("Score", INT)
        .build()
    )


def deep_mapping() -> Mapping:
    sql, er = deep_sql_schema(), deep_er_schema()
    c_people = EqualityConstraint(
        source_expr=project_names(Scan("People"), ["Id", "Name"]),
        target_expr=Project(
            Select(
                EntityScan("Person"),
                Or(IsOf("Person", only=True), IsOf("Employee")),
            ),
            [("Id", Col("Id")), ("Name", Col("Name"))],
        ),
        name="People",
    )
    c_staff = EqualityConstraint(
        source_expr=project_names(Scan("Staff"), ["Id", "Dept"]),
        target_expr=Project(
            Select(EntityScan("Person"), IsOf("Employee")),
            [("Id", Col("Id")), ("Dept", Col("Dept"))],
        ),
        name="Staff",
    )
    c_bosses = EqualityConstraint(
        source_expr=project_names(Scan("Bosses"), ["Id", "Reports"]),
        target_expr=Project(
            Select(EntityScan("Person"), IsOf("Manager")),
            [("Id", Col("Id")), ("Reports", Col("Reports"))],
        ),
        name="Bosses",
    )
    c_clients = EqualityConstraint(
        source_expr=project_names(Scan("Clients"), ["Id", "Name", "Score"]),
        target_expr=Project(
            Select(EntityScan("Person"), IsOf("Customer")),
            [("Id", Col("Id")), ("Name", Col("Name")),
             ("Score", Col("Score"))],
        ),
        name="Clients",
    )
    return Mapping(sql, er, [c_people, c_staff, c_bosses, c_clients],
                   name="deep")


def er_sample() -> Instance:
    db = Instance(deep_er_schema())
    db.insert_object("Person", Id=1, Name="Plain")
    db.insert_object("Employee", Id=2, Name="Emp", Dept="QA")
    db.insert_object("Manager", Id=3, Name="Mgr", Dept="Eng", Reports=7)
    db.insert_object("Customer", Id=4, Name="Cust", Score=650)
    return db


class TestDeepHierarchy:
    def test_update_view_table_contents(self):
        views = transgen(deep_mapping())
        tables = views.update_view.apply(er_sample())
        assert {r["Id"] for r in tables.rows("People")} == {1, 2, 3}
        assert {r["Id"] for r in tables.rows("Staff")} == {2, 3}
        assert {r["Id"] for r in tables.rows("Bosses")} == {3}
        assert {r["Id"] for r in tables.rows("Clients")} == {4}

    def test_query_view_reconstructs_all_four_types(self):
        views = transgen(deep_mapping())
        tables = views.update_view.apply(er_sample())
        entities = views.query_view.apply(tables)
        by_id = {r["Id"]: r["$type"] for r in entities.rows("Person")}
        assert by_id == {1: "Person", 2: "Employee", 3: "Manager",
                         4: "Customer"}

    def test_manager_keeps_all_inherited_attributes(self):
        views = transgen(deep_mapping())
        tables = views.update_view.apply(er_sample())
        entities = views.query_view.apply(tables)
        manager = next(r for r in entities.rows("Person") if r["Id"] == 3)
        assert manager == {"$type": "Manager", "Id": 3, "Name": "Mgr",
                           "Dept": "Eng", "Reports": 7}

    def test_roundtrip(self):
        transgen(deep_mapping()).verify_roundtrip(er_sample())

    def test_mapping_holds_on_generated_tables(self):
        views = transgen(deep_mapping())
        er = er_sample()
        tables = views.update_view.apply(er)
        assert deep_mapping().holds_for(tables, er)

    def test_constraints_reject_inconsistent_pair(self):
        views = transgen(deep_mapping())
        er = er_sample()
        tables = views.update_view.apply(er)
        tables.add("Bosses", Id=2, Reports=1)  # employee posing as manager
        assert not deep_mapping().holds_for(tables, er)

    def test_roundtrip_with_many_objects(self):
        db = Instance(deep_er_schema())
        for i in range(60):
            kind = i % 4
            if kind == 0:
                db.insert_object("Person", Id=i, Name=f"P{i}")
            elif kind == 1:
                db.insert_object("Employee", Id=i, Name=f"E{i}",
                                 Dept=f"D{i % 3}")
            elif kind == 2:
                db.insert_object("Manager", Id=i, Name=f"M{i}",
                                 Dept=f"D{i % 3}", Reports=i % 5)
            else:
                db.insert_object("Customer", Id=i, Name=f"C{i}",
                                 Score=500 + i)
        transgen(deep_mapping()).verify_roundtrip(db)

    def test_query_processor_over_deep_mapping(self):
        from repro.runtime import QueryProcessor

        views = transgen(deep_mapping())
        tables = views.update_view.apply(er_sample())
        processor = QueryProcessor(deep_mapping(), tables)
        rows = processor.answer_algebra(
            project_names(
                Select(EntityScan("Person"), IsOf("Employee")), ["Id"]
            )
        )
        assert {r["Id"] for r in rows} == {2, 3}  # managers are employees
        only_managers = processor.answer_algebra(
            project_names(
                Select(EntityScan("Person"), IsOf("Manager")), ["Id"]
            )
        )
        assert {r["Id"] for r in only_managers} == {3}
