"""A larger end-to-end scenario: an 'enterprise-sized' schema driven
through the full engine loop — the closest thing to the paper's
deployment story, run as one test module.

The scenario: a 14-entity operational schema evolves and must be
(1) matched against its renamed successor, (2) mapped, (3) migrated,
(4) the mapping composed with a second evolution step, (5) queried and
maintained at the target, with the results validated at every stage.
"""

import pytest

from repro import ModelManagementEngine
from repro.instances import Instance, InstanceGenerator, violations
from repro.mappings import CorrespondenceSet, interpret_as_tgds
from repro.operators.match import MatchConfig, evaluate_against_truth
from repro.workloads import synthetic


@pytest.fixture(scope="module")
def engine():
    return ModelManagementEngine()


@pytest.fixture(scope="module")
def world():
    """Base schema (snowflake, 14 entities), its perturbed successor,
    ground truth, and generated data."""
    base = synthetic.snowflake_schema("Ops", depth=2, branching=3,
                                      attributes_per_entity=3, seed=42)
    assert len(base.entities) == 13
    successor, truth = synthetic.perturbed_copy(base, rename_probability=0.5,
                                                seed=43,
                                                distinct_entity_names=True)
    data = InstanceGenerator(base, seed=44).generate(rows_per_entity=40)
    return base, successor, truth, data


def test_schema_is_well_formed(engine, world):
    base, successor, _, data = world
    assert engine.validate_schema(base) == []
    assert engine.validate_schema(successor) == []
    assert violations(data, base) == []


def test_match_finds_most_of_the_truth(engine, world):
    base, successor, truth, _ = world
    candidates = engine.match(base, successor,
                              MatchConfig(top_k=3, threshold=0.1))
    quality = evaluate_against_truth(candidates, truth)
    assert quality.top_k_hit_rate > 0.75
    assert quality.recall > 0.55


def test_truth_mapping_migrates_all_rows(engine, world):
    base, successor, truth, data = world
    correspondences = CorrespondenceSet(base, successor)
    for source_path, target_path in sorted(truth):
        correspondences.add_pair(source_path, target_path)
    mapping = interpret_as_tgds(correspondences)
    migrated = engine.exchange(mapping, data)
    # Every source entity's rows arrive at its renamed successor.
    for source_entity, target_entity in sorted(
        correspondences.entity_pairs()
    ):
        assert migrated.cardinality(target_entity) >= data.cardinality(
            source_entity
        )
    migrated.schema = successor
    problems = violations(migrated, successor)
    # Migrated rows may carry labeled nulls for dropped/unknown columns
    # but must not violate keys.
    assert not any("key violation" in p for p in problems)


def test_second_evolution_composes(engine, world):
    base, successor, truth, data = world
    correspondences = CorrespondenceSet(base, successor)
    for source_path, target_path in sorted(truth):
        correspondences.add_pair(source_path, target_path)
    step1 = interpret_as_tgds(correspondences)
    # Second step: identity copy of the successor to itself (renamed).
    final, truth2 = synthetic.perturbed_copy(successor,
                                             rename_probability=0.0,
                                             seed=45, name="Final",
                                             distinct_entity_names=True)
    correspondences2 = CorrespondenceSet(successor, final)
    for source_path, target_path in sorted(truth2):
        correspondences2.add_pair(source_path, target_path)
    step2 = interpret_as_tgds(correspondences2)
    composed = engine.compose(step1, step2)
    assert composed.source.name == base.name
    assert composed.target.name == "Final"
    direct = engine.exchange(composed, data)
    two_step = engine.exchange(step2, engine.exchange(step1, data))
    for relation in final.entities:
        assert direct.cardinality(relation) == two_step.cardinality(relation)


def test_materialized_target_tracks_inserts(engine, world):
    base, successor, truth, data = world
    correspondences = CorrespondenceSet(base, successor)
    for source_path, target_path in sorted(truth):
        correspondences.add_pair(source_path, target_path)
    mapping = interpret_as_tgds(correspondences)
    materialized = engine.materialized_target(mapping, data)
    baseline = materialized.target.total_rows()
    from repro.runtime import UpdateSet

    fact_row = dict(data.rows("fact")[0])
    fact_row["fact_id"] = 10**9
    delta = materialized.on_source_change(
        UpdateSet().insert("fact", **fact_row)
    )
    assert not delta.recomputed
    assert materialized.target.total_rows() == baseline + 1


def test_facade_service_accessors(engine, world):
    from repro.workloads import paper

    mapping = paper.figure2_mapping()
    db = paper.figure2_sql_instance()
    index = engine.keyword_index(mapping, db)
    assert index.search("Sales")
    session = engine.incremental_matcher(
        paper.figure4_source_schema(), paper.figure4_target_schema()
    )
    assert session.next_undecided() is not None
    from repro.runtime import Endpoint

    primary = Endpoint(mapping, db)
    replica = Endpoint(paper.figure2_mapping(),
                       Instance(paper.figure2_sql_schema()))
    synchronizer = engine.synchronizer(primary, replica)
    synchronizer.add_rule("Employee")
    synchronizer.synchronize()
    assert replica.source.rows("Empl")
