"""Tests for derivation routes (Chiticariu–Tan style) through
intermediate relations, and debugger route explanations."""

import pytest

from repro.instances import Instance
from repro.logic import chase, parse_tgd
from repro.mappings import Mapping
from repro.metamodel import INT, SchemaBuilder
from repro.runtime import MappingDebugger, route


def _two_hop():
    """base → Mid → Final: routes must chain through Mid."""
    tgds = [
        parse_tgd("Base(a=x, b=y) -> Mid(m=x, n=y)", name="step1"),
        parse_tgd("Mid(m=x, n=y) -> Final(f=y)", name="step2"),
    ]
    source = Instance()
    source.add("Base", a=1, b=10)
    source.add("Base", a=2, b=20)
    return source, tgds


class TestRoutes:
    def test_route_chains_to_base(self):
        source, tgds = _two_hop()
        routes = route({"f": 10}, "Final", source, tgds)
        assert routes
        chain = routes[0]
        assert chain[0].dependency.name == "step2"
        assert chain[1].dependency.name == "step1"
        base_witnesses = [
            row for entry in chain for rel, row in entry.source_rows
            if rel == "Base"
        ]
        assert {"a": 1, "b": 10} in base_witnesses

    def test_route_absent_row(self):
        source, tgds = _two_hop()
        assert route({"f": 999}, "Final", source, tgds) == []

    def test_route_depth_limit(self):
        """With max_depth=0 a two-hop chain cannot complete, so no
        route is reported (incomplete chains are never returned)."""
        source, tgds = _two_hop()
        assert route({"f": 10}, "Final", source, tgds, max_depth=0) == []
        assert route({"f": 10}, "Final", source, tgds, max_depth=1) != []

    def test_multiple_routes(self):
        """Two derivations of the same target row: both reported."""
        tgds = [
            parse_tgd("P(x=v) -> Out(o=v)", name="via_p"),
            parse_tgd("Q(x=v) -> Out(o=v)", name="via_q"),
        ]
        source = Instance()
        source.add("P", x=5)
        source.add("Q", x=5)
        routes = route({"o": 5}, "Out", source, tgds)
        names = {chain[0].dependency.name for chain in routes}
        assert names == {"via_p", "via_q"}


class TestDebuggerRoutes:
    def _mapping(self):
        s = (
            SchemaBuilder("DR").entity("Base", key=["a"])
            .attribute("a", INT).attribute("b", INT)
            .entity("Mid", key=["m"]).attribute("m", INT).attribute("n", INT)
            .build()
        )
        t = (
            SchemaBuilder("DRT").entity("Final", key=["f"])
            .attribute("f", INT)
            .entity("Mid", key=["m"]).attribute("m", INT).attribute("n", INT)
            .build()
        )
        return Mapping(s, t, [
            parse_tgd("Base(a=x, b=y) -> Mid(m=x, n=y)", name="step1"),
            parse_tgd("Mid(m=x, n=y) -> Final(f=y)", name="step2"),
        ])

    def test_explain_route_via_debugger(self):
        mapping = self._mapping()
        source = Instance()
        source.add("Base", a=1, b=10)
        debugger = MappingDebugger(mapping)
        routes = debugger.explain_route({"f": 10}, "Final", source)
        assert routes and len(routes[0]) == 2

    def test_trace_shows_marginal_rows(self):
        mapping = self._mapping()
        source = Instance()
        source.add("Base", a=1, b=10)
        source.add("Base", a=2, b=20)
        steps = MappingDebugger(mapping).trace(source)
        by_label = {s.label: s for s in steps}
        assert by_label["tgd:step1"].row_count == 2
        assert by_label["tgd:step2"].row_count == 2
