"""Differential tests: the compiled closure executor against the
reference interpreter, plus plan-cache / engine-flag behavior.

The compiler (:mod:`repro.algebra.compiler`) must be observationally
identical to the tree-walking interpreter on every operator, including
the awkward corners: labeled-null join keys, left-join padding,
empty-group aggregates, null-tolerant ``ValueJoinEq`` joins, and
heterogeneous unions.  Random plans over synthetic-style relations
exercise operator compositions no hand-written case would."""

import random

import pytest

from repro.algebra import (
    Aggregate,
    And,
    Arith,
    Case,
    Col,
    Comparison,
    Difference,
    Distinct,
    EntityScan,
    Extend,
    GLOBAL_PLAN_CACHE,
    IsNull,
    Join,
    Lit,
    Or,
    PlanCache,
    Project,
    Rename,
    Scan,
    Select,
    Sort,
    UnionAll,
    ValueJoinEq,
    Values,
    clear_plan_cache,
    compile_plan,
    eq,
    eq_join,
    evaluate,
    evaluate_interpreted,
    get_default_engine,
    plan_cache_stats,
    set_default_engine,
)
from repro.algebra.optimizer import optimize
from repro.errors import EvaluationError
from repro.instances import Instance, LabeledNull
from repro.logic.certain_answers import certain_answers, naive_evaluate
from repro.logic.formulas import Atom, ConjunctiveQuery, Equality
from repro.logic.terms import Const, Var
from repro.observability import disable, enable, registry, reset
from tests.test_metamodel_schema import person_hierarchy


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def canon(rows):
    """Order-insensitive canonical form of a row multiset."""
    return sorted(
        tuple(sorted((k, repr(v)) for k, v in row.items())) for row in rows
    )


def assert_engines_agree(expr, instance, schema=None):
    """Three-way oracle: row-compiled and vectorized against the
    reference interpreter."""
    compiled = evaluate(expr, instance, schema, engine="compiled")
    interpreted = evaluate(expr, instance, schema, engine="interpreted")
    vectorized = evaluate(expr, instance, schema, engine="vectorized")
    assert canon(compiled) == canon(interpreted)
    assert canon(vectorized) == canon(interpreted)
    return compiled


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()
    set_default_engine(None)


# ----------------------------------------------------------------------
# random plan generation (differential property testing)
# ----------------------------------------------------------------------
RELATIONS = ("R0", "R1", "R2")


def _columns(name):
    return [f"{name}_k", f"{name}_a", f"{name}_s"]


def _int_value(rng):
    roll = rng.random()
    if roll < 0.15:
        return None
    if roll < 0.30:
        return LabeledNull(rng.randint(0, 4))
    return rng.randint(0, 5)


def _random_instance(rng):
    instance = Instance()
    for name in RELATIONS:
        key_col, attr_col, str_col = _columns(name)
        for _ in range(rng.randint(3, 10)):
            instance.insert(
                name,
                {
                    key_col: _int_value(rng),
                    attr_col: _int_value(rng),
                    str_col: rng.choice(["x", "y", "z", None]),
                },
            )
    return instance


def _random_predicate(rng, int_cols, cols):
    def leaf():
        roll = rng.random()
        if roll < 0.25 and cols:
            return IsNull(Col(rng.choice(cols)))
        op = rng.choice(["=", "!=", "<", "<=", ">", ">="])
        column = rng.choice(int_cols or cols)
        return Comparison(op, Col(column), Lit(rng.randint(0, 5)))

    roll = rng.random()
    if roll < 0.2:
        return And(leaf(), leaf())
    if roll < 0.4:
        return Or(leaf(), leaf())
    return leaf()


def _random_plan(rng, depth):
    """Returns (expr, ordered column list, int-valued column subset)."""
    if depth <= 0 or rng.random() < 0.2:
        name = rng.choice(RELATIONS)
        cols = _columns(name)
        return Scan(name), cols, cols[:2]

    op = rng.choice(
        ["select", "project", "extend", "rename", "distinct",
         "union", "difference", "join", "value_join", "aggregate", "sort"]
    )
    expr, cols, int_cols = _random_plan(rng, depth - 1)

    if op == "select":
        return Select(expr, _random_predicate(rng, int_cols, cols)), cols, int_cols
    if op == "project":
        kept = rng.sample(cols, rng.randint(1, len(cols)))
        if rng.random() < 0.5 or not int_cols:
            outputs = [(c, Col(c)) for c in kept]
            return Project(expr, outputs), kept, [c for c in kept if c in int_cols]
        # computed projection — exercises the scalar-closure path
        source = rng.choice(int_cols)
        computed = f"computed{depth}"
        outputs = [(c, Col(c)) for c in kept if c not in (source, computed)]
        outputs.append((computed, Arith("+", Col(source), Lit(1))))
        names = [n for n, _ in outputs]
        return Project(expr, outputs), names, [computed] + [
            c for c in names if c in int_cols
        ]
    if op == "extend":
        name = f"x{depth}"
        if rng.random() < 0.5 and int_cols:
            scalar = Arith("*", Col(rng.choice(int_cols)), Lit(2))
        else:
            scalar = Case(
                [(Comparison(">", Col(rng.choice(int_cols or cols)), Lit(2)),
                  Lit("big"))],
                Lit("small"),
            )
        return Extend(expr, name, scalar), cols + [name], int_cols
    if op == "rename":
        victim = rng.choice(cols)
        renamed = f"{victim}_r"
        mapping = {victim: renamed}
        new_cols = [renamed if c == victim else c for c in cols]
        new_ints = [renamed if c == victim else c for c in int_cols]
        return Rename(expr, mapping), new_cols, new_ints
    if op == "distinct":
        return Distinct(expr), cols, int_cols
    if op == "union":
        other, other_cols, other_ints = _random_plan(rng, depth - 1)
        merged = cols + [c for c in other_cols if c not in cols]
        ints = int_cols + [c for c in other_ints if c not in int_cols]
        return UnionAll(expr, other), merged, ints
    if op == "difference":
        other, _, _ = _random_plan(rng, depth - 1)
        return Difference(expr, other), cols, int_cols
    if op in ("join", "value_join"):
        name = rng.choice(RELATIONS)
        suffix = f"_j{depth}"
        mapping = {c: c + suffix for c in _columns(name)}
        right = Rename(Scan(name), mapping)
        right_cols = [c + suffix for c in _columns(name)]
        left_key = rng.choice(int_cols or cols)
        right_key = right_cols[rng.randint(0, 1)]
        kind = rng.choice(["inner", "left"])
        if op == "join":
            joined = eq_join(expr, right, [(left_key, right_key)], kind=kind)
        else:
            joined = Join(
                expr, right, ValueJoinEq(left_key, right_key), kind=kind
            )
        overlap = [c for c in right_cols if c in cols]
        assert not overlap
        return joined, cols + right_cols, int_cols + right_cols[:2]
    if op == "aggregate":
        group = rng.sample(cols, rng.randint(0, min(2, len(cols))))
        aggregations = [("cnt", "count", None)]
        if int_cols:
            aggregations.append(("sm", "sum", Col(rng.choice(int_cols))))
            aggregations.append(("mn", "min", Col(rng.choice(int_cols))))
        out_cols = list(group) + [n for n, _, _ in aggregations]
        ints = [c for c in group if c in int_cols] + ["cnt", "sm", "mn"][
            : len(aggregations)
        ]
        return Aggregate(expr, group, aggregations), out_cols, ints
    # sort
    keys = [
        rng.choice(["", "-"]) + c
        for c in rng.sample(int_cols or cols, 1)
    ]
    return Sort(expr, keys), cols, int_cols


def _random_ragged_instance(rng):
    """Rows that randomly omit keys: partial columns in the batch image
    (presence masks, vectorized row-closure fallbacks)."""
    instance = _random_instance(rng)
    for name in RELATIONS:
        key_col, attr_col, str_col = _columns(name)
        for _ in range(rng.randint(1, 5)):
            row = {}
            if rng.random() < 0.7:
                row[key_col] = _int_value(rng)
            if rng.random() < 0.5:
                row[attr_col] = _int_value(rng)
            if rng.random() < 0.3:
                row[str_col] = rng.choice(["x", "y", None])
            instance.insert(name, row)
    if rng.random() < 0.3:
        instance.clear("R2")  # an empty relation in the mix
    return instance


@pytest.mark.parametrize("seed", range(60))
def test_differential_random_plans(seed):
    rng = random.Random(seed)
    instance = _random_instance(rng)
    expr, _, _ = _random_plan(rng, rng.randint(1, 4))
    assert_engines_agree(expr, instance)


@pytest.mark.parametrize("seed", range(40))
def test_differential_random_plans_heterogeneous(seed):
    """Ragged rows force the columnar presence machinery (and, where an
    operator declines a partial batch, the row-closure fallback) — all
    three engines must still agree.  A random plan may legitimately
    project a column some ragged row lacks; then every engine must
    raise the same ``EvaluationError``."""
    rng = random.Random(5000 + seed)
    instance = _random_ragged_instance(rng)
    expr, _, _ = _random_plan(rng, rng.randint(1, 4))

    def outcome(engine):
        try:
            return canon(evaluate(expr, instance, engine=engine))
        except EvaluationError as exc:
            return ("error", str(exc))

    interpreted = outcome("interpreted")
    assert outcome("compiled") == interpreted
    assert outcome("vectorized") == interpreted


@pytest.mark.parametrize("seed", range(20))
def test_differential_optimized_random_plans(seed):
    """The optimizer's output (including recognized equi-joins) stays
    equivalent under all engines."""
    rng = random.Random(1000 + seed)
    instance = _random_instance(rng)
    expr, _, _ = _random_plan(rng, rng.randint(1, 3))
    baseline = canon(evaluate_interpreted(expr, instance))
    optimized = optimize(expr)
    assert canon(evaluate(optimized, instance, engine="compiled")) == baseline
    assert canon(evaluate(optimized, instance, engine="vectorized")) == baseline
    assert canon(evaluate(optimized, instance, engine="interpreted")) == baseline


# ----------------------------------------------------------------------
# targeted corners
# ----------------------------------------------------------------------
def test_labeled_null_join_keys():
    """_JoinEq matches labeled nulls by label and never matches None."""
    instance = Instance()
    n1, n2 = LabeledNull(1), LabeledNull(2)
    instance.insert_all(
        "L", [{"a": n1}, {"a": n2}, {"a": None}, {"a": 7}]
    )
    instance.insert_all(
        "R", [{"b": LabeledNull(1)}, {"b": None}, {"b": 7}]
    )
    expr = eq_join(Scan("L"), Scan("R"), [("a", "b")])
    rows = assert_engines_agree(expr, instance)
    assert canon(rows) == canon([{"a": n1, "b": n1}, {"a": 7, "b": 7}])


def test_value_join_eq_none_matches_none():
    """ValueJoinEq is the homomorphism-binding equality: None == None."""
    instance = Instance()
    instance.insert_all("L", [{"a": None}, {"a": 1}, {"a": LabeledNull(3)}])
    instance.insert_all("R", [{"b": None}, {"b": 2}, {"b": LabeledNull(3)}])
    expr = Join(Scan("L"), Scan("R"), ValueJoinEq("a", "b"))
    rows = assert_engines_agree(expr, instance)
    assert canon(rows) == canon(
        [{"a": None, "b": None},
         {"a": LabeledNull(3), "b": LabeledNull(3)}]
    )


def test_left_join_padding():
    instance = Instance()
    instance.insert_all("L", [{"a": 1}, {"a": 2}, {"a": None}])
    instance.insert_all("R", [{"b": 1, "c": "hit"}])
    expr = eq_join(Scan("L"), Scan("R"), [("a", "b")], kind="left")
    rows = assert_engines_agree(expr, instance)
    assert canon(rows) == canon(
        [{"a": 1, "b": 1, "c": "hit"},
         {"a": 2, "b": None, "c": None},
         {"a": None, "b": None, "c": None}]
    )


def test_left_join_empty_right_pads_all():
    instance = Instance()
    instance.insert_all("L", [{"a": 1}])
    expr = Join(Scan("L"), Scan("R"), eq(Col("a"), Lit(1)), kind="left")
    rows = assert_engines_agree(expr, instance)
    assert rows == [{"a": 1}]


def test_empty_input_aggregate():
    expr = Aggregate(Scan("Nothing"), [], [("cnt", "count", None),
                                           ("sm", "sum", Col("v"))])
    rows = assert_engines_agree(expr, Instance())
    assert rows == [{"cnt": 0, "sm": None}]


def test_aggregate_missing_group_column_regression():
    """Rows lacking the group-by column group under None instead of
    raising KeyError (the ``members[0][column]`` crash)."""
    expr = Aggregate(
        Values([{"g": 1, "v": 10}, {"v": 20}, {"g": 1, "v": 5}]),
        ["g"],
        [("cnt", "count", None), ("sm", "sum", Col("v"))],
    )
    rows = assert_engines_agree(expr, Instance())
    assert canon(rows) == canon(
        [{"g": 1, "cnt": 2, "sm": 15}, {"g": None, "cnt": 1, "sm": 20}]
    )


def test_aggregate_labeled_null_groups():
    instance = Instance()
    instance.insert_all(
        "T",
        [{"g": LabeledNull(1), "v": 1},
         {"g": LabeledNull(1), "v": 2},
         {"g": LabeledNull(2), "v": 4},
         {"g": None, "v": 8}],
    )
    expr = Aggregate(Scan("T"), ["g"], [("sm", "sum", Col("v"))])
    rows = assert_engines_agree(expr, instance)
    assert sorted(r["sm"] for r in rows) == [3, 4, 8]


def test_pad_union_column_order():
    """Padded unions expose left columns first, then new right columns,
    in first-seen order — on both engines."""
    expr = UnionAll(
        Values([{"a": 1, "b": 2}]),
        Values([{"c": 3, "a": 4}]),
    )
    for engine in ("compiled", "interpreted"):
        rows = evaluate(expr, Instance(), engine=engine)
        assert [list(r) for r in rows] == [["a", "b", "c"], ["a", "b", "c"]]
    assert_engines_agree(expr, Instance())


def test_entity_scan_schema_override():
    schema = person_hierarchy()
    instance = Instance()
    instance.insert("Person", {"$type": "Employee", "Id": 1, "Name": "a",
                               "Dept": "d"})
    instance.insert("Person", {"$type": "Person", "Id": 2, "Name": "b"})
    expr = EntityScan("Employee")
    compiled = evaluate(expr, instance, schema, engine="compiled")
    interpreted = evaluate(expr, instance, schema, engine="interpreted")
    assert canon(compiled) == canon(interpreted)
    assert [r["Id"] for r in compiled] == [1]


def test_results_do_not_alias_stored_rows():
    """Scans borrow stored dicts internally, but plan output must be
    fresh copies — mutating a result row never corrupts the instance."""
    instance = Instance()
    instance.insert("T", {"a": 1})
    for expr in (Scan("T"), Select(Scan("T"), eq(Col("a"), Lit(1)))):
        rows = evaluate(expr, instance, engine="compiled")
        rows[0]["a"] = 999
        assert instance.rows("T")[0]["a"] == 1


def test_extend_does_not_mutate_stored_rows():
    instance = Instance()
    instance.insert("T", {"a": 1})
    rows = evaluate(Extend(Scan("T"), "b", Lit(2)), instance,
                    engine="compiled")
    assert rows == [{"a": 1, "b": 2}]
    assert instance.rows("T") == [{"a": 1}]


def test_compiled_missing_column_raises_evaluation_error():
    instance = Instance()
    instance.insert("T", {"a": 1})
    expr = Project(Scan("T"), [("missing", Col("missing"))])
    with pytest.raises(EvaluationError):
        evaluate(expr, instance, engine="compiled")
    with pytest.raises(EvaluationError):
        evaluate(expr, instance, engine="interpreted")


# ----------------------------------------------------------------------
# plan cache
# ----------------------------------------------------------------------
def test_fingerprint_structural_equality():
    a = Select(Scan("T"), eq(Col("a"), Lit(1)))
    b = Select(Scan("T"), eq(Col("a"), Lit(1)))
    c = Select(Scan("T"), eq(Col("a"), Lit(2)))
    assert a.fingerprint() == b.fingerprint()
    assert a.fingerprint() != c.fingerprint()
    assert a.fingerprint() != Scan("T").fingerprint()


def test_warm_cache_skips_compilation():
    """The second evaluation of a structurally equal plan must be a
    cache hit: no new ``query.compile`` span is recorded."""
    instance = Instance()
    instance.insert("T", {"a": 1})
    first = Select(Scan("T"), eq(Col("a"), Lit(1)))
    second = Select(Scan("T"), eq(Col("a"), Lit(1)))  # equal, distinct object
    reset()
    enable()
    try:
        evaluate(first, instance, engine="compiled")
        evaluate(second, instance, engine="compiled")
        assert registry.counter("span.query.compile.calls").value == 1
        assert registry.counter("span.query.execute.calls").value == 2
        assert registry.counter("query.plan_cache.hits").value == 1
        assert registry.counter("query.plan_cache.misses").value == 1
    finally:
        disable()
        reset()


def test_global_cache_stats():
    instance = Instance()
    instance.insert("T", {"a": 1})
    expr = Scan("T")
    evaluate(expr, instance, engine="compiled")
    evaluate(expr, instance, engine="compiled")
    stats = plan_cache_stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["size"] == 1
    assert expr in GLOBAL_PLAN_CACHE


def test_plan_cache_lru_eviction():
    cache = PlanCache(capacity=2)
    exprs = [Scan("A"), Scan("B"), Scan("C")]
    for expr in exprs:
        cache.get(expr)
    assert len(cache) == 2
    assert cache.stats()["evictions"] == 1
    assert exprs[0] not in cache  # least recently used fell out
    assert exprs[2] in cache
    # touching B keeps it warm; inserting A evicts C
    cache.get(exprs[1])
    cache.get(exprs[0])
    assert exprs[1] in cache and exprs[0] in cache
    assert exprs[2] not in cache


def test_compile_plan_direct_execution():
    instance = Instance()
    instance.insert_all("T", [{"a": 1}, {"a": 2}])
    plan = compile_plan(Select(Scan("T"), Comparison(">", Col("a"), Lit(1))))
    assert plan.execute(instance) == [{"a": 2}]
    assert plan.size >= 2
    assert len(plan.fingerprint) == 32  # blake2b-16 hex


# ----------------------------------------------------------------------
# engine selection
# ----------------------------------------------------------------------
def test_default_engine_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_QUERY_ENGINE", raising=False)
    set_default_engine(None)
    assert get_default_engine() == "vectorized"
    monkeypatch.setenv("REPRO_QUERY_ENGINE", "interpreted")
    assert get_default_engine() == "interpreted"
    monkeypatch.setenv("REPRO_QUERY_ENGINE", "compiled")
    assert get_default_engine() == "compiled"
    monkeypatch.setenv("REPRO_QUERY_ENGINE", "bogus")
    assert get_default_engine() == "vectorized"  # invalid env ignored
    set_default_engine("interpreted")
    monkeypatch.delenv("REPRO_QUERY_ENGINE")
    assert get_default_engine() == "interpreted"
    set_default_engine(None)
    assert get_default_engine() == "vectorized"


def test_set_default_engine_rejects_unknown():
    with pytest.raises(ValueError):
        set_default_engine("columnar")


def test_interpreted_default_bypasses_plan_cache():
    instance = Instance()
    instance.insert("T", {"a": 1})
    set_default_engine("interpreted")
    before = plan_cache_stats()
    assert evaluate(Scan("T"), instance) == [{"a": 1}]
    after = plan_cache_stats()
    assert (after["hits"], after["misses"]) == (before["hits"],
                                               before["misses"])


def test_evaluate_rejects_unknown_engine():
    with pytest.raises(EvaluationError):
        evaluate(Scan("T"), Instance(), engine="bogus")


# ----------------------------------------------------------------------
# optimizer equi-join recognition
# ----------------------------------------------------------------------
def test_optimizer_recognizes_comparison_equi_join():
    from repro.algebra.expressions import _JoinEq

    left = Project(Scan("L"), [("a", Col("a"))])
    right = Project(Scan("R"), [("b", Col("b"))])
    expr = Join(left, right, Comparison("=", Col("a"), Col("b")))
    rewritten = optimize(expr)
    assert isinstance(rewritten, Join)
    assert isinstance(rewritten.predicate, _JoinEq)
    assert (rewritten.predicate.left_col, rewritten.predicate.right_col) == (
        "a", "b",
    )

    instance = Instance()
    instance.insert_all("L", [{"a": 1}, {"a": 2}, {"a": None}])
    instance.insert_all("R", [{"b": 2}, {"b": 3}, {"b": None}])
    assert canon(evaluate(rewritten, instance, engine="compiled")) == canon(
        evaluate(expr, instance, engine="interpreted")
    )


def test_optimizer_flips_reversed_equi_join():
    from repro.algebra.expressions import _JoinEq

    left = Project(Scan("L"), [("a", Col("a"))])
    right = Project(Scan("R"), [("b", Col("b"))])
    expr = Join(left, right, Comparison("=", Col("b"), Col("a")))
    rewritten = optimize(expr)
    assert isinstance(rewritten.predicate, _JoinEq)
    assert (rewritten.predicate.left_col, rewritten.predicate.right_col) == (
        "a", "b",
    )


def test_optimizer_leaves_same_named_columns_alone():
    from repro.algebra.expressions import _JoinEq

    left = Project(Scan("L"), [("a", Col("a"))])
    right = Project(Scan("R"), [("a", Col("a"))])
    expr = Join(left, right, Comparison("=", Col("a"), Col("a")))
    rewritten = optimize(expr)
    assert not isinstance(rewritten.predicate, _JoinEq)


# ----------------------------------------------------------------------
# CQ translation parity
# ----------------------------------------------------------------------
def _answer_set(answers):
    return {
        tuple(("⊥", v.label) if isinstance(v, LabeledNull) else ("c", v)
              for v in answer)
        for answer in answers
    }


def _cq_instance():
    instance = Instance()
    instance.insert_all(
        "Emp",
        [{"eid": 1, "dept": "a"},
         {"eid": 2, "dept": "b"},
         {"eid": 3, "dept": LabeledNull(9)},
         {"eid": 4, "dept": None}],
    )
    instance.insert_all(
        "Dept",
        [{"dname": "a", "mgr": 1},
         {"dname": LabeledNull(9), "mgr": 2},
         {"dname": None, "mgr": 3}],
    )
    return instance


def test_cq_join_parity_with_nulls():
    x, d, m = Var("x"), Var("d"), Var("m")
    query = ConjunctiveQuery(
        head=(x, m),
        body=(Atom.of("Emp", eid=x, dept=d), Atom.of("Dept", dname=d, mgr=m)),
    )
    instance = _cq_instance()
    compiled = naive_evaluate(query, instance, engine="compiled")
    reference = naive_evaluate(query, instance, engine="interpreted")
    assert _answer_set(compiled) == _answer_set(reference)
    # the None dept binds too: homomorphism equality is value equality
    assert (("c", 4), ("c", 3)) in _answer_set(compiled)


def test_cq_condition_and_constant_parity():
    x, d = Var("x"), Var("d")
    query = ConjunctiveQuery(
        head=(x,),
        body=(Atom.of("Emp", eid=x, dept=d),),
        conditions=(Equality(d, Const("a")),),
    )
    instance = _cq_instance()
    compiled = naive_evaluate(query, instance, engine="compiled")
    reference = naive_evaluate(query, instance, engine="interpreted")
    assert _answer_set(compiled) == _answer_set(reference) == {(("c", 1),)}


def test_cq_repeated_variable_parity():
    x = Var("x")
    query = ConjunctiveQuery(
        head=(x,),
        body=(Atom.of("Same", a=x, b=x),),
    )
    instance = Instance()
    instance.insert_all(
        "Same",
        [{"a": 1, "b": 1}, {"a": 1, "b": 2},
         {"a": LabeledNull(5), "b": LabeledNull(5)},
         {"a": None, "b": None}],
    )
    compiled = naive_evaluate(query, instance, engine="compiled")
    reference = naive_evaluate(query, instance, engine="interpreted")
    assert _answer_set(compiled) == _answer_set(reference)


def test_certain_answers_drop_nulls_both_engines():
    x, d = Var("x"), Var("d")
    query = ConjunctiveQuery(
        head=(x, d), body=(Atom.of("Emp", eid=x, dept=d),)
    )
    instance = _cq_instance()
    compiled = set(certain_answers(query, instance, engine="compiled"))
    reference = set(certain_answers(query, instance, engine="interpreted"))
    assert compiled == reference
    assert (3, LabeledNull(9)) not in compiled


@pytest.mark.parametrize("seed", range(10))
def test_cq_random_parity(seed):
    """Random two-atom CQs with a shared variable agree across paths."""
    rng = random.Random(seed)
    instance = Instance()
    for name, cols in (("P", ("u", "v")), ("Q", ("v", "w"))):
        for _ in range(rng.randint(2, 8)):
            instance.insert(
                name, {c: _int_value(rng) for c in cols}
            )
    u, v, w = Var("u"), Var("v"), Var("w")
    query = ConjunctiveQuery(
        head=(u, w),
        body=(Atom.of("P", u=u, v=v), Atom.of("Q", v=v, w=w)),
    )
    compiled = naive_evaluate(query, instance, engine="compiled")
    reference = naive_evaluate(query, instance, engine="interpreted")
    assert _answer_set(compiled) == _answer_set(reference)
