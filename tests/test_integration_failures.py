"""Failure injection and cross-layer integration tests.

The paper's theme is that design-time and runtime are interdependent;
these tests exercise the seams: chase failures surfacing through the
runtime, egds as target constraints during exchange, lossy-view
detection, repository robustness, and end-to-end flows crossing four
or more subsystems.
"""

import json

import pytest

from repro.errors import (
    ChaseFailure,
    ChaseNonTermination,
    ExpressivenessError,
    RepositoryError,
    RoundTripError,
    TransformationError,
)
from repro.instances import Instance, LabeledNull
from repro.logic import parse_egd, parse_tgd
from repro.logic.dependencies import key_egd
from repro.mappings import Mapping
from repro.metamodel import INT, STRING, SchemaBuilder
from repro.operators import transgen
from repro.runtime import exchange
from repro.workloads import paper


def _pair(tag: str):
    source = (
        SchemaBuilder(f"FS{tag}").entity("R", key=["k"])
        .attribute("k", INT).attribute("v", INT).build()
    )
    target = (
        SchemaBuilder(f"FT{tag}").entity("T", key=["k"])
        .attribute("k", INT).attribute("v", INT, nullable=True).build()
    )
    return source, target


class TestExchangeWithTargetConstraints:
    def test_target_key_egd_merges_invented_values(self):
        """§4: target egds participate in the exchange — the chase
        merges the nulls two firings invent for the same key."""
        source, target = _pair("a")
        mapping = Mapping(source, target, [
            parse_tgd("R(k=x, v=y) -> T(k=x, v=z)"),
            key_egd("T", ["k"], ["k", "v"]),
        ])
        db = Instance()
        db.add("R", k=1, v=10)
        db.add("R", k=1, v=20)  # same key, two triggers
        result = exchange(mapping, db)
        assert result.deduplicated().cardinality("T") == 1

    def test_target_key_conflict_fails_exchange(self):
        """Two source rows forcing distinct constants for one key: no
        solution exists, and the runtime surfaces ChaseFailure."""
        source, target = _pair("b")
        mapping = Mapping(source, target, [
            parse_tgd("R(k=x, v=y) -> T(k=x, v=y)"),
            key_egd("T", ["k"], ["k", "v"]),
        ])
        db = Instance()
        db.add("R", k=1, v=10)
        db.add("R", k=1, v=20)
        with pytest.raises(ChaseFailure):
            exchange(mapping, db)

    def test_non_terminating_mapping_detected(self):
        schema = (
            SchemaBuilder("Loop").entity("N", key=["a"])
            .attribute("a", INT).attribute("b", INT).build()
        )
        mapping = Mapping(schema, schema,
                          [parse_tgd("N(a=x, b=y) -> N(a=y, b=z)")])
        db = Instance()
        db.add("N", a=1, b=2)
        transformation = transgen(mapping)
        with pytest.raises(ChaseNonTermination):
            # Bound the chase tightly through the logic layer directly.
            from repro.logic import chase

            chase(db, mapping.tgds, max_steps=100)


class TestLossyViewDetection:
    def test_missing_fragment_fails_roundtrip(self):
        """Drop one of Figure 2's constraints: customers become
        unrepresentable, and verification catches it."""
        full = paper.figure2_mapping()
        lossy = Mapping(
            full.source, full.target,
            [c for c in full.equalities if c.name != "Client=Customer"],
            name="lossy",
        )
        views = transgen(lossy)
        with pytest.raises(RoundTripError):
            views.verify_roundtrip(paper.figure2_er_instance())

    def test_update_outside_mapping_rejected(self):
        """An update creating a state the mapping cannot represent is
        rejected *before* any state changes (§5 update propagation)."""
        from repro.runtime import UpdatePropagator, UpdateSet

        full = paper.figure2_mapping()
        lossy = Mapping(
            full.source, full.target,
            [c for c in full.equalities if c.name != "Client=Customer"],
            name="lossy2",
        )
        propagator = UpdatePropagator(lossy)
        er = Instance(lossy.target)
        er.insert_object("Person", Id=1, Name="Ann")
        update = UpdateSet().insert_object(
            "Customer", Id=2, Name="B", CreditScore=1, BillingAddr="x"
        )
        with pytest.raises(TransformationError):
            propagator.propagate(er, update)


class TestRepositoryRobustness:
    def test_ignores_foreign_files(self, tmp_path):
        from repro.core.repository import MetadataRepository

        (tmp_path / "README.txt").write_text("not json")
        (tmp_path / "schema__broken.json").write_text("{}")  # bad stem
        repo = MetadataRepository(tmp_path)
        assert repo.list_schemas() == []

    def test_versions_survive_reopen_in_order(self, tmp_path):
        from repro.core.repository import MetadataRepository
        from tests.test_metamodel_schema import person_hierarchy

        repo = MetadataRepository(tmp_path)
        for comment in ("v1", "v2", "v3"):
            repo.save_schema(person_hierarchy(), comment=comment)
        reopened = MetadataRepository(tmp_path)
        assert reopened.versions_of("schema", "ERS") == [1, 2, 3]
        assert reopened.history("schema", "ERS")[1].comment == "v2"

    def test_payloads_are_plain_json(self, tmp_path):
        from repro.core.repository import MetadataRepository

        repo = MetadataRepository(tmp_path)
        repo.save_mapping(paper.figure2_mapping())
        files = list(tmp_path.glob("mapping__*.json"))
        assert files
        parsed = json.loads(files[0].read_text())
        assert parsed["payload"]["name"] == "figure2"


class TestCrossLayerFlows:
    def test_modelgen_transgen_repository_wrapper_flow(self, tmp_path):
        """ModelGen → repository persist → reload → TransGen → wrapper:
        the reloaded mapping drives the same views as the original."""
        from repro import ModelManagementEngine
        from repro.operators import InheritanceStrategy
        from tests.test_metamodel_schema import person_hierarchy

        engine = ModelManagementEngine(tmp_path)
        result = engine.modelgen(person_hierarchy(), "relational",
                                 InheritanceStrategy.TPH)
        engine.repository.save_mapping(result.mapping, name="tph")
        reloaded = engine.repository.load_mapping("tph")
        views = engine.transgen(reloaded)
        db = Instance(reloaded.target)
        db.insert_object("Employee", Id=1, Name="A", Dept="X")
        views.verify_roundtrip(db)

    def test_match_interpret_exchange_integrity_flow(self):
        """Match → interpret → exchange → constraint-propagation check,
        all through the facade."""
        from repro import ModelManagementEngine

        engine = ModelManagementEngine()
        mapping = engine.interpret(paper.figure4_correspondences())
        report = engine.check_integrity_propagation(
            mapping, paper.figure4_source_instance()
        )
        assert report.source_satisfied
        # Target key SID is unique because EIDs are; BirthDate nulls
        # are tolerated (nullable).
        assert report.propagates

    def test_composed_mapping_through_query_processor(self):
        """Compose (Figure 6) then answer view queries through the
        composed mapping against the migrated database."""
        from repro.algebra import Scan, project_names
        from repro.operators import compose
        from repro.runtime import QueryProcessor

        composed = compose(paper.figure6_map_v_s(),
                           paper.figure6_map_s_sprime())
        # Orient the mapping S′ → V so the view is the *target*, then
        # ask the processor view-side questions against S′ data.
        processor = QueryProcessor(composed.invert(),
                                   paper.figure6_s_prime_instance())
        rows = processor.answer_algebra(
            project_names(Scan("Students"), ["Name", "Country"])
        )
        assert {(r["Name"], r["Country"]) for r in rows} == {
            ("Ann", "US"), ("Bob", "US"), ("Chen", "FR"),
        }

    def test_merge_then_migrate_both_sides(self):
        """Merge two schemas, then migrate both inputs' data into the
        merged schema and validate it."""
        from repro.instances import violations
        from repro.mappings import CorrespondenceSet
        from repro.operators import merge

        first = (
            SchemaBuilder("Ma").entity("P", key=["id"])
            .attribute("id", INT).attribute("name", STRING).build()
        )
        second = (
            SchemaBuilder("Mb").entity("Q", key=["pid"])
            .attribute("pid", INT).attribute("label", STRING).build()
        )
        cs = CorrespondenceSet(first, second)
        cs.add_pair("P", "Q")
        cs.add_pair("P.id", "Q.pid")
        cs.add_pair("P.name", "Q.label")
        result = merge(first, second, cs)
        d1, d2 = Instance(), Instance()
        d1.add("P", id=1, name="x")
        d2.add("Q", pid=2, label="y")
        migrated = exchange(result.mapping_first, d1).union(
            exchange(result.mapping_second, d2)
        )
        migrated.schema = result.schema
        assert {r["id"] for r in migrated.rows("P")} == {1, 2}
        assert violations(migrated) == []

    def test_error_translation_in_wrapper_path(self):
        """An invalid wrapper write fails with an error phrased for the
        object layer (§5 'Errors'): inserting an Employee whose Id
        collides with an existing plain Person makes the new state
        unrepresentable (the two objects merge in the tables), and the
        wrapper rejects it with a translated error — no state changes."""
        from repro.runtime.errors import TranslatedError
        from repro.tools import WrapperGenerator

        wrapper, _ = WrapperGenerator().generate_from_mapping(
            paper.figure2_mapping(), paper.figure2_sql_instance()
        )
        with pytest.raises(TranslatedError) as excinfo:
            wrapper.insert("Employee", Id=1, Name="Dup", Dept="X")
        assert "insert Employee" in str(excinfo.value)
        # State untouched: still exactly one HR row with Id=1.
        assert sum(
            1 for r in wrapper.database.rows("HR") if r["Id"] == 1
        ) == 1
