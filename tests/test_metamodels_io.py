"""Tests for concrete metamodel importers/exporters and serialization."""

import datetime
from typing import Optional

import pytest

from repro.errors import SchemaError
from repro.instances import Instance
from repro.metamodel import INT, STRING, SchemaBuilder, varchar
from repro.metamodels import (
    emit_classes,
    emit_ddl,
    emit_xsd,
    flatten_documents,
    mapping_from_dict,
    mapping_to_dict,
    nest_instance,
    parse_ddl,
    schema_from_classes,
    schema_from_dict,
    schema_to_dict,
)
from repro.workloads import paper
from tests.test_metamodel_schema import person_hierarchy


class TestDDL:
    def test_emit_contains_tables_and_constraints(self):
        ddl = emit_ddl(paper.figure4_source_schema())
        assert "CREATE TABLE Empl" in ddl
        assert "PRIMARY KEY (EID)" in ddl
        assert "FOREIGN KEY (AID) REFERENCES Addr (AID)" in ddl

    def test_emit_rejects_er(self):
        with pytest.raises(SchemaError):
            emit_ddl(person_hierarchy())

    def test_parse_roundtrip(self):
        original = paper.figure4_source_schema()
        parsed = parse_ddl(emit_ddl(original), schema_name=original.name)
        assert set(parsed.entities) == set(original.entities)
        assert parsed.entity("Empl").key == ("EID",)
        assert parsed.entity("Addr").attribute("City").data_type == STRING
        assert parsed.foreign_keys_of("Empl") == original.foreign_keys_of("Empl")

    def test_parse_varchar_and_inline_pk(self):
        schema = parse_ddl(
            "CREATE TABLE T (id INTEGER PRIMARY KEY, "
            "name VARCHAR(40) NOT NULL, note TEXT);"
        )
        assert schema.entity("T").key == ("id",)
        assert schema.entity("T").attribute("name").data_type == varchar(40)
        assert schema.entity("T").attribute("note").nullable

    def test_parse_rejects_garbage(self):
        with pytest.raises(SchemaError):
            parse_ddl("DROP TABLE everything;")

    def test_parse_multiple_tables(self):
        schema = parse_ddl(
            "CREATE TABLE A (x INTEGER NOT NULL, PRIMARY KEY (x));\n"
            "CREATE TABLE B (y INTEGER NOT NULL, "
            "FOREIGN KEY (y) REFERENCES A (x));"
        )
        assert set(schema.entities) == {"A", "B"}
        assert len(schema.inclusion_dependencies()) == 1


class TestNested:
    def _order_schema(self):
        return (
            SchemaBuilder("Orders", metamodel="nested")
            .entity("Order", key=["oid"]).attribute("oid", INT)
            .attribute("customer", STRING)
            .entity("Line", key=["lid"]).attribute("lid", INT)
            .attribute("qty", INT)
            .containment("Order", "Line", name="lines")
            .build()
        )

    def test_emit_xsd(self):
        xsd = emit_xsd(self._order_schema())
        assert '<xs:element name="Order">' in xsd
        assert '<xs:element name="qty" type="xs:integer"/>' in xsd
        assert xsd.count("<xs:element") >= 5

    def test_flatten(self):
        schema = self._order_schema()
        docs = [
            {"oid": 1, "customer": "Ann",
             "lines": [{"lid": 10, "qty": 2}, {"lid": 11, "qty": 5}]},
            {"oid": 2, "customer": "Bob", "lines": []},
        ]
        flat = flatten_documents(schema, "Order", docs)
        assert flat.cardinality("Order") == 2
        assert flat.cardinality("Line") == 2
        assert all(r["Order_oid"] in (1, 2) for r in flat.rows("Line"))

    def test_nest_roundtrip(self):
        schema = self._order_schema()
        docs = [
            {"oid": 1, "customer": "Ann",
             "lines": [{"lid": 10, "qty": 2}]},
        ]
        flat = flatten_documents(schema, "Order", docs)
        nested = nest_instance(schema, "Order", flat)
        assert nested == docs

    def test_flatten_rejects_unknown_field(self):
        schema = self._order_schema()
        with pytest.raises(SchemaError):
            flatten_documents(schema, "Order", [{"oid": 1, "bogus": 2}])


class TestObjects:
    def test_emit_classes(self):
        source = emit_classes(person_hierarchy())
        assert "class Person:" in source
        assert "class Employee(Person):" in source
        assert "Id: int" in source
        namespace: dict = {}
        exec(compile(source, "<generated>", "exec"), namespace)  # noqa: S102
        employee_cls = namespace["Employee"]
        instance = employee_cls(Id=1, Name="A", Dept="QA")
        assert instance.Dept == "QA"

    def test_emit_classes_references(self):
        schema = (
            SchemaBuilder("App", metamodel="oo")
            .entity("User", key=["uid"]).attribute("uid", INT)
            .entity("Post", key=["pid"]).attribute("pid", INT)
            .reference("Post", "author", "User")
            .build()
        )
        source = emit_classes(schema)
        assert 'author: Optional["User"] = None' in source

    def test_schema_from_classes(self):
        class Person:
            id: int
            name: str

        class Employee(Person):
            dept: str
            manager: Optional["Employee"] = None

        schema = schema_from_classes(
            "HR", [Person, Employee], keys={"Person": ["id"]}
        )
        assert schema.entity("Employee").parent.name == "Person"
        assert schema.entity("Employee").has_attribute("dept")
        assert "Employee.manager" in schema.references
        assert schema.entity("Person").key == ("id",)

    def test_roundtrip_through_classes(self):
        source = emit_classes(person_hierarchy())
        namespace: dict = {}
        exec(compile(source, "<generated>", "exec"), namespace)  # noqa: S102
        classes = [namespace[n] for n in ("Person", "Employee", "Customer")]
        schema = schema_from_classes("ERS2", classes, keys={"Person": ["Id"]})
        assert set(schema.entities) == {"Person", "Employee", "Customer"}
        assert schema.entity("Customer").has_attribute("CreditScore")


class TestSerialization:
    def test_schema_roundtrip(self):
        for schema in (
            person_hierarchy(),
            paper.figure4_source_schema(),
            paper.figure6_s_prime_schema(),
        ):
            data = schema_to_dict(schema)
            back = schema_from_dict(data)
            assert schema_to_dict(back) == data

    def test_schema_roundtrip_rich_constructs(self):
        schema = (
            SchemaBuilder("Rich")
            .entity("A", key=["id"]).attribute("id", INT)
            .attribute("v", varchar(12), nullable=True)
            .entity("B", key=["id"]).attribute("id", INT)
            .association("AB", "A", "B")
            .containment("A", "B", name="kids")
            .reference("B", "owner", "A")
            .disjoint("A", "B")
            .covering("A", "B")
            .build()
        )
        back = schema_from_dict(schema_to_dict(schema))
        assert schema_to_dict(back) == schema_to_dict(schema)
        assert back.entity("A").attribute("v").data_type == varchar(12)

    def test_tgd_mapping_roundtrip(self):
        from repro.logic import parse_tgd
        from repro.mappings import Mapping

        mapping = Mapping(
            paper.figure6_s_schema(), paper.figure6_s_prime_schema(),
            [parse_tgd("Names(SID=s, Name=n) -> NamesP(SID=s, Name=n)",
                       name="names")],
        )
        back = mapping_from_dict(mapping_to_dict(mapping))
        assert mapping_to_dict(back) == mapping_to_dict(mapping)
        assert back.tgds[0].name == "names"

    def test_equality_mapping_roundtrip(self):
        mapping = paper.figure2_mapping()
        back = mapping_from_dict(mapping_to_dict(mapping))
        assert mapping_to_dict(back) == mapping_to_dict(mapping)
        # The revived mapping still works end-to-end.
        assert back.holds_for(
            paper.figure2_sql_instance(), paper.figure2_er_instance()
        )

    def test_so_tgd_mapping_roundtrip(self):
        from repro.operators import compose
        from repro.workloads import synthetic

        m12, m23 = synthetic.composition_pair_exponential(2)
        composed = compose(m12, m23, prefer_first_order=False)
        back = mapping_from_dict(mapping_to_dict(composed))
        assert back.so_tgd is not None
        assert len(back.so_tgd.implications) == len(
            composed.so_tgd.implications
        )

    def test_json_serializable(self):
        import json

        text = json.dumps(mapping_to_dict(paper.figure2_mapping()))
        assert "Person" in text
