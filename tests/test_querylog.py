"""Query log: ring buffer semantics, evaluate() wiring, CLI surface,
and the Prometheus metrics exposition round trip."""

import json

import pytest

import repro.observability as obs
from repro.algebra import expressions as E
from repro.algebra import scalars as S
from repro.algebra.evaluator import evaluate
from repro.cli import main
from repro.instances.database import Instance
from repro.instances.serialization import dump_instance
from repro.observability import registry
from repro.observability.querylog import QueryLog, QUERY_LOG


@pytest.fixture
def instance() -> Instance:
    inst = Instance()
    for i in range(50):
        inst.insert("t", {"a": i, "b": i % 5})
    return inst


QUERY = E.Select(E.Scan("t"), S.Comparison("=", S.Col("b"), S.Lit(3)))


# ----------------------------------------------------------------------
# ring buffer semantics
# ----------------------------------------------------------------------
def test_ring_buffer_rotates_and_sequences():
    log = QueryLog(capacity=3)
    for i in range(5):
        log.record(f"fp{i}", "compiled", False, 1.0, i)
    entries = log.entries()
    assert len(entries) == 3
    assert [e.seq for e in entries] == [3, 4, 5]
    assert [e.fingerprint for e in entries] == ["fp2", "fp3", "fp4"]
    assert log.recorded == 5
    log.clear()
    assert len(log) == 0 and log.recorded == 0


def test_slow_threshold_marks_entries():
    log = QueryLog(slow_ms=5.0)
    fast = log.record("fp", "compiled", False, 1.0, 0)
    slow = log.record("fp", "compiled", False, 9.0, 0)
    assert not fast.slow and slow.slow
    assert [e.seq for e in log.slow_entries()] == [2]
    assert "SLOW" in slow.render()
    log.configure(slow_ms=0.5)
    assert log.record("fp", "compiled", False, 1.0, 0).slow


def test_configure_capacity_keeps_newest():
    log = QueryLog(capacity=10)
    for i in range(6):
        log.record(f"fp{i}", "compiled", False, 1.0, 0)
    log.configure(capacity=2)
    assert [e.fingerprint for e in log.entries()] == ["fp4", "fp5"]


def test_export_jsonl_round_trips():
    log = QueryLog()
    log.record("fp", "vectorized", True, 2.5, 7,
               worst={"node_id": 1, "label": "σ", "est_rows": 3.0,
                      "actual_rows": 7, "ratio": 2.0, "flagged": False})
    lines = log.export_jsonl().splitlines()
    assert len(lines) == 1
    entry = json.loads(lines[0])
    assert entry["fingerprint"] == "fp"
    assert entry["cache_hit"] is True
    assert entry["rows_out"] == 7
    assert entry["worst_divergent"]["ratio"] == 2.0


# ----------------------------------------------------------------------
# evaluate() wiring
# ----------------------------------------------------------------------
def test_disabled_evaluate_records_nothing(instance):
    obs.disable()
    for engine in ("vectorized", "compiled", "interpreted"):
        evaluate(QUERY, instance, engine=engine)
    assert len(QUERY_LOG) == 0


def test_enabled_evaluate_records_all_engines(instance):
    obs.enable()
    for engine in ("vectorized", "compiled", "interpreted"):
        rows = evaluate(QUERY, instance, engine=engine)
        assert len(rows) == 10
    entries = QUERY_LOG.entries()
    assert [e.engine for e in entries] == [
        "vectorized", "compiled", "interpreted"
    ]
    # One structural fingerprint across engines.
    assert len({e.fingerprint for e in entries}) == 1
    assert all(e.rows_out == 10 for e in entries)
    # The compiling engines carry estimate↔actual divergence.
    assert entries[0].worst is not None
    assert entries[1].worst is not None
    assert entries[2].worst is None  # interpreter has no plan nodes
    assert registry.counter("query.log.entries").value == 3


def test_cache_hit_miss_recorded(instance):
    obs.enable()
    # A query no other test compiles: the plan caches are process-wide,
    # so a shared expression could arrive already warm.
    query = E.Select(
        E.Scan("t"), S.Comparison("=", S.Col("a"), S.Lit(-12345))
    )
    evaluate(query, instance, engine="vectorized")
    evaluate(query, instance, engine="vectorized")
    first, second = QUERY_LOG.entries()
    assert not first.cache_hit
    assert second.cache_hit


def test_reset_clears_query_log(instance):
    obs.enable()
    evaluate(QUERY, instance, engine="compiled")
    assert len(QUERY_LOG) == 1
    obs.reset()
    assert len(QUERY_LOG) == 0


def test_estimator_failure_never_fails_the_query(instance, monkeypatch):
    import repro.algebra.estimate as estimate

    def boom(*args, **kwargs):
        raise RuntimeError("estimator bug")

    monkeypatch.setattr(estimate, "annotate_plan", boom)
    obs.enable()
    rows = evaluate(QUERY, instance, engine="compiled")
    assert len(rows) == 10
    assert registry.counter("query.estimate.errors").value == 1
    entry = QUERY_LOG.entries()[-1]
    assert entry.worst is None


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_querylog_renders_and_exports(tmp_path, capsys, instance):
    data = tmp_path / "data.json"
    data.write_text(dump_instance(instance))
    script = tmp_path / "workload.py"
    script.write_text(
        "import json, sys\n"
        "from repro.instances.serialization import load_instance\n"
        "from repro.algebra import expressions as E\n"
        "from repro.algebra import scalars as S\n"
        "from repro.algebra.evaluator import evaluate\n"
        f"inst = load_instance(open({str(data)!r}).read())\n"
        "q = E.Select(E.Scan('t'), S.Comparison('=', S.Col('b'), S.Lit(3)))\n"
        "for engine in ('vectorized', 'compiled', 'interpreted'):\n"
        "    evaluate(q, inst, engine=engine)\n"
    )
    out = tmp_path / "log.jsonl"
    code = main(["querylog", str(script), "--quiet", "--out", str(out)])
    assert code == 0
    printed = capsys.readouterr().out
    assert "vectorized" in printed and "interpreted" in printed
    lines = [json.loads(line) for line in out.read_text().splitlines()]
    assert len(lines) == 3
    assert {line["engine"] for line in lines} == {
        "vectorized", "compiled", "interpreted"
    }


def test_cli_stats_renders_relation_statistics(tmp_path, capsys, instance):
    data = tmp_path / "data.json"
    data.write_text(dump_instance(instance))
    assert main(["stats", str(data)]) == 0
    out = capsys.readouterr().out
    assert "t: 50 rows" in out
    assert "distinct=5" in out  # column b

    assert main(["stats", str(data), "--json"]) == 0
    parsed = json.loads(capsys.readouterr().out)
    assert parsed["t"]["rows"] == 50
    assert parsed["t"]["columns"]["b"]["distinct"] == 5


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
def _parse_prometheus(text: str) -> dict:
    """Minimal parser for the exposition subset we emit: returns
    {name: {"type": kind, "help": str, "samples": {...}}}."""
    metrics: dict = {}
    helps: dict = {}
    current = None
    for line in text.splitlines():
        if line.startswith("# HELP "):
            name, help_text = line[len("# HELP "):].split(" ", 1)
            helps[name] = help_text
        elif line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            current = metrics[name] = {
                "type": kind, "help": helps.get(name), "samples": {}
            }
        elif line:
            sample, value = line.rsplit(" ", 1)
            current["samples"][sample] = float(value)
    return metrics


def test_prometheus_round_trip():
    registry.counter("demo.requests").inc(7)
    registry.gauge("demo.depth").set(3.5)
    registry.gauge("demo.unset")  # never set: must be skipped
    hist = registry.histogram("demo.lat", buckets=(1.0, 10.0))
    for value in (0.5, 2.0, 5.0, 99.0):
        hist.observe(value)

    parsed = _parse_prometheus(registry.render_prometheus())

    assert parsed["demo_requests"]["type"] == "counter"
    assert parsed["demo_requests"]["samples"]["demo_requests"] == 7
    # Every emitted family carries a HELP line.
    assert parsed["demo_requests"]["help"]
    assert parsed["demo_lat"]["help"]

    assert parsed["demo_depth"]["samples"]["demo_depth"] == 3.5
    assert "demo_unset" not in parsed

    lat = parsed["demo_lat"]
    assert lat["type"] == "histogram"
    assert lat["samples"]['demo_lat_bucket{le="1"}'] == 1
    assert lat["samples"]['demo_lat_bucket{le="10"}'] == 3
    assert lat["samples"]['demo_lat_bucket{le="+Inf"}'] == 4
    assert lat["samples"]["demo_lat_count"] == 4
    assert lat["samples"]["demo_lat_sum"] == pytest.approx(106.5)

    # Round trip: the parsed exposition agrees with the registry's own
    # snapshot for every metric it contains.
    snapshot = registry.snapshot()
    assert snapshot["demo.requests"]["value"] == 7
    assert snapshot["demo.lat"]["count"] == 4


def test_prometheus_known_family_help_text():
    registry.counter("query.plan_cache.hits").inc()
    parsed = _parse_prometheus(registry.render_prometheus())
    assert parsed["query_plan_cache_hits"]["help"] == (
        "Compiled-plan cache activity"
    )


def test_prometheus_label_value_escaping():
    from repro.observability.metrics import _escape_label_value

    assert _escape_label_value('a"b') == 'a\\"b'
    assert _escape_label_value("a\\b") == "a\\\\b"
    assert _escape_label_value("a\nb") == "a\\nb"
    assert _escape_label_value("plain") == "plain"


def test_cli_metrics_prom_format(tmp_path, capsys, instance):
    data = tmp_path / "data.json"
    data.write_text(dump_instance(instance))
    script = tmp_path / "workload.py"
    script.write_text(
        "from repro.instances.serialization import load_instance\n"
        "from repro.algebra import expressions as E\n"
        "from repro.algebra.evaluator import evaluate\n"
        f"inst = load_instance(open({str(data)!r}).read())\n"
        "evaluate(E.Scan('t'), inst)\n"
    )
    assert main(["metrics", str(script), "--quiet", "--format", "prom"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE query_log_entries counter" in out
    assert "query_log_entries 1" in out
