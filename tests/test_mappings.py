"""Tests for mappings: correspondences, constraint semantics, the
algebra↔CQ bridge, interpretation, and the paper's figure workloads."""

import pytest

from repro.algebra import (
    Col, Distinct, Project, Scan, Select, eq, eq_join, evaluate,
    project_names,
)
from repro.errors import ExpressivenessError, MappingError
from repro.instances import Instance
from repro.logic import Var, are_equivalent, parse_query, parse_tgd
from repro.mappings import (
    Correspondence,
    CorrespondenceSet,
    EqualityConstraint,
    Mapping,
    MappingLanguage,
    algebra_to_cq,
    containment_tgd,
    cq_to_algebra,
    equality_to_tgds,
    interpret_as_tgds,
    interpret_snowflake,
)
from repro.mappings.algebra_bridge import TableQuery, relation_attributes
from repro.workloads import paper


class TestCorrespondences:
    def test_add_pair_resolves_paths(self):
        cs = paper.figure4_correspondences()
        assert len(cs) == 4

    def test_reject_dangling(self):
        cs = CorrespondenceSet(
            paper.figure4_source_schema(), paper.figure4_target_schema()
        )
        with pytest.raises(Exception):
            cs.add_pair("Empl.Bogus", "Staff.SID")

    def test_reject_wrong_schema(self):
        source = paper.figure4_source_schema()
        target = paper.figure4_target_schema()
        cs = CorrespondenceSet(source, target)
        from repro.metamodel import ElementPath

        with pytest.raises(MappingError):
            cs.add(Correspondence(ElementPath("Nope", "Empl"),
                                  ElementPath(target.name, "Staff")))

    def test_top_k(self):
        source = paper.figure4_source_schema()
        target = paper.figure4_target_schema()
        cs = CorrespondenceSet(source, target)
        cs.add_pair("Empl.Name", "Staff.Name", 0.9)
        cs.add_pair("Empl.Name", "Staff.City", 0.5)
        cs.add_pair("Empl.Name", "Staff.SID", 0.2)
        top2 = cs.top_k(2)
        assert len(top2) == 2
        assert {c.target.path for c in top2} == {"Staff.Name", "Staff.City"}

    def test_best_one_to_one(self):
        source = paper.figure4_source_schema()
        target = paper.figure4_target_schema()
        cs = CorrespondenceSet(source, target)
        cs.add_pair("Empl.Name", "Staff.Name", 0.9)
        cs.add_pair("Empl.Tel", "Staff.Name", 0.8)
        cs.add_pair("Empl.Tel", "Staff.City", 0.3)
        selected = cs.best_one_to_one()
        assert len(selected) == 2
        pairs = {(c.source.path, c.target.path) for c in selected}
        assert ("Empl.Name", "Staff.Name") in pairs
        assert ("Empl.Tel", "Staff.City") in pairs

    def test_above_threshold(self):
        cs = paper.figure4_correspondences()
        assert len(cs.above(0.5)) == 4
        assert len(cs.above(1.1)) == 0


class TestMappingSemantics:
    def test_tgd_mapping_holds(self):
        source = paper.figure6_s_schema()
        target = paper.figure6_s_prime_schema()
        tgd = parse_tgd("Names(SID=s, Name=n) -> NamesP(SID=s, Name=n)")
        mapping = Mapping(source, target, [tgd])
        s = paper.figure6_s_instance()
        sp = paper.figure6_s_prime_instance()
        assert mapping.holds_for(s, sp)
        sp.delete("NamesP", lambda r: r["SID"] == 1)
        assert not mapping.holds_for(s, sp)

    def test_language_classification(self):
        source = paper.figure6_s_schema()
        target = paper.figure6_s_prime_schema()
        st = Mapping(source, target,
                     [parse_tgd("Names(SID=s) -> NamesP(SID=s)")])
        assert st.language == MappingLanguage.ST_TGD
        general = Mapping(source, target,
                          [parse_tgd("NamesP(SID=s) -> Names(SID=s)")])
        assert general.language == MappingLanguage.TGD

    def test_constraint_referencing_unknown_relation_rejected(self):
        source = paper.figure6_s_schema()
        target = paper.figure6_s_prime_schema()
        with pytest.raises(MappingError):
            Mapping(source, target, [parse_tgd("Ghost(a=x) -> NamesP(SID=x)")])

    def test_equality_mapping_holds(self):
        mapping = paper.figure6_map_s_sprime()
        assert mapping.holds_for(
            paper.figure6_s_instance(), paper.figure6_s_prime_instance()
        )

    def test_equality_mapping_detects_mismatch(self):
        mapping = paper.figure6_map_s_sprime()
        broken = paper.figure6_s_prime_instance()
        broken.add("Local", SID=9, Address="extra")
        assert not mapping.holds_for(paper.figure6_s_instance(), broken)

    def test_invert_swaps_roles(self):
        mapping = paper.figure6_map_s_sprime()
        inverted = mapping.invert()
        assert inverted.source.name == "Sprime"
        assert inverted.holds_for(
            paper.figure6_s_prime_instance(), paper.figure6_s_instance()
        )

    def test_figure2_mapping_holds_on_paper_instances(self):
        mapping = paper.figure2_mapping()
        assert mapping.holds_for(
            paper.figure2_sql_instance(), paper.figure2_er_instance()
        )

    def test_figure2_mapping_rejects_wrong_er_side(self):
        mapping = paper.figure2_mapping()
        er = paper.figure2_er_instance()
        er.insert_object("Person", Id=99, Name="Ghost")
        assert not mapping.holds_for(paper.figure2_sql_instance(), er)


class TestAlgebraBridge:
    def setup_method(self):
        self.schema = paper.figure4_source_schema()
        self.attrs = relation_attributes(self.schema)

    def test_scan_to_cq(self):
        tq = algebra_to_cq(Scan("Empl"), self.attrs)
        assert tq.columns == ("EID", "Name", "Tel", "AID")
        assert len(tq.query.body) == 1

    def test_select_constant(self):
        expr = Select(Scan("Addr"), eq(Col("City"), "Rome"))
        tq = algebra_to_cq(expr, self.attrs)
        atom = tq.query.body[0]
        from repro.logic import Const

        assert atom.term("City") == Const("Rome")

    def test_join_unifies_variables(self):
        expr = eq_join(Scan("Empl"), Scan("Addr"), [("AID", "AID")])
        tq = algebra_to_cq(expr, self.attrs)
        empl, addr = tq.query.body
        assert empl.term("AID") == addr.term("AID")

    def test_projection(self):
        expr = project_names(
            eq_join(Scan("Empl"), Scan("Addr"), [("AID", "AID")]),
            ["EID", "City"],
        )
        tq = algebra_to_cq(expr, self.attrs)
        assert tq.columns == ("EID", "City")

    def test_rejects_outer_join(self):
        expr = eq_join(Scan("Empl"), Scan("Addr"), [("AID", "AID")], kind="left")
        with pytest.raises(ExpressivenessError):
            algebra_to_cq(expr, self.attrs)

    def test_rejects_inequality(self):
        from repro.algebra import gt

        with pytest.raises(ExpressivenessError):
            algebra_to_cq(Select(Scan("Empl"), gt(Col("EID"), 3)), self.attrs)

    def test_roundtrip_evaluates_identically(self):
        expr = Distinct(project_names(
            eq_join(Scan("Empl"), Scan("Addr"), [("AID", "AID")]),
            ["EID", "City"],
        ))
        tq = algebra_to_cq(expr, self.attrs)
        compiled = cq_to_algebra(tq)
        db = paper.figure4_source_instance()
        original = {frozenset(r.items()) for r in evaluate(expr, db)}
        recompiled = {frozenset(r.items()) for r in evaluate(compiled, db)}
        assert original == recompiled

    def test_cq_to_algebra_repeated_var(self):
        q = parse_query("q(x) :- R(a=x, b=x)")
        compiled = cq_to_algebra(TableQuery(q, ("x",)))
        db = Instance()
        db.add("R", a=1, b=1)
        db.add("R", a=1, b=2)
        assert evaluate(compiled, db) == [{"x": 1}]

    def test_cq_to_algebra_constant(self):
        q = parse_query("q(x) :- R(a=x, b=5)")
        compiled = cq_to_algebra(TableQuery(q, ("x",)))
        db = Instance()
        db.add("R", a=1, b=5)
        db.add("R", a=2, b=6)
        assert evaluate(compiled, db) == [{"x": 1}]

    def test_containment_tgd(self):
        attrs = self.attrs
        sub = algebra_to_cq(
            project_names(
                eq_join(Scan("Empl"), Scan("Addr"), [("AID", "AID")]),
                ["EID"],
            ),
            attrs,
        )
        sup = algebra_to_cq(project_names(Scan("Empl"), ["EID"]), attrs)
        tgd = containment_tgd(sub, sup)
        assert len(tgd.body) == 2 and len(tgd.head) == 1
        assert tgd.head[0].relation == "Empl"
        # The head's EID must be the body's EID variable.
        assert tgd.head[0].term("EID") == sub.query.head[0]

    def test_equality_to_tgds(self):
        attrs = self.attrs
        left = algebra_to_cq(project_names(Scan("Empl"), ["EID"]), attrs)
        right = algebra_to_cq(
            Project(Scan("Addr"), [("EID", Col("AID"))]), attrs
        )
        tgds = equality_to_tgds(left, right, name="t")
        assert len(tgds) == 2
        assert tgds[0].body[0].relation == "Empl"
        assert tgds[1].body[0].relation == "Addr"


class TestSnowflakeInterpretation:
    def test_figure4_constraint_count(self):
        mapping = interpret_snowflake(paper.figure4_correspondences())
        # root-key + 3 attribute correspondences
        assert len(mapping.equalities) == 4

    def test_figure4_shapes(self):
        """Constraint 3 must be π[EID, City](Empl ⋈ Addr) = π[SID, City](Staff)."""
        mapping = interpret_snowflake(paper.figure4_correspondences())
        city = next(c for c in mapping.equalities if "City" in c.name)
        assert city.source_expr.relations() == {"Empl", "Addr"}
        assert city.target_expr.relations() == {"Staff"}

    def test_figure4_holds_on_consistent_instances(self):
        mapping = interpret_snowflake(paper.figure4_correspondences())
        source = paper.figure4_source_instance()
        target = Instance(paper.figure4_target_schema())
        target.insert_all("Staff", [
            {"SID": 1, "Name": "Ann", "BirthDate": None, "City": "Rome"},
            {"SID": 2, "Name": "Bob", "BirthDate": None, "City": "Oslo"},
        ])
        assert mapping.holds_for(source, target)
        target.add("Staff", SID=3, Name="Zed", BirthDate=None, City="Lima")
        assert not mapping.holds_for(source, target)

    def test_needs_root(self):
        cs = CorrespondenceSet(
            paper.figure4_source_schema(), paper.figure4_target_schema()
        )
        cs.add_pair("Empl.Name", "Staff.Name")
        with pytest.raises(MappingError):
            interpret_snowflake(cs)

    def test_explicit_roots(self):
        cs = CorrespondenceSet(
            paper.figure4_source_schema(), paper.figure4_target_schema()
        )
        cs.add_pair("Empl.Name", "Staff.Name")
        mapping = interpret_snowflake(cs, source_root="Empl", target_root="Staff")
        assert len(mapping.equalities) == 2


class TestTgdInterpretation:
    def test_one_tgd_per_target_entity(self):
        mapping = interpret_as_tgds(paper.figure4_correspondences())
        assert len(mapping.tgds) == 1
        tgd = mapping.tgds[0]
        assert tgd.head[0].relation == "Staff"
        assert {a.relation for a in tgd.body} == {"Empl", "Addr"}

    def test_fk_join_in_body(self):
        mapping = interpret_as_tgds(paper.figure4_correspondences())
        tgd = mapping.tgds[0]
        empl = next(a for a in tgd.body if a.relation == "Empl")
        addr = next(a for a in tgd.body if a.relation == "Addr")
        assert empl.term("AID") == addr.term("AID")

    def test_uncorresponded_attributes_existential(self):
        mapping = interpret_as_tgds(paper.figure4_correspondences())
        tgd = mapping.tgds[0]
        birth = tgd.head[0].term("BirthDate")
        assert birth in tgd.existentials()

    def test_executes_correctly_via_chase(self):
        from repro.logic import chase

        mapping = interpret_as_tgds(paper.figure4_correspondences())
        result = chase(paper.figure4_source_instance(), mapping.tgds)
        staff = result.instance.rows("Staff")
        assert {(r["SID"], r["Name"], r["City"]) for r in staff} == {
            (1, "Ann", "Rome"), (2, "Bob", "Oslo"),
        }
