"""Tests for structured schema evolution (change scripts that derive
mapS-S′ automatically)."""

import pytest

from repro.algebra import evaluate
from repro.errors import SchemaError
from repro.instances import Instance
from repro.metamodel import INT, STRING, SchemaBuilder, schema_violations
from repro.operators import compose, diff, transgen
from repro.operators.evolution import (
    AddColumn,
    AddEntity,
    DropColumn,
    RenameColumn,
    RenameEntity,
    SplitByValue,
    evolve,
)
from repro.workloads import paper


def _base():
    return (
        SchemaBuilder("App", metamodel="relational")
        .entity("Users", key=["uid"])
        .attribute("uid", INT)
        .attribute("name", STRING)
        .attribute("plan", STRING)
        .build()
    )


class TestSingleChanges:
    def test_add_column(self):
        result = evolve(_base(), [AddColumn("Users", "email", STRING)])
        assert result.schema.entity("Users").has_attribute("email")
        assert result.schema.entity("Users").attribute("email").nullable
        # Mapping: original Users = projection of evolved Users.
        old = Instance()
        old.add("Users", uid=1, name="A", plan="free")
        new = Instance()
        new.add("Users", uid=1, name="A", plan="free", email=None)
        assert result.mapping.holds_for(old, new)

    def test_drop_column_reports_loss(self):
        result = evolve(_base(), [DropColumn("Users", "plan")])
        assert not result.schema.entity("Users").has_attribute("plan")
        assert any("information loss" in n for n in result.notes)
        old = Instance()
        old.add("Users", uid=1, name="A", plan="free")
        new = Instance()
        new.add("Users", uid=1, name="A")
        assert result.mapping.holds_for(old, new)

    def test_drop_key_rejected(self):
        with pytest.raises(SchemaError):
            evolve(_base(), [DropColumn("Users", "uid")])

    def test_rename_column(self):
        result = evolve(_base(), [RenameColumn("Users", "name", "full_name")])
        assert result.schema.entity("Users").has_attribute("full_name")
        old = Instance()
        old.add("Users", uid=1, name="A", plan="p")
        new = Instance()
        new.add("Users", uid=1, full_name="A", plan="p")
        assert result.mapping.holds_for(old, new)

    def test_rename_key_column_updates_constraints(self):
        result = evolve(_base(), [RenameColumn("Users", "uid", "id")])
        entity = result.schema.entity("Users")
        assert entity.key == ("id",)
        assert schema_violations(result.schema) == []

    def test_rename_entity(self):
        result = evolve(_base(), [RenameEntity("Users", "Accounts")])
        assert "Accounts" in result.schema.entities
        assert "Users" not in result.schema.entities
        old = Instance()
        old.add("Users", uid=1, name="A", plan="p")
        new = Instance()
        new.add("Accounts", uid=1, name="A", plan="p")
        assert result.mapping.holds_for(old, new)

    def test_add_entity_appears_in_diff(self):
        result = evolve(_base(), [
            AddEntity("AuditLog", (("eid", INT), ("what", STRING)),
                      key=("eid",)),
        ])
        slice_ = diff(result.schema, result.mapping.invert())
        assert "AuditLog.what" in slice_.participating

    def test_split_by_value_matches_figure6(self):
        schema = (
            SchemaBuilder("S", metamodel="relational")
            .entity("Addresses", key=["SID"])
            .attribute("SID", INT).attribute("Address", STRING)
            .attribute("Country", STRING)
            .build()
        )
        result = evolve(schema, [
            SplitByValue("Addresses", "Country", "US", "Local", "Foreign"),
        ])
        assert set(result.schema.entities) == {"Local", "Foreign"}
        assert not result.schema.entity("Local").has_attribute("Country")
        old = Instance()
        old.add("Addresses", SID=1, Address="a", Country="US")
        old.add("Addresses", SID=2, Address="b", Country="FR")
        new = Instance()
        new.add("Local", SID=1, Address="a")
        new.add("Foreign", SID=2, Address="b", Country="FR")
        assert result.mapping.holds_for(old, new)
        new.add("Local", SID=9, Address="ghost")
        assert not result.mapping.holds_for(old, new)


class TestChainedChanges:
    def test_multiple_changes_compose(self):
        result = evolve(_base(), [
            RenameEntity("Users", "Accounts"),
            RenameColumn("Users", "name", "full_name"),
            AddColumn("Users", "email", STRING),
            DropColumn("Users", "plan"),
        ])
        entity = result.schema.entity("Accounts")
        assert entity.has_attribute("full_name")
        assert entity.has_attribute("email")
        assert not entity.has_attribute("plan")
        old = Instance()
        old.add("Users", uid=1, name="A", plan="p")
        new = Instance()
        new.add("Accounts", uid=1, full_name="A", email=None)
        assert result.mapping.holds_for(old, new)

    def test_migration_through_transgen(self):
        """The derived mapping is executable: migrate data S → S′."""
        result = evolve(_base(), [
            RenameColumn("Users", "name", "full_name"),
            AddColumn("Users", "email", STRING),
        ])
        views = transgen(result.mapping)
        old = Instance(result.mapping.source)
        old.add("Users", uid=1, name="Ann", plan="pro")
        migrated = views.query_view.apply(old)
        row = migrated.rows("Users")[0]
        assert row["full_name"] == "Ann"

    def test_composes_with_view_mapping(self):
        """The whole Figure 6 pipeline with a *derived* (not
        hand-written) evolution mapping."""
        evolution = evolve(paper.figure6_s_schema(), [
            RenameEntity("Names", "NamesP"),
            SplitByValue("Addresses", "Country", "US", "Local", "Foreign"),
        ])
        composed = compose(paper.figure6_map_v_s(), evolution.mapping)
        s_prime = Instance()
        s_prime.add("NamesP", SID=1, Name="Ann")
        s_prime.add("Local", SID=1, Address="12 Elm St")
        rows = evaluate(composed.equalities[0].target_expr, s_prime)
        assert rows == [{"Name": "Ann", "Address": "12 Elm St",
                         "Country": "US"}]

    def test_evolved_schema_is_well_formed(self):
        result = evolve(_base(), [
            RenameEntity("Users", "Accounts"),
            SplitByValue("Accounts", "plan", "free", "FreeUsers",
                         "PaidUsers"),
        ])
        assert schema_violations(result.schema) == []
