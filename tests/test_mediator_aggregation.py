"""Regression tests: mediated aggregation must group across sources,
not per source."""

from repro.algebra import Aggregate, Col, Scan, Sort
from repro.instances import Instance
from repro.logic import parse_tgd
from repro.mappings import Mapping
from repro.metamodel import INT, STRING, SchemaBuilder
from repro.tools import QueryMediator


def _mediator_with_overlapping_groups():
    global_schema = (
        SchemaBuilder("G").entity("Revenue", key=["rid"])
        .attribute("rid", INT).attribute("region", STRING)
        .attribute("value", INT).build()
    )
    s1 = (
        SchemaBuilder("S1").entity("A", key=["rid"])
        .attribute("rid", INT).attribute("region", STRING)
        .attribute("value", INT).build()
    )
    s2 = (
        SchemaBuilder("S2").entity("B", key=["rid"])
        .attribute("rid", INT).attribute("region", STRING)
        .attribute("value", INT).build()
    )
    m1 = Mapping(s1, global_schema, [
        parse_tgd("A(rid=r, region=g, value=v) -> "
                  "Revenue(rid=r, region=g, value=v)")
    ])
    m2 = Mapping(s2, global_schema, [
        parse_tgd("B(rid=r, region=g, value=v) -> "
                  "Revenue(rid=r, region=g, value=v)")
    ])
    d1, d2 = Instance(), Instance()
    d1.add("A", rid=1, region="EU", value=10)
    d1.add("A", rid=2, region="US", value=5)
    d2.add("B", rid=3, region="EU", value=7)  # EU spans both sources
    mediator = QueryMediator(global_schema)
    mediator.add_source("one", m1, d1)
    mediator.add_source("two", m2, d2)
    return mediator


class TestCrossSourceAggregation:
    def test_groups_span_sources(self):
        mediator = _mediator_with_overlapping_groups()
        query = Aggregate(Scan("Revenue"), ["region"],
                          [("total", "sum", Col("value")),
                           ("n", "count", None)])
        rows = {r["region"]: r for r in mediator.answer(query)}
        assert rows["EU"]["total"] == 17  # 10 from one + 7 from two
        assert rows["EU"]["n"] == 2
        assert rows["US"]["total"] == 5

    def test_global_aggregate(self):
        mediator = _mediator_with_overlapping_groups()
        query = Aggregate(Scan("Revenue"), [],
                          [("total", "sum", Col("value"))])
        rows = mediator.answer(query)
        assert len(rows) == 1 and rows[0]["total"] == 22

    def test_sort_over_union(self):
        mediator = _mediator_with_overlapping_groups()
        query = Sort(Scan("Revenue"), ["-value"])
        values = [r["value"] for r in mediator.answer(query)]
        assert values == sorted(values, reverse=True)

    def test_sorted_aggregate(self):
        mediator = _mediator_with_overlapping_groups()
        query = Sort(
            Aggregate(Scan("Revenue"), ["region"],
                      [("total", "sum", Col("value"))]),
            ["total"],
        )
        rows = mediator.answer(query)
        assert [r["region"] for r in rows] == ["US", "EU"]

    def test_plain_queries_unaffected(self):
        mediator = _mediator_with_overlapping_groups()
        from repro.algebra import project_names

        rows = mediator.answer(project_names(Scan("Revenue"),
                                             ["rid", "region"]))
        assert len(rows) == 3
