"""Tests for the algebra optimizer: each rewrite rule, plus a
hypothesis property that optimization never changes query results."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra import (
    Col,
    Distinct,
    FALSE,
    Join,
    Lit,
    Not,
    Or,
    Project,
    Rename,
    Scan,
    Select,
    TRUE,
    UnionAll,
    Values,
    And,
    eq,
    eq_join,
    evaluate,
    gt,
    lt,
    optimize,
    project_names,
)
from repro.algebra.optimizer import simplify_predicate
from repro.instances import Instance


class TestPredicateSimplification:
    def test_true_absorption(self):
        assert simplify_predicate(And(TRUE, TRUE)) is TRUE
        assert simplify_predicate(Or(FALSE, FALSE)) is FALSE

    def test_false_short_circuit(self):
        p = eq(Col("x"), 1)
        assert simplify_predicate(And(p, FALSE)) is FALSE
        assert simplify_predicate(Or(p, TRUE)) is TRUE

    def test_single_operand_unwrapped(self):
        p = eq(Col("x"), 1)
        assert simplify_predicate(And(p, TRUE)) == p
        assert simplify_predicate(Or(p, FALSE)) == p

    def test_double_negation(self):
        p = eq(Col("x"), 1)
        assert simplify_predicate(Not(Not(p))) == p

    def test_constant_comparison_folded(self):
        assert simplify_predicate(eq(Lit(1), Lit(1))) is TRUE
        assert simplify_predicate(eq(Lit(1), Lit(2))) is FALSE

    def test_nested_and_flattened(self):
        p, q, r = eq(Col("x"), 1), eq(Col("y"), 2), eq(Col("z"), 3)
        flat = simplify_predicate(And(And(p, q), r))
        assert isinstance(flat, And) and len(flat.operands) == 3


class TestRewrites:
    def test_select_true_removed(self):
        assert optimize(Select(Scan("R"), TRUE)) == Scan("R")

    def test_select_false_becomes_empty(self):
        assert optimize(Select(Scan("R"), FALSE)) == Values([])

    def test_select_cascade_fused(self):
        p, q = eq(Col("x"), 1), gt(Col("y"), 2)
        fused = optimize(Select(Select(Scan("R"), p), q))
        assert isinstance(fused, Select)
        assert not isinstance(fused.input, Select)

    def test_select_pushed_into_union(self):
        p = eq(Col("x"), 1)
        pushed = optimize(Select(UnionAll(Scan("A"), Scan("B")), p))
        assert isinstance(pushed, UnionAll)
        assert isinstance(pushed.left, Select)

    def test_select_through_passthrough_project(self):
        p = eq(Col("x"), 1)
        expr = Select(project_names(Scan("R"), ["x", "y"]), p)
        rewritten = optimize(expr)
        assert isinstance(rewritten, Project)
        assert isinstance(rewritten.input, Select)

    def test_select_over_literal_column_partially_evaluates(self):
        """σ[x=5] over a projection pinning x:=5 is a tautology and
        folds away; σ[x=6] is a contradiction and prunes the branch."""
        tautology = Select(
            Project(Scan("R"), [("x", Lit(5))]), eq(Col("x"), 5)
        )
        assert optimize(tautology) == Project(Scan("R"), [("x", Lit(5))])
        contradiction = Select(
            Project(Scan("R"), [("x", Lit(5))]), eq(Col("x"), 6)
        )
        assert optimize(contradiction) == Values([])

    def test_type_branch_pruning(self):
        """The access-control/query-view scenario: a union of typed
        branches filtered by a $type membership test keeps only the
        matching branches."""
        from repro.algebra import Distinct, In

        branch_a = Distinct(Project(Scan("A"), [("$type", Lit("A")),
                                                ("v", Col("v"))]))
        branch_b = Distinct(Project(Scan("B"), [("$type", Lit("B")),
                                                ("v", Col("v"))]))
        query = Select(UnionAll(branch_a, branch_b),
                       In(Col("$type"), {"B"}))
        pruned = optimize(query)
        assert pruned.relations() == {"B"}

    def test_select_pushes_through_distinct(self):
        expr = Select(Distinct(Scan("R")), eq(Col("x"), 1))
        rewritten = optimize(expr)
        assert isinstance(rewritten, Distinct)
        assert isinstance(rewritten.input, Select)

    def test_project_fusion(self):
        inner = Project(Scan("R"), [("a", Col("x")), ("b", Col("y"))])
        outer = Project(inner, [("c", Col("a"))])
        fused = optimize(outer)
        assert isinstance(fused, Project)
        assert fused.input == Scan("R")
        assert fused.outputs == (("c", Col("x")),)

    def test_identity_rename_removed(self):
        assert optimize(Rename(Scan("R"), {"x": "x"})) == Scan("R")

    def test_union_with_empty_removed(self):
        assert optimize(UnionAll(Scan("R"), Values([]))) == Scan("R")
        assert optimize(UnionAll(Values([]), Scan("R"))) == Scan("R")

    def test_double_distinct_collapsed(self):
        assert optimize(Distinct(Distinct(Scan("R")))) == Distinct(Scan("R"))

    def test_fixpoint_terminates(self):
        expr = Scan("R")
        for _ in range(5):
            expr = Select(expr, TRUE)
        assert optimize(expr) == Scan("R")


# ----------------------------------------------------------------------
# semantics preservation (property-based)
# ----------------------------------------------------------------------
_row = st.fixed_dictionaries({
    "x": st.integers(-3, 3),
    "y": st.integers(-3, 3),
})


def _instances(draw):
    db = Instance()
    db.insert_all("R", draw(st.lists(_row, max_size=12)))
    db.insert_all("S", draw(st.lists(_row, max_size=12)))
    return db


@st.composite
def _expression(draw, depth=0):
    """Random algebra expressions over R(x, y) and S(x, y) that keep
    both columns visible (so nesting stays well-typed)."""
    if depth >= 3:
        return Scan(draw(st.sampled_from(["R", "S"])))
    kind = draw(st.sampled_from(
        ["scan", "select", "select", "project", "union", "join",
         "distinct", "rename_noop"]
    ))
    if kind == "scan":
        return Scan(draw(st.sampled_from(["R", "S"])))
    if kind == "select":
        inner = draw(_expression(depth=depth + 1))
        column = draw(st.sampled_from(["x", "y"]))
        comparison = draw(st.sampled_from(["=", "<", ">"]))
        value = draw(st.integers(-3, 3))
        predicate = {"=": eq, "<": lt, ">": gt}[comparison](Col(column), value)
        if draw(st.booleans()):
            predicate = And(predicate, draw(st.sampled_from([TRUE, predicate])))
        return Select(inner, predicate)
    if kind == "project":
        inner = draw(_expression(depth=depth + 1))
        return project_names(inner, ["x", "y"])
    if kind == "union":
        return UnionAll(
            draw(_expression(depth=depth + 1)),
            draw(_expression(depth=depth + 1)),
        )
    if kind == "join":
        return eq_join(
            draw(_expression(depth=depth + 1)),
            draw(_expression(depth=depth + 1)),
            [("x", "x")],
        )
    if kind == "distinct":
        return Distinct(draw(_expression(depth=depth + 1)))
    return Rename(draw(_expression(depth=depth + 1)), {"x": "x"})


@given(st.data())
@settings(max_examples=120, deadline=None)
def test_optimize_preserves_semantics(data):
    db = _instances(data.draw)
    expr = data.draw(_expression())
    original = evaluate(expr, db)
    optimized = evaluate(optimize(expr), db)
    bag = lambda rows: sorted(
        tuple(sorted(r.items())) for r in rows
    )
    assert bag(original) == bag(optimized)


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_optimize_is_idempotent(data):
    """A second pass finds nothing left to rewrite.  (Note: size may
    legitimately *grow* — pushing a selection into a union duplicates
    it — so idempotence, not shrinkage, is the invariant.)"""
    expr = data.draw(_expression())
    once = optimize(expr)
    assert optimize(once) == once
