"""Tests for instance serialization, DOT export and the CLI."""

import datetime
import json

import pytest

from repro.cli import main
from repro.instances import Instance, LabeledNull
from repro.instances.serialization import (
    dump_instance,
    instance_from_dict,
    instance_to_dict,
    load_instance,
)
from repro.metamodels.graphviz import correspondences_to_dot, schema_to_dot
from repro.metamodels.serialization import mapping_to_dict, schema_to_dict
from repro.workloads import paper
from tests.test_metamodel_schema import person_hierarchy


class TestInstanceSerialization:
    def test_roundtrip_plain_values(self):
        db = Instance()
        db.add("R", i=1, f=2.5, s="x", b=True, n=None)
        assert load_instance(dump_instance(db)) == db

    def test_roundtrip_labeled_nulls(self):
        db = Instance()
        db.add("R", v=LabeledNull(7, hint="f_x"))
        back = load_instance(dump_instance(db))
        value = back.rows("R")[0]["v"]
        assert isinstance(value, LabeledNull)
        assert value.label == 7 and value.hint == "f_x"

    def test_roundtrip_temporal_and_bytes(self):
        db = Instance()
        db.add("R", d=datetime.date(2020, 5, 17),
               ts=datetime.datetime(2021, 1, 2, 3, 4, 5),
               blob=b"\x00\xff")
        back = load_instance(dump_instance(db))
        row = back.rows("R")[0]
        assert row["d"] == datetime.date(2020, 5, 17)
        assert row["ts"].hour == 3
        assert row["blob"] == b"\x00\xff"

    def test_typed_rows_roundtrip(self):
        db = paper.figure2_er_instance()
        back = instance_from_dict(instance_to_dict(db), db.schema)
        assert back == db
        assert back.objects_of("Employee")

    def test_unserializable_rejected(self):
        from repro.errors import RepositoryError

        db = Instance()
        db.add("R", v=object())
        with pytest.raises(RepositoryError):
            instance_to_dict(db)


class TestDot:
    def test_schema_dot(self):
        dot = schema_to_dot(person_hierarchy())
        assert dot.startswith('digraph "ERS"')
        assert '"Employee" -> "Person"' in dot and "is-a" in dot
        assert "CreditScore" in dot

    def test_fk_edges(self):
        dot = schema_to_dot(paper.figure4_source_schema())
        assert '"Empl" -> "Addr"' in dot

    def test_correspondence_dot(self):
        dot = correspondences_to_dot(paper.figure4_correspondences())
        assert "cluster_source" in dot and "cluster_target" in dot
        assert '"S:Empl.Name" -> "T:Staff.Name"' in dot


@pytest.fixture
def artifacts(tmp_path):
    """Schema / mapping / instance JSON files for the CLI."""
    schema_path = tmp_path / "sql.json"
    schema_path.write_text(json.dumps(schema_to_dict(paper.figure2_sql_schema())))
    er_path = tmp_path / "er.json"
    er_path.write_text(json.dumps(schema_to_dict(paper.figure2_er_schema())))
    mapping_path = tmp_path / "mapping.json"
    mapping_path.write_text(
        json.dumps(mapping_to_dict(paper.figure2_mapping()), default=str)
    )
    data_path = tmp_path / "data.json"
    data_path.write_text(dump_instance(paper.figure2_sql_instance()))
    return {
        "schema": str(schema_path),
        "er": str(er_path),
        "mapping": str(mapping_path),
        "data": str(data_path),
        "dir": tmp_path,
    }


class TestCli:
    def test_describe(self, artifacts, capsys):
        assert main(["describe", artifacts["schema"]]) == 0
        out = capsys.readouterr().out
        assert "entity HR" in out and "entity Client" in out

    def test_validate_ok(self, artifacts, capsys):
        code = main(["validate", artifacts["schema"],
                     "--instance", artifacts["data"]])
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_validate_catches_bad_instance(self, artifacts, tmp_path, capsys):
        bad = Instance()
        bad.add("Empl", Id=999, Dept="Ghost")
        bad_path = tmp_path / "bad.json"
        bad_path.write_text(dump_instance(bad))
        code = main(["validate", artifacts["schema"],
                     "--instance", str(bad_path)])
        assert code == 1
        assert "inclusion violation" in capsys.readouterr().out

    def test_ddl(self, artifacts, capsys):
        assert main(["ddl", artifacts["schema"]]) == 0
        assert "CREATE TABLE HR" in capsys.readouterr().out

    def test_parse_ddl(self, artifacts, tmp_path, capsys):
        sql_file = tmp_path / "schema.sql"
        sql_file.write_text(
            "CREATE TABLE T (id INTEGER PRIMARY KEY, v TEXT);"
        )
        assert main(["parse-ddl", str(sql_file)]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["entities"][0]["name"] == "T"

    def test_dot(self, artifacts, capsys):
        assert main(["dot", artifacts["er"]]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_match(self, artifacts, capsys):
        code = main(["match", artifacts["schema"], artifacts["er"],
                     "--top-k", "2", "--threshold", "0.2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "≈" in out

    def test_modelgen(self, artifacts, tmp_path, capsys):
        out_path = tmp_path / "generated.json"
        code = main(["modelgen", artifacts["er"], "relational",
                     "--strategy", "TPH", "--out", str(out_path)])
        assert code == 0
        assert "Person_all" in capsys.readouterr().out
        assert out_path.exists()

    def test_exchange(self, artifacts, capsys):
        assert main(["exchange", artifacts["mapping"],
                     artifacts["data"]]) == 0
        result = json.loads(capsys.readouterr().out)
        assert len(result["relations"]["Person"]) == 5

    def test_sql(self, artifacts, capsys):
        assert main(["sql", artifacts["mapping"]]) == 0
        out = capsys.readouterr().out
        assert "query view for Person" in out and "UNION ALL" in out

    def test_explain_compare(self, artifacts, capsys):
        code = main(["explain", artifacts["mapping"], "Person",
                     "--data", artifacts["data"], "--compare"])
        assert code == 0
        out = capsys.readouterr().out
        assert "-- heuristic plan (--no-opt)" in out
        assert "-- cost-based plan" in out

    def test_explain_no_opt_json(self, artifacts, capsys):
        code = main(["explain", artifacts["mapping"], "Person",
                     "--data", artifacts["data"], "--no-opt", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["optimized"] is False
        assert payload["cost"] == payload["heuristic_cost"]

    def test_missing_file_is_graceful(self, capsys):
        assert main(["describe", "/nonexistent.json"]) == 2
        assert "error:" in capsys.readouterr().err
