"""Tests for schema well-formedness validation and incremental
matching."""

import pytest

from repro.errors import SchemaError
from repro.metamodel import (
    Attribute,
    Covering,
    Disjointness,
    INT,
    InclusionDependency,
    KeyConstraint,
    NotNull,
    STRING,
    Schema,
    SchemaBuilder,
)
from repro.metamodel.elements import Entity
from repro.metamodel.validation import schema_violations, validate_schema
from repro.operators.match import MatchConfig
from repro.operators.match.incremental import IncrementalMatcher
from repro.workloads import paper
from tests.test_metamodel_schema import person_hierarchy


class TestSchemaValidation:
    def test_valid_schemas(self):
        for schema in (
            person_hierarchy(),
            paper.figure4_source_schema(),
            paper.figure6_s_prime_schema(),
        ):
            assert schema_violations(schema) == []
            validate_schema(schema)

    def test_nullable_key(self):
        schema = Schema("S")
        entity = Entity("R")
        entity.add_attribute(Attribute("id", INT, nullable=True))
        entity.key = ("id",)
        schema.add_entity(entity)
        assert any("nullable" in v for v in schema_violations(schema))

    def test_missing_key_attribute(self):
        schema = Schema("S")
        entity = Entity("R")
        entity.key = ("ghost",)
        schema.add_entity(entity)
        assert any("does not exist" in v for v in schema_violations(schema))

    def test_dangling_key_constraint(self):
        schema = Schema("S")
        schema.add_constraint(KeyConstraint("Nope", ("x",)))
        assert any("unknown entity" in v for v in schema_violations(schema))

    def test_inclusion_arity_mismatch(self):
        schema = (
            SchemaBuilder("S")
            .entity("A", key=["x"]).attribute("x", INT).attribute("y", INT)
            .entity("B", key=["x"]).attribute("x", INT)
            .build()
        )
        schema.add_constraint(
            InclusionDependency("A", ("x", "y"), "B", ("x",))
        )
        assert any("arity" in v for v in schema_violations(schema))

    def test_inclusion_dangling_attribute(self):
        schema = (
            SchemaBuilder("S")
            .entity("A", key=["x"]).attribute("x", INT)
            .entity("B", key=["x"]).attribute("x", INT)
            .build()
        )
        schema.add_constraint(InclusionDependency("A", ("zz",), "B", ("x",)))
        assert any("zz" in v for v in schema_violations(schema))

    def test_covering_non_subtype(self):
        schema = person_hierarchy()
        schema.add_constraint(Covering("Employee", ("Customer",)))
        assert any(
            "not a subtype" in v for v in schema_violations(schema)
        )

    def test_not_null_dangling(self):
        schema = person_hierarchy()
        schema.add_constraint(NotNull("Person", "Ghost"))
        assert any("dangling" in v for v in schema_violations(schema))

    def test_shadowed_attribute(self):
        schema = person_hierarchy()
        schema.entity("Employee").add_attribute(Attribute("Name", STRING))
        assert any("shadows" in v for v in schema_violations(schema))

    def test_hierarchy_without_key(self):
        schema = Schema("S", metamodel="er")
        root = Entity("Root")
        root.add_attribute(Attribute("x", INT))
        child = Entity("Child")
        schema.add_entity(root)
        schema.add_entity(child)
        child.parent = root
        assert any("no key" in v for v in schema_violations(schema))

    def test_subtype_own_key_flagged(self):
        schema = person_hierarchy()
        schema.entity("Employee").key = ("Dept",)
        assert any(
            "keys belong to the hierarchy root" in v
            for v in schema_violations(schema)
        )

    def test_validate_raises(self):
        schema = Schema("S")
        schema.add_constraint(KeyConstraint("Nope", ("x",)))
        with pytest.raises(SchemaError):
            validate_schema(schema)


class TestIncrementalMatching:
    def _session(self):
        return IncrementalMatcher(
            paper.figure4_source_schema(),
            paper.figure4_target_schema(),
            MatchConfig(top_k=3, threshold=0.05),
        )

    def test_initial_candidates(self):
        session = self._session()
        candidates = session.candidates("Empl.Name")
        assert candidates
        assert candidates[0][0] == "Staff.Name"

    def test_accept_boosts_neighbours(self):
        session = self._session()
        before = session.matrix.get("Empl.EID", "Staff.SID")
        session.accept("Empl", "Staff")
        after = session.matrix.get("Empl.EID", "Staff.SID")
        assert after > before

    def test_accept_penalizes_competitors(self):
        session = self._session()
        before = session.matrix.get("Empl.Tel", "Staff.Name")
        session.accept("Empl.Name", "Staff.Name")
        after = session.matrix.get("Empl.Tel", "Staff.Name")
        assert after < before

    def test_reject_removes_candidate(self):
        session = self._session()
        session.reject("Empl.Tel", "Staff.Name")
        assert all(
            target != "Staff.Name"
            for target, _ in session.candidates("Empl.Tel")
        )

    def test_next_undecided_prefers_ambiguity(self):
        session = self._session()
        first = session.next_undecided()
        assert first is not None
        session.accept(first, session.candidates(first)[0][0])
        second = session.next_undecided()
        assert second != first

    def test_result_contains_confirmations(self):
        session = self._session()
        session.accept("Empl.Name", "Staff.Name")
        session.accept("Addr.City", "Staff.City")
        result = session.result()
        pairs = {(c.source.path, c.target.path, c.confidence)
                 for c in result}
        assert ("Empl.Name", "Staff.Name", 1.0) in pairs
        assert ("Addr.City", "Staff.City", 1.0) in pairs

    def test_full_session_converges(self):
        """Accept the top candidate for every element the tool asks
        about; the session ends with no undecided ambiguous elements
        and the confirmed pairs include the paper's Figure 4 arrows."""
        session = self._session()
        for _ in range(30):
            path = session.next_undecided()
            if path is None:
                break
            candidates = session.candidates(path)
            if not candidates:
                session._confirmed.add((path, "(none)"))
                continue
            session.accept(path, candidates[0][0])
        confirmed = {
            (s, t) for s, t in session._confirmed if t != "(none)"
        }
        assert ("Empl.Name", "Staff.Name") in confirmed
        assert ("Addr.City", "Staff.City") in confirmed
