"""Event journal, health monitor, and their CLI surfaces
(`repro journal`, `repro health`, `repro top`)."""

import json

import pytest

import repro.observability as obs
from repro.cli import main
from repro.instances import Instance
from repro.instances.serialization import dump_instance
from repro.logic import chase, parse_tgd
from repro.observability import registry
from repro.observability.health import (
    MONITOR,
    HealthConfig,
    HealthMonitor,
)
from repro.observability.journal import (
    JOURNAL,
    EventJournal,
    record_backpressure,
)
from repro.observability.querylog import QUERY_LOG


# ----------------------------------------------------------------------
# journal ring semantics
# ----------------------------------------------------------------------
class TestEventJournal:
    def test_ring_bound_keeps_newest(self):
        journal = EventJournal(capacity=3)
        for i in range(5):
            journal.record("demo.event", i=i)
        events = journal.events()
        assert len(events) == 3
        assert [e.attrs["i"] for e in events] == [2, 3, 4]
        assert [e.seq for e in events] == [3, 4, 5]

    def test_record_once_dedupes_until_clear(self):
        journal = EventJournal()
        assert journal.record_once("k", "demo.fallback") is not None
        assert journal.record_once("k", "demo.fallback") is None
        assert len(journal) == 1
        journal.clear()
        assert journal.record_once("k", "demo.fallback") is not None

    def test_kind_filter_exact_and_prefix(self):
        journal = EventJournal()
        journal.record("chase.round")
        journal.record("chase.egd.reconcile")
        journal.record("backpressure.wait")
        assert len(journal.events(kind="chase")) == 2
        assert len(journal.events(kind="chase.round")) == 1
        assert len(journal.events(kind="chase.rou")) == 0

    def test_trace_id_defaults_from_active_span(self):
        obs.enable()
        with obs.span("request") as root:
            event = JOURNAL.record("demo.event")
        assert event.trace_id == root.trace_id
        outside = JOURNAL.record("demo.event")
        assert outside.trace_id == ""

    def test_jsonl_sink_mirrors_events(self, tmp_path):
        journal = EventJournal()
        sink = tmp_path / "journal.jsonl"
        journal.configure(sink=sink)
        journal.record("demo.event", n=1)
        journal.record("demo.other", n=2)
        journal.clear()  # closes the sink
        lines = [json.loads(l) for l in sink.read_text().splitlines()]
        assert [l["kind"] for l in lines] == ["demo.event", "demo.other"]
        assert lines[1]["n"] == 2

    def test_render_and_export(self, tmp_path):
        journal = EventJournal()
        journal.record("demo.event", detail="x")
        text = journal.render()
        assert "demo.event" in text and "detail=x" in text
        path = journal.export_jsonl(tmp_path / "out.jsonl")
        assert json.loads(path.read_text())["kind"] == "demo.event"

    def test_clear_resets_sequence(self):
        journal = EventJournal()
        journal.record("demo.event")
        journal.clear()
        assert journal.record("demo.event").seq == 1

    def test_record_backpressure_feeds_metrics_and_journal(self):
        obs.enable()
        record_backpressure("test.site", 0.05, shard=1)
        hist = registry.histogram("backpressure.wait_ms")
        assert hist.count == 1
        assert hist.total == pytest.approx(50.0)
        assert registry.counter("backpressure.test.site.waits").value == 1
        event = JOURNAL.events(kind="backpressure.wait")[-1]
        assert event.attrs["site"] == "test.site"
        assert event.attrs["wait_ms"] == pytest.approx(50.0)

    def test_record_backpressure_noop_when_disabled(self):
        obs.disable()
        record_backpressure("test.site", 0.05)
        assert len(JOURNAL) == 0
        assert "backpressure.wait_ms" not in registry


# ----------------------------------------------------------------------
# engine events land in the journal
# ----------------------------------------------------------------------
class TestEngineJournaling:
    def _chase_db(self):
        db = Instance()
        db.insert_all("R0", [{"a": i} for i in range(20)])
        return db, [parse_tgd("R0(a=x) -> R1(a=x)")]

    def test_sequential_chase_journals_rounds(self):
        obs.enable()
        db, deps = self._chase_db()
        chase(db, deps)
        rounds = JOURNAL.events(kind="chase.round")
        assert rounds
        assert all("delta_rows" in e.attrs for e in rounds)

    def test_sharded_fallback_journals_and_counts(self):
        obs.enable()
        db = Instance()
        db.insert_all("R0", [{"a": i, "b": i} for i in range(10)])
        db.insert_all("S0", [{"a": i, "c": i} for i in range(10)])
        # The head drops the join variable, so no co-partitioning key
        # exists and the chase silently falls back to sequential.
        deps = [parse_tgd(
            "R0(a=x, b=y) & S0(a=x, c=z) -> T0(b=y, c=z)"
        )]
        chase(db, deps, shards=2)
        events = JOURNAL.events(kind="chase.sequential_fallback")
        assert len(events) == 1
        assert events[0].attrs["shards"] == 2
        assert registry.counter("chase.sequential_fallbacks").value == 1

    def test_disabled_chase_journals_nothing(self):
        obs.disable()
        db, deps = self._chase_db()
        chase(db, deps)
        assert len(JOURNAL) == 0


# ----------------------------------------------------------------------
# health signal derivation
# ----------------------------------------------------------------------
class TestHealthSignals:
    def test_empty_state_is_healthy_with_no_data(self):
        report = MONITOR.evaluate()
        assert report.ok
        by_name = {s.name: s for s in report.signals}
        assert by_name["shard_imbalance"].status == "no-data"
        assert by_name["divergence_rate"].status == "no-data"
        # Backpressure defaults to a measured zero, not no-data.
        assert by_name["backpressure_ms"].status == "ok"
        assert by_name["backpressure_ms"].value == 0.0

    def test_shard_imbalance_alerts_on_skew(self):
        hist = registry.histogram("span.chase.shard.round.wall_ms")
        for value in (1.0,) * 7 + (97.0,):  # mean 13, max 97
            hist.observe(value)
        report = MONITOR.evaluate()
        signal = {s.name: s for s in report.signals}["shard_imbalance"]
        assert signal.status == "alert"
        assert signal.value == pytest.approx(97.0 / 13.0)
        assert not report.ok

    def test_shard_imbalance_respects_min_rounds(self):
        hist = registry.histogram("span.chase.shard.round.wall_ms")
        for value in (1.0, 99.0):
            hist.observe(value)
        signal = {s.name: s for s in MONITOR.evaluate().signals}[
            "shard_imbalance"
        ]
        assert signal.status == "no-data"

    def test_backpressure_alerts_on_total_wait(self):
        obs.enable()
        record_backpressure("site", 1.5)  # 1500ms > 1000ms default
        signal = {s.name: s for s in MONITOR.evaluate().signals}[
            "backpressure_ms"
        ]
        assert signal.status == "alert"
        assert signal.value == pytest.approx(1500.0)

    def test_cache_eviction_rate(self):
        registry.counter("query.plan_cache.hits").inc(10)
        registry.counter("query.plan_cache.misses").inc(10)
        registry.counter("query.plan_cache.evictions").inc(15)
        signal = {s.name: s for s in MONITOR.evaluate().signals}[
            "cache_eviction_rate"
        ]
        assert signal.status == "alert"
        assert signal.value == pytest.approx(0.75)

    def test_query_rates_from_log(self):
        QUERY_LOG.configure(slow_ms=5.0)
        for i in range(20):
            QUERY_LOG.record(
                f"fp{i}", "compiled", False, 9.0 if i < 12 else 1.0, 0
            )
        config = HealthConfig(min_query_samples=20)
        by_name = {s.name: s for s in MONITOR.evaluate(config).signals}
        assert by_name["slow_query_rate"].value == pytest.approx(0.6)
        assert by_name["slow_query_rate"].status == "alert"
        assert by_name["divergence_rate"].value == 0.0

    def test_divergence_rate_counts_flagged(self):
        for i in range(20):
            worst = {"flagged": i < 15}
            QUERY_LOG.record(f"fp{i}", "compiled", False, 1.0, 0,
                             worst=worst)
        signal = {s.name: s for s in MONITOR.evaluate().signals}[
            "divergence_rate"
        ]
        assert signal.status == "alert"
        assert signal.value == pytest.approx(0.75)

    def test_with_overrides_rejects_unknown_key(self):
        with pytest.raises(KeyError):
            HealthConfig().with_overrides({"typo_max": 1.0})
        config = HealthConfig().with_overrides(
            {"slow_query_rate_max": 0.1, "min_query_samples": 5.0}
        )
        assert config.slow_query_rate_max == 0.1
        assert config.min_query_samples == 5  # coerced to int

    def test_check_journals_alerts_when_enabled(self):
        obs.enable()
        record_backpressure("site", 2.0)
        report = MONITOR.check()
        assert not report.ok
        assert MONITOR.last_report is report
        alerts = JOURNAL.events(kind="health.alert")
        assert any(e.attrs["signal"] == "backpressure_ms" for e in alerts)
        assert registry.counter("health.alerts").value >= 1

    def test_periodic_thread_starts_and_stops(self):
        monitor = HealthMonitor()
        monitor.start(interval=0.01)
        monitor.start(interval=0.01)  # idempotent
        assert monitor._thread is not None
        monitor.reset()
        assert monitor._thread is None
        assert monitor.last_report is None

    def test_report_renders_markers(self):
        obs.enable()
        record_backpressure("site", 2.0)
        text = MONITOR.evaluate().render()
        assert "ALERT" in text
        assert "✗ backpressure_ms" in text
        assert "·" in text  # no-data markers for the rest


# ----------------------------------------------------------------------
# CLI: repro journal / health / top
# ----------------------------------------------------------------------
@pytest.fixture
def workload(tmp_path):
    inst = Instance()
    for i in range(30):
        inst.insert("t", {"a": i, "b": i % 5})
    data = tmp_path / "data.json"
    data.write_text(dump_instance(inst))
    script = tmp_path / "workload.py"
    script.write_text(
        "from repro.instances.serialization import load_instance\n"
        "from repro.algebra import expressions as E\n"
        "from repro.algebra.evaluator import evaluate\n"
        "from repro.instances import Instance\n"
        "from repro.logic import chase, parse_tgd\n"
        f"inst = load_instance(open({str(data)!r}).read())\n"
        "evaluate(E.Scan('t'), inst)\n"
        "db = Instance()\n"
        "db.insert_all('R0', [{'a': i} for i in range(10)])\n"
        "chase(db, [parse_tgd('R0(a=x) -> R1(a=x)')])\n"
    )
    return script


def test_cli_journal_prints_and_exports(tmp_path, capsys, workload):
    out = tmp_path / "events.jsonl"
    code = main([
        "journal", str(workload), "--quiet",
        "--kind", "chase", "--out", str(out),
    ])
    assert code == 0
    printed = capsys.readouterr().out
    assert "chase.round" in printed
    lines = [json.loads(l) for l in out.read_text().splitlines()]
    assert any(l["kind"] == "chase.round" for l in lines)


def test_cli_journal_json(capsys, workload):
    assert main(["journal", str(workload), "--quiet", "--json"]) == 0
    lines = [
        json.loads(l) for l in capsys.readouterr().out.splitlines() if l
    ]
    assert all("kind" in l and "trace_id" in l for l in lines)


def test_cli_health_healthy_exits_zero(capsys, workload):
    assert main(["health", str(workload), "--quiet"]) == 0
    assert "health: OK" in capsys.readouterr().out


def test_cli_health_breach_exits_one(capsys, workload):
    code = main([
        "health", str(workload), "--quiet",
        "--threshold", "slow_query_rate_max=-1",
        "--threshold", "min_query_samples=1",
    ])
    assert code == 1
    out = capsys.readouterr().out
    assert "ALERT" in out and "slow_query_rate" in out


def test_cli_health_bad_threshold_exits_two(capsys):
    assert main(["health", "--threshold", "nonsense=1"]) == 2
    assert main(["health", "--threshold", "slow_query_rate_max"]) == 2


def test_cli_health_json(capsys, workload):
    assert main(["health", str(workload), "--quiet", "--json"]) == 0
    parsed = json.loads(capsys.readouterr().out)
    assert parsed["ok"] is True
    assert {s["name"] for s in parsed["signals"]} >= {
        "shard_imbalance", "backpressure_ms", "slow_query_rate",
    }


def test_cli_top_once(capsys, workload):
    assert main(["top", str(workload), "--once"]) == 0
    out = capsys.readouterr().out
    assert "repro top" in out
    assert "health:" in out
    assert "query.execute" in out or "chase" in out


def test_cli_top_script_failure_exits_one(tmp_path, capsys):
    script = tmp_path / "boom.py"
    script.write_text("raise RuntimeError('kaput')\n")
    assert main(["top", str(script), "--once"]) == 1
    assert "kaput" in capsys.readouterr().err
