"""Tests for the Compose operator — both algorithms, and the paper's
Figure 6 scenario end-to-end."""

import pytest

from repro.algebra import evaluate
from repro.errors import CompositionError
from repro.instances import Instance
from repro.logic import chase, parse_tgd
from repro.logic.homomorphism import are_hom_equivalent
from repro.mappings import Mapping, MappingLanguage
from repro.operators import compose
from repro.operators.compose import view_definitions, unfold_scans
from repro.workloads import paper, synthetic
from repro.metamodel import INT, SchemaBuilder


def _simple_schemas():
    a = SchemaBuilder("A").entity("R", key=["k"]).attribute("k", INT) \
        .attribute("v", INT).build()
    b = SchemaBuilder("B").entity("S", key=["k"]).attribute("k", INT) \
        .attribute("v", INT).build()
    c = SchemaBuilder("C").entity("T", key=["k"]).attribute("k", INT) \
        .attribute("v", INT).build()
    return a, b, c


class TestTgdComposition:
    def test_copy_chain(self):
        a, b, c = _simple_schemas()
        m12 = Mapping(a, b, [parse_tgd("R(k=x, v=y) -> S(k=x, v=y)")])
        m23 = Mapping(b, c, [parse_tgd("S(k=x, v=y) -> T(k=x, v=y)")])
        composed = compose(m12, m23)
        assert composed.source.name == "A" and composed.target.name == "C"
        assert composed.language == MappingLanguage.ST_TGD
        assert len(composed.tgds) == 1
        tgd = composed.tgds[0]
        assert tgd.body[0].relation == "R" and tgd.head[0].relation == "T"
        assert tgd.is_full

    def test_composition_semantics_on_instances(self):
        """⟨D1, D3⟩ satisfies the composition iff the exchange through
        the middle produces it."""
        a, b, c = _simple_schemas()
        m12 = Mapping(a, b, [parse_tgd("R(k=x, v=y) -> S(k=x, v=y)")])
        m23 = Mapping(b, c, [parse_tgd("S(k=x, v=y) -> T(k=x, v=y)")])
        composed = compose(m12, m23)
        d1 = Instance()
        d1.add("R", k=1, v=2)
        d3 = Instance()
        d3.add("T", k=1, v=2)
        assert composed.holds_for(d1, d3)
        assert not composed.holds_for(d1, Instance())

    def test_projection_then_use(self):
        a, b, c = _simple_schemas()
        m12 = Mapping(a, b, [parse_tgd("R(k=x, v=y) -> S(k=x, v=y)")])
        m23 = Mapping(b, c, [parse_tgd("S(k=x, v=y) -> T(k=y, v=x)")])
        composed = compose(m12, m23)
        tgd = composed.tgds[0]
        assert tgd.head[0].term("k") == tgd.body[0].term("v")

    def test_existential_in_first_mapping(self):
        """m12 invents a value; m23 copies it: the composition keeps it
        existential (de-Skolemizable)."""
        a, b, c = _simple_schemas()
        m12 = Mapping(a, b, [parse_tgd("R(k=x, v=y) -> S(k=x, v=e)")])
        m23 = Mapping(b, c, [parse_tgd("S(k=x, v=y) -> T(k=x, v=y)")])
        composed = compose(m12, m23)
        assert composed.language == MappingLanguage.ST_TGD
        tgd = composed.tgds[0]
        assert tgd.existentials()  # the invented v survives as ∃

    def test_second_order_needed(self):
        """The classic non-FO case: m23 joins on the invented value
        twice — the composition needs a Skolem function shared across
        atoms and stays second-order."""
        a = SchemaBuilder("A").entity("Emp", key=["e"]).attribute("e", INT).build()
        b = SchemaBuilder("B").entity("Mgr", key=["e"]).attribute("e", INT) \
            .attribute("m", INT).build()
        c = SchemaBuilder("C").entity("SelfMgr", key=["e"]).attribute("e", INT) \
            .build()
        m12 = Mapping(a, b, [parse_tgd("Emp(e=x) -> Mgr(e=x, m=y)")])
        m23 = Mapping(b, c, [parse_tgd("Mgr(e=x, m=x) -> SelfMgr(e=x)")])
        composed = compose(m12, m23)
        assert composed.language == MappingLanguage.SO_TGD
        assert composed.so_tgd is not None
        assert composed.so_tgd.functions  # genuine Skolem functions

    def test_multi_atom_body_case_product(self):
        m12, m23 = synthetic.composition_pair_exponential(width=3)
        composed = compose(m12, m23, prefer_first_order=False)
        # 2 origin choices per of 3 atoms → 8 implications.
        assert len(composed.so_tgd.implications) == 8

    def test_exponential_growth(self):
        sizes = []
        for width in (1, 2, 3, 4, 5):
            m12, m23 = synthetic.composition_pair_exponential(width)
            composed = compose(m12, m23, prefer_first_order=False)
            sizes.append(len(composed.so_tgd.implications))
        assert sizes == [2, 4, 8, 16, 32]

    def test_unproducible_middle_relation_vacuous(self):
        a, b, c = _simple_schemas()
        m12 = Mapping(a, b, [])  # produces nothing in B
        m23 = Mapping(b, c, [parse_tgd("S(k=x, v=y) -> T(k=x, v=y)")])
        composed = compose(m12, m23)
        assert composed.constraint_count() == 0

    def test_schema_mismatch_rejected(self):
        a, b, c = _simple_schemas()
        m12 = Mapping(a, b, [parse_tgd("R(k=x, v=y) -> S(k=x, v=y)")])
        m_ca = Mapping(c, a, [parse_tgd("T(k=x, v=y) -> R(k=x, v=y)")])
        with pytest.raises(CompositionError):
            compose(m12, m_ca)

    def test_composed_exchange_equals_two_step_exchange(self):
        """Chasing with the composed mapping gives the same target (up
        to homomorphic equivalence) as chasing twice."""
        mappings = synthetic.composition_chain_linear(2, relations=2)
        composed = compose(mappings[0], mappings[1])
        source = Instance()
        source.add("L0R0", L0R0_k=1, L0R0_a0=10, L0R0_a1=11)
        source.add("L0R1", L0R1_k=2, L0R1_a0=20, L0R1_a1=21)

        step1 = chase(source, mappings[0].tgds).instance
        step2 = chase(step1, mappings[1].tgds).instance
        direct = chase(source, composed.tgds).instance
        final_relations = set(mappings[1].target.entities)
        two_step = Instance()
        one_step = Instance()
        for relation in final_relations:
            two_step.relations[relation] = step2.rows(relation)
            one_step.relations[relation] = direct.rows(relation)
        assert are_hom_equivalent(two_step, one_step)


class TestEqualityComposition:
    def test_view_definitions_direct(self):
        definitions = view_definitions(paper.figure6_map_s_sprime())
        assert set(definitions) == {"Names", "Addresses"}

    def test_complementary_split_reconstructed(self):
        definitions = view_definitions(paper.figure6_map_s_sprime())
        # Addresses = (Local × {'US'}) ∪ Foreign — evaluate to check.
        expr = definitions["Addresses"]
        result = evaluate(expr, paper.figure6_s_prime_instance())
        expected = paper.figure6_s_instance().rows("Addresses")
        assert {frozenset(r.items()) for r in result} == {
            frozenset(r.items()) for r in expected
        }

    def test_figure6_composition(self):
        """The composed mapping must behave exactly like the paper's
        stated result: Students = π(Names′ ⋈ (Local×{'US'} ∪ Foreign))."""
        composed = compose(paper.figure6_map_v_s(), paper.figure6_map_s_sprime())
        assert composed.source.name == "V"
        assert composed.target.name == "Sprime"
        constraint = composed.equalities[0]
        s_prime = paper.figure6_s_prime_instance()
        ours = evaluate(constraint.target_expr, s_prime)
        stated = evaluate(paper.figure6_composed_view_expr(), s_prime)
        assert {frozenset(r.items()) for r in ours} == {
            frozenset(r.items()) for r in stated
        }

    def test_figure6_composed_mapping_holds(self):
        composed = compose(paper.figure6_map_v_s(), paper.figure6_map_s_sprime())
        students = Instance(paper.figure6_view_schema())
        students.insert_all("Students", [
            {"Name": "Ann", "Address": "12 Elm St", "Country": "US"},
            {"Name": "Bob", "Address": "9 Oak Ave", "Country": "US"},
            {"Name": "Chen", "Address": "5 Rue Neuve", "Country": "FR"},
        ])
        assert composed.holds_for(students, paper.figure6_s_prime_instance())
        students.add("Students", Name="Zed", Address="x", Country="ZZ")
        assert not composed.holds_for(students, paper.figure6_s_prime_instance())

    def test_unfold_scans_leaves_other_relations(self):
        from repro.algebra import Scan, project_names

        expr = project_names(Scan("Keep"), ["a"])
        assert unfold_scans(expr, {"Other": Scan("X")}) == expr
