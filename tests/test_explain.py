"""EXPLAIN / EXPLAIN ANALYZE: plan trees, per-node profiles, CSE memo
accounting, and the chase's per-dependency profile.

The per-node profile must agree with the plan's actual execution: rows
at the root equal the result, CSE-shared nodes count every reference
(memo hits = calls − 1), and the charge-once self times telescope
exactly to the root's inclusive time.  ``explain_analyze`` runs a
*second*, wrapped compilation, so these tests also pin that the
ordinary pipeline result is unchanged (parity with ``evaluate``).
"""

import pytest

import repro.observability as obs
from repro.algebra import (
    Col,
    Comparison,
    Distinct,
    EntityScan,
    IsOf,
    Project,
    Scan,
    Select,
    UnionAll,
    clear_plan_cache,
    eq_join,
    evaluate,
    explain,
    explain_analyze,
    node_label,
    project_names,
    render_plan,
)
from repro.instances import Instance
from repro.logic import chase, parse_egd, parse_tgd
from repro.runtime import QueryProcessor
from repro.workloads import paper


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def people() -> Instance:
    db = Instance()
    for i in range(20):
        db.add("People", pid=i, dept="Sales" if i % 2 else "Eng")
    for d in ("Sales", "Eng", "Legal"):
        db.add("Depts", dept=d)
    return db


def shared_plan():
    """A DAG: the same Select object referenced from both union arms,
    which is exactly how view unfolding produces sharing."""
    base = Select(Scan("People"), Comparison("=", Col("dept"), Col("dept")))
    left = project_names(base, ["pid"])
    right = project_names(base, ["dept"])
    return base, UnionAll(left, right)


class TestExplain:
    def test_explain_renders_every_node(self):
        _, expr = shared_plan()
        result = explain(expr, engine="compiled")
        text = result.render()
        assert "cache=miss" in text
        assert "∪" in text and "π" in text and "σ" in text
        assert "(union_static)" in text and "(scan)" in text
        # the shared Select renders once (⊛) plus one back-reference
        assert text.count("⊛") == 1
        assert "↻ see #" in text
        # second explain hits the plan cache
        assert explain(expr, engine="compiled").cache_hit

    def test_explain_vectorized_same_tree_shape(self):
        _, expr = shared_plan()
        row = explain(expr, engine="compiled")
        vec = explain(expr, engine="vectorized")
        text = vec.render()
        assert "(vec_union)" in text and "(vec_scan)" in text
        assert text.count("⊛") == 1 and "↻ see #" in text
        # node-for-node identical shape, only strategy names differ
        assert len(row.plan.nodes) == len(vec.plan.nodes)
        for a, b in zip(row.plan.nodes, vec.plan.nodes):
            assert (a.node_id, a.children, a.shared) == (
                b.node_id, b.children, b.shared
            )

    def test_to_dict_round_trips_node_tree(self):
        _, expr = shared_plan()
        data = explain(expr).to_dict()
        assert data["cache_hit"] is False
        assert data["root_id"] in {n["node_id"] for n in data["nodes"]}
        shared = [n for n in data["nodes"] if n["shared"]]
        assert len(shared) == 1

    def test_node_label_truncates(self):
        expr = Scan("SomeVeryLongRelationNameThatGoesOnAndOnForever" * 3)
        label = node_label(expr, max_width=20)
        assert len(label) <= 20 and label.endswith("…")


class TestExplainAnalyze:
    def test_root_rows_match_result_and_parity_with_evaluate(self):
        db = people()
        expr = Distinct(project_names(Scan("People"), ["dept"]))
        result = explain_analyze(expr, db)
        assert sorted(r["dept"] for r in result.rows) == ["Eng", "Sales"]
        assert result.profile.result_rows == 2
        assert result.profile.rows_out(result.plan.root_id) == 2
        # the profiled pipeline did not perturb the ordinary one
        assert evaluate(expr, db) == result.rows

    def test_cse_memo_hits_counted_per_reference(self):
        db = people()
        base, expr = shared_plan()
        result = explain_analyze(expr, db)
        profile = result.profile
        shared_ids = [n.node_id for n in result.plan.nodes if n.shared]
        assert len(shared_ids) == 1
        (node_id,) = shared_ids
        assert profile.calls(node_id) == 2
        assert profile.memo_hits(node_id) == 1
        # the memoized stage produced its rows once, but both parents
        # consumed them — rows_out counts per reference
        assert profile.rows_out(node_id) == 2 * db.cardinality("People")

    def test_self_times_telescope_to_root_inclusive(self):
        db = people()
        _, expr = shared_plan()
        profile = explain_analyze(expr, db).profile
        self_times = profile.self_time_ms()
        assert len(self_times) == len(profile.nodes)
        root_inclusive = profile.time_ms(profile.root_id)
        assert sum(self_times) == pytest.approx(root_inclusive, abs=1e-9)

    def test_render_includes_annotations(self):
        db = people()
        expr = eq_join(Scan("People"), Scan("Depts"), [("dept", "dept")])
        text = explain_analyze(expr, db).render()
        assert "rows=" in text and "time=" in text and "self=" in text
        assert "total=" in text

    def test_profile_total_nests_inside_execute_span(self):
        db = people()
        expr = Distinct(project_names(Scan("People"), ["dept"]))
        obs.enable()
        try:
            result = explain_analyze(expr, db)
            spans = [
                s for s in obs.tracer.iter_spans()
                if s.name == "query.execute"
            ]
        finally:
            obs.disable()
        assert len(spans) == 1
        assert result.profile.total_ms <= spans[0].wall_ms + 1e-6

    def test_render_plan_accepts_profile_none(self):
        _, expr = shared_plan()
        plan = explain(expr).plan
        assert "rows=" not in render_plan(plan.nodes, plan.root_id)


class TestEstimates:
    def test_explain_without_instance_shows_no_estimates(self):
        _, expr = shared_plan()
        result = explain(expr)
        assert result.estimates is None
        assert "est=" not in result.render()
        assert all(n["est_rows"] is None for n in result.to_dict()["nodes"])

    def test_explain_with_instance_annotates_every_node(self):
        db = people()
        _, expr = shared_plan()
        for engine in ("vectorized", "compiled", "interpreted"):
            result = explain(expr, engine=engine, instance=db)
            assert result.estimates is not None
            assert all(est is not None for est in result.estimates)
            assert "est=" in result.render()
        # the two compiling engines agree estimate-for-estimate
        vec = explain(expr, engine="vectorized", instance=db)
        row = explain(expr, engine="compiled", instance=db)
        assert vec.estimates == row.estimates

    def test_stale_estimates_not_reported_without_instance(self):
        db = people()
        _, expr = shared_plan()
        explain(expr, instance=db)  # annotates the cached plan's nodes
        bare = explain(expr)
        assert bare.estimates is None
        assert all(
            n["est_rows"] is None for n in bare.to_dict()["nodes"]
        )

    def test_explain_analyze_reports_divergence(self):
        db = people()
        expr = eq_join(Scan("People"), Scan("Depts"), [("dept", "dept")])
        result = explain_analyze(expr, db)
        text = result.render()
        assert "est=" in text and "div=×" in text
        assert "worst divergence:" in text
        assert result.worst is not None
        assert result.worst["ratio"] >= 1.0
        data = result.to_dict()
        assert data["worst_divergent"] == result.worst
        assert all(
            n["est_rows"] is not None for n in data["profile"]["nodes"]
        )

    def test_exact_stats_make_exact_scan_estimates(self):
        db = people()
        result = explain_analyze(Scan("People"), db)
        (estimate,) = result.estimates
        assert estimate == db.cardinality("People")
        assert result.worst["ratio"] == pytest.approx(1.0)

    def test_processor_explain_carries_source_estimates(self):
        processor = QueryProcessor(
            paper.figure2_mapping(), paper.figure2_sql_instance()
        )
        query = Project(
            Select(EntityScan("Person"), IsOf("Employee")),
            [("Id", Col("Id")), ("Dept", Col("Dept"))],
        )
        assert "est=" in processor.explain(query).render()


class TestQueryProcessorExplain:
    def test_equality_mapping_explains_unfolded_plan(self):
        processor = QueryProcessor(
            paper.figure2_mapping(), paper.figure2_sql_instance()
        )
        query = Project(
            Select(EntityScan("Person"), IsOf("Employee")),
            [("Id", Col("Id")), ("Dept", Col("Dept"))],
        )
        text = processor.explain(query).render()
        # the unfolded plan reads source relations, not the target view
        assert "HR" in text or "Empl" in text

    def test_explain_analyze_rows_match_answer_algebra(self):
        processor = QueryProcessor(
            paper.figure2_mapping(), paper.figure2_sql_instance()
        )
        query = Project(
            Select(EntityScan("Person"), IsOf("Employee")),
            [("Id", Col("Id")), ("Dept", Col("Dept"))],
        )
        result = processor.explain_analyze(query)
        assert {(r["Id"], r["Dept"]) for r in result.rows} == {
            (2, "Sales"), (3, "Engineering"),
        }
        assert result.profile.result_rows == len(result.rows)


class TestChaseProfile:
    def deps(self):
        return [
            parse_tgd("Emp(eid=e, dept=d) -> Dept(dept=d)"),
            parse_tgd("Dept(dept=d) -> Mgr(dept=d, boss=b)"),
            parse_egd("Mgr(dept=d, boss=b1) & Mgr(dept=d, boss=b2) "
                      "-> b1 = b2"),
        ]

    def instance(self):
        db = Instance()
        for i in range(40):
            db.add("Emp", eid=i, dept=f"d{i % 4}")
        return db

    def test_profile_kinds_and_counts(self):
        result = chase(self.instance(), self.deps())
        profile = result.profile()
        assert profile is not None
        by_name = {e.name: e for e in profile.entries}
        kinds = {e.kind for e in profile.entries}
        assert kinds == {"tgd", "tgd∃", "egd"}
        for entry in profile.entries:
            assert entry.fired <= entry.examined
            assert entry.suppressed == entry.examined - entry.fired
            assert entry.wall_ms >= 0.0
        # the full tgd examined every Emp row at least once
        full = next(e for e in by_name.values() if e.kind == "tgd")
        assert full.examined >= 40
        assert full.fired == 4  # one Dept row per distinct dept

    def test_render_is_a_table_sorted_by_wall(self):
        profile = chase(self.instance(), self.deps()).profile()
        text = profile.render()
        assert "dependency" in text and "examined" in text
        walls = [e.wall_ms for e in profile.entries]
        assert walls == sorted(walls, reverse=True)

    def test_to_dict_shape(self):
        data = chase(self.instance(), self.deps()).profile().to_dict()
        assert {"name", "kind", "triggers_examined", "fired",
                "suppressed", "wall_ms"} <= set(data["dependencies"][0])
