"""Round-trip properties over randomly generated artifacts: DDL,
instance JSON, and nested documents."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.instances import (
    InstanceGenerator,
    dump_instance,
    load_instance,
)
from repro.metamodels import emit_ddl, parse_ddl
from repro.metamodels.serialization import schema_to_dict
from repro.workloads import synthetic


@given(st.integers(0, 2**16), st.integers(1, 2), st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_ddl_roundtrip_random_schemas(seed, depth, branching):
    """parse_ddl(emit_ddl(s)) preserves entities, attributes, keys and
    foreign keys for any generated relational schema."""
    schema = synthetic.snowflake_schema("DR", depth=depth,
                                        branching=branching,
                                        attributes_per_entity=3, seed=seed)
    parsed = parse_ddl(emit_ddl(schema), schema_name=schema.name)
    assert set(parsed.entities) == set(schema.entities)
    for entity in schema.entities.values():
        parsed_entity = parsed.entity(entity.name)
        assert parsed_entity.key == entity.key
        assert parsed_entity.own_attribute_names() == (
            entity.own_attribute_names()
        )
    assert set(parsed.inclusion_dependencies()) == set(
        schema.inclusion_dependencies()
    )


@given(st.integers(0, 2**16), st.integers(0, 25))
@settings(max_examples=30, deadline=None)
def test_instance_json_roundtrip_random_data(seed, rows):
    schema = synthetic.flat_schema("IR", relations=2, attributes=3)
    instance = InstanceGenerator(schema, seed=seed).generate(rows)
    revived = load_instance(dump_instance(instance), schema)
    assert revived == instance


@given(st.integers(0, 2**16))
@settings(max_examples=20, deadline=None)
def test_generated_instances_of_rich_types_serialize(seed):
    """The generator emits every primitive type (dates, floats, bools,
    strings); all of them must survive the JSON round-trip."""
    from repro.metamodel import (
        BINARY, BOOL, DATE, DATETIME, FLOAT, INT, STRING, SchemaBuilder,
    )

    schema = (
        SchemaBuilder("Rich", metamodel="relational")
        .entity("R", key=["k"])
        .attribute("k", INT)
        .attribute("b", BOOL)
        .attribute("f", FLOAT)
        .attribute("s", STRING)
        .attribute("d", DATE)
        .attribute("ts", DATETIME)
        .attribute("raw", BINARY)
        .build()
    )
    instance = InstanceGenerator(schema, seed=seed).generate(10)
    revived = load_instance(dump_instance(instance), schema)
    assert revived == instance


@given(st.integers(0, 2**16))
@settings(max_examples=20, deadline=None)
def test_nested_document_roundtrip_random(seed):
    """flatten → nest is the identity on well-formed documents."""
    import random

    from repro.metamodel import INT, STRING, SchemaBuilder
    from repro.metamodels import flatten_documents, nest_instance

    schema = (
        SchemaBuilder("ND", metamodel="nested")
        .entity("Parent", key=["pid"]).attribute("pid", INT)
        .attribute("label", STRING)
        .entity("Child", key=["cid"]).attribute("cid", INT)
        .attribute("qty", INT)
        .containment("Parent", "Child", name="children")
        .build()
    )
    rng = random.Random(seed)
    next_cid = iter(range(10_000))
    documents = [
        {
            "pid": pid,
            "label": f"L{rng.randrange(9)}",
            "children": [
                {"cid": next(next_cid), "qty": rng.randrange(5)}
                for _ in range(rng.randrange(3))
            ],
        }
        for pid in range(rng.randrange(4))
    ]
    flat = flatten_documents(schema, "Parent", documents)
    assert nest_instance(schema, "Parent", flat) == documents
