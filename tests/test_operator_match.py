"""Tests for the Match operator: individual matchers, the ensemble,
top-k behaviour and quality evaluation."""

import pytest

from repro.instances import InstanceGenerator
from repro.metamodel import INT, STRING, DATE, SchemaBuilder
from repro.operators.match import (
    DatatypeMatcher,
    InstanceBasedMatcher,
    LexicalMatcher,
    MatchConfig,
    SimilarityFlooding,
    ThesaurusMatcher,
    evaluate_against_truth,
    match,
    name_similarity,
    tokenize,
)
from repro.operators.match.base import SimilarityMatrix
from repro.workloads import paper, synthetic


class TestTokenize:
    def test_camel_case(self):
        assert tokenize("billingAddr") == ("billing", "addr")

    def test_snake_case(self):
        assert tokenize("billing_addr") == ("billing", "addr")

    def test_acronym_boundary(self):
        assert tokenize("HTTPResponse") == ("http", "response")

    def test_digits(self):
        assert tokenize("addr2") == ("addr", "2")


class TestNameSimilarity:
    def test_identity(self):
        assert name_similarity("Name", "Name") == 1.0

    def test_case_insensitive(self):
        assert name_similarity("NAME", "name") > 0.9

    def test_abbreviation(self):
        assert name_similarity("Department", "Dept") > 0.5

    def test_token_reorder(self):
        assert name_similarity("customer_name", "NameOfCustomer") > 0.5

    def test_unrelated_low(self):
        assert name_similarity("Zip", "Quantity") < 0.35

    def test_similar_beats_dissimilar(self):
        assert name_similarity("EID", "SID") > name_similarity("EID", "BirthDate")


class TestIndividualMatchers:
    def test_lexical_figure4(self):
        matrix = LexicalMatcher().similarity(
            paper.figure4_source_schema(), paper.figure4_target_schema()
        )
        assert matrix.get("Empl.Name", "Staff.Name") > 0.8
        assert matrix.get("Addr.City", "Staff.City") > 0.6
        assert matrix.get("Empl.Name", "Staff.Name") > matrix.get(
            "Empl.Tel", "Staff.Name"
        )

    def test_datatype(self):
        matrix = DatatypeMatcher().similarity(
            paper.figure4_source_schema(), paper.figure4_target_schema()
        )
        assert matrix.get("Empl.EID", "Staff.SID") == 1.0  # both int
        assert matrix.get("Empl.Name", "Staff.SID") < 0.5  # string vs int

    def test_thesaurus(self):
        first = (
            SchemaBuilder("A").entity("Customer", key=["id"])
            .attribute("id", INT).attribute("phone", STRING).build()
        )
        second = (
            SchemaBuilder("B").entity("Client", key=["key"])
            .attribute("key", INT).attribute("telephone", STRING).build()
        )
        matrix = ThesaurusMatcher().similarity(first, second)
        assert matrix.get("Customer", "Client") == 1.0
        assert matrix.get("Customer.phone", "Client.telephone") == 1.0
        assert matrix.get("Customer.id", "Client.key") == 1.0  # synonyms

    def test_instance_based(self):
        schema = paper.figure4_source_schema()
        source_db = InstanceGenerator(schema, seed=1).generate(80)
        # A copy with identical data distribution.
        target_db = InstanceGenerator(schema, seed=1).generate(80)
        matcher = InstanceBasedMatcher(source_db, target_db)
        matrix = matcher.similarity(schema, schema)
        assert matrix.get("Empl.Name", "Empl.Name") > 0.8
        assert matrix.get("Empl.Name", "Empl.Name") > matrix.get(
            "Empl.Name", "Addr.Zip"
        )

    def test_similarity_flooding_uses_structure(self):
        """Two attributes with identical names on different entities:
        flooding should prefer the one whose entity also matches."""
        first = (
            SchemaBuilder("A")
            .entity("Order", key=["oid"]).attribute("oid", INT)
            .attribute("total", INT)
            .entity("Invoice", key=["iid"]).attribute("iid", INT)
            .attribute("total", INT)
            .build()
        )
        second = (
            SchemaBuilder("B")
            .entity("Order2", key=["oid"]).attribute("oid", INT)
            .attribute("total", INT)
            .build()
        )
        matrix = SimilarityFlooding(iterations=25).similarity(first, second)
        assert matrix.get("Order.total", "Order2.total") > matrix.get(
            "Invoice.total", "Order2.total"
        )


class TestEnsemble:
    def test_match_figure4(self):
        correspondences = match(
            paper.figure4_source_schema(), paper.figure4_target_schema(),
            MatchConfig(top_k=2),
        )
        pairs = {(c.source.path, c.target.path) for c in correspondences}
        assert ("Empl.Name", "Staff.Name") in pairs
        assert ("Empl", "Staff") in pairs

    def test_entities_only_match_entities(self):
        correspondences = match(
            paper.figure4_source_schema(), paper.figure4_target_schema()
        )
        for c in correspondences:
            assert c.source.is_entity == c.target.is_entity

    def test_top_k_keeps_candidates(self):
        k1 = match(paper.figure4_source_schema(), paper.figure4_target_schema(),
                   MatchConfig(top_k=1, threshold=0.1))
        k3 = match(paper.figure4_source_schema(), paper.figure4_target_schema(),
                   MatchConfig(top_k=3, threshold=0.1))
        assert len(k3) >= len(k1)

    def test_no_matcher_rejected(self):
        with pytest.raises(ValueError):
            match(
                paper.figure4_source_schema(),
                paper.figure4_target_schema(),
                MatchConfig(weights={}),
            )

    def test_perturbed_copy_recovery(self):
        """On a renamed copy, top-3 candidates should contain the true
        target for most elements — the paper's target metric."""
        schema = synthetic.snowflake_schema("Base", depth=1, branching=2,
                                            attributes_per_entity=3, seed=3)
        copy, truth = synthetic.perturbed_copy(schema, rename_probability=0.6,
                                               seed=4)
        correspondences = match(schema, copy, MatchConfig(top_k=3,
                                                          threshold=0.1))
        quality = evaluate_against_truth(correspondences, truth)
        assert quality.top_k_hit_rate > 0.8
        assert quality.recall > 0.6

    def test_top_k_beats_best_one(self):
        """Top-k candidate lists hit at least as often as best-1 —
        the quantified version of the paper's Section 3.1.1 claim."""
        schema = synthetic.snowflake_schema("Base2", depth=1, branching=2,
                                            seed=7)
        copy, truth = synthetic.perturbed_copy(schema, rename_probability=0.7,
                                               seed=8)
        all_candidates = match(schema, copy, MatchConfig(top_k=3,
                                                         threshold=0.1))
        best_one = all_candidates.best_one_to_one()
        top_quality = evaluate_against_truth(all_candidates, truth)
        one_quality = evaluate_against_truth(best_one, truth)
        assert top_quality.top_k_hit_rate >= one_quality.top_k_hit_rate


class TestSimilarityMatrix:
    def test_blend(self):
        s = paper.figure4_source_schema()
        t = paper.figure4_target_schema()
        a = SimilarityMatrix(s, t)
        a.set("Empl", "Staff", 0.6)
        b = SimilarityMatrix(s, t)
        b.set("Empl", "Staff", 0.2)
        b.set("Addr", "Staff", 1.0)
        combined = a.scale(0.5).blend([(b, 0.5)])
        assert combined.get("Empl", "Staff") == pytest.approx(0.4)
        assert combined.get("Addr", "Staff") == pytest.approx(0.5)

    def test_set_clamps_and_prunes(self):
        s = paper.figure4_source_schema()
        t = paper.figure4_target_schema()
        m = SimilarityMatrix(s, t)
        m.set("Empl", "Staff", 1.7)
        assert m.get("Empl", "Staff") == 1.0
        m.set("Empl", "Staff", 0.0)
        assert len(m) == 0

    def test_best_for_source(self):
        s = paper.figure4_source_schema()
        t = paper.figure4_target_schema()
        m = SimilarityMatrix(s, t)
        m.set("Empl", "Staff", 0.9)
        m.set("Empl", "Staff.SID", 0.3)
        best = m.best_for_source("Empl", k=1)
        assert best == [("Staff", 0.9)]
