"""Tests for logical→physical mapping rewriting (§5 'Data exchange')
and parser round-trip properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra import Col, Project, Scan, eq_join, project_names
from repro.errors import CompositionError
from repro.instances import Instance
from repro.logic import parse_tgd
from repro.logic.formulas import Atom
from repro.logic.terms import Const, Var
from repro.mappings import EqualityConstraint, Mapping
from repro.metamodel import INT, STRING, SchemaBuilder
from repro.operators.compose import rewrite_to_physical


def _logical_physical_stack():
    """Logical S(People) over physical SP(P1, P2) split vertically;
    logical T(Folks) over physical TP(F) with renamed columns."""
    s = (
        SchemaBuilder("S").entity("People", key=["id"])
        .attribute("id", INT).attribute("name", STRING)
        .attribute("city", STRING).build()
    )
    sp = (
        SchemaBuilder("SP")
        .entity("P1", key=["id"]).attribute("id", INT)
        .attribute("name", STRING)
        .entity("P2", key=["id"]).attribute("id", INT)
        .attribute("city", STRING)
        .build()
    )
    t = (
        SchemaBuilder("T").entity("Folks", key=["id"])
        .attribute("id", INT).attribute("name", STRING)
        .attribute("city", STRING).build()
    )
    tp = (
        SchemaBuilder("TP").entity("F", key=["fid"])
        .attribute("fid", INT).attribute("fname", STRING)
        .attribute("fcity", STRING).build()
    )
    map_s_sp = Mapping(s, sp, [
        EqualityConstraint(
            source_expr=project_names(Scan("People"), ["id", "name", "city"]),
            target_expr=project_names(
                eq_join(Scan("P1"), Scan("P2"), [("id", "id")]),
                ["id", "name", "city"],
            ),
            name="People-def",
        )
    ], name="mapS-SP")
    map_t_tp = Mapping(t, tp, [
        EqualityConstraint(
            source_expr=project_names(Scan("Folks"), ["id", "name", "city"]),
            target_expr=Project(Scan("F"), [
                ("id", Col("fid")), ("name", Col("fname")),
                ("city", Col("fcity")),
            ]),
            name="Folks-def",
        )
    ], name="mapT-TP")
    map_st = Mapping(s, t, [
        EqualityConstraint(
            source_expr=project_names(Scan("People"), ["id", "name", "city"]),
            target_expr=project_names(Scan("Folks"), ["id", "name", "city"]),
            name="copy",
        )
    ], name="mapST")
    return map_st, map_s_sp, map_t_tp


class TestPhysicalRewrite:
    def test_rewrite_targets_physical_schemas(self):
        map_st, map_s_sp, map_t_tp = _logical_physical_stack()
        physical = rewrite_to_physical(map_st, map_s_sp, map_t_tp)
        assert physical.source.name == "SP"
        assert physical.target.name == "TP"
        constraint = physical.equalities[0]
        assert constraint.source_expr.relations() == {"P1", "P2"}
        assert constraint.target_expr.relations() == {"F"}

    def test_physical_mapping_holds_on_consistent_state(self):
        map_st, map_s_sp, map_t_tp = _logical_physical_stack()
        physical = rewrite_to_physical(map_st, map_s_sp, map_t_tp)
        sp = Instance()
        sp.add("P1", id=1, name="Ann")
        sp.add("P2", id=1, city="Rome")
        tp = Instance()
        tp.add("F", fid=1, fname="Ann", fcity="Rome")
        assert physical.holds_for(sp, tp)
        tp.add("F", fid=2, fname="Ghost", fcity="?")
        assert not physical.holds_for(sp, tp)

    def test_physical_equals_logical_semantics(self):
        """The physical mapping relates SP/TP states exactly when the
        logical mapping relates the corresponding logical states."""
        from repro.algebra import evaluate

        map_st, map_s_sp, map_t_tp = _logical_physical_stack()
        physical = rewrite_to_physical(map_st, map_s_sp, map_t_tp)
        sp = Instance()
        sp.add("P1", id=1, name="Ann")
        sp.add("P2", id=1, city="Rome")
        # Reconstruct the logical states through the definitions.
        s_state = Instance()
        s_state.insert_all(
            "People",
            evaluate(map_s_sp.equalities[0].target_expr, sp),
        )
        tp = Instance()
        tp.add("F", fid=1, fname="Ann", fcity="Rome")
        t_state = Instance()
        t_state.insert_all(
            "Folks", evaluate(map_t_tp.equalities[0].target_expr, tp)
        )
        assert map_st.holds_for(s_state, t_state) == physical.holds_for(sp, tp)

    def test_schema_mismatch_rejected(self):
        map_st, map_s_sp, map_t_tp = _logical_physical_stack()
        with pytest.raises(CompositionError):
            rewrite_to_physical(map_st, map_t_tp, map_t_tp)

    def test_tgd_mapping_rejected(self):
        map_st, map_s_sp, map_t_tp = _logical_physical_stack()
        tgd_map = Mapping(
            map_st.source, map_st.target,
            [parse_tgd("People(id=i) -> Folks(id=i)")],
        )
        with pytest.raises(CompositionError):
            rewrite_to_physical(tgd_map, map_s_sp, map_t_tp)


# ----------------------------------------------------------------------
# parser round-trip property
# ----------------------------------------------------------------------
_ident = st.from_regex(r"[a-z][a-z0-9_]{0,5}", fullmatch=True)
_relation = st.from_regex(r"[A-Z][A-Za-z0-9]{0,5}", fullmatch=True)
_term = st.one_of(
    _ident.map(Var),
    st.integers(-99, 99).map(Const),
    st.from_regex(r"[a-z ]{0,8}", fullmatch=True).map(Const),
    st.booleans().map(Const),
)


@st.composite
def _atom(draw):
    relation = draw(_relation)
    n = draw(st.integers(1, 3))
    names = draw(st.lists(
        st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,5}", fullmatch=True),
        min_size=n, max_size=n, unique=True,
    ))
    # Attribute names must not collide with the keyword literals.
    names = [f"a_{name}" for name in names]
    return Atom(relation, tuple((name, draw(_term)) for name in names))


@given(st.lists(_atom(), min_size=1, max_size=3),
       st.lists(_atom(), min_size=1, max_size=2))
@settings(max_examples=80, deadline=None)
def test_tgd_parser_roundtrip(body, head):
    """printing a TGD and re-parsing it yields the same TGD (modulo the
    ∃ prefix, which the printer adds for readability)."""
    from repro.logic import TGD, parse_tgd

    tgd = TGD(body=tuple(body), head=tuple(head))
    text = str(tgd)
    if "∃" in text:
        prefix, _, rest = text.partition("∃")
        existentials_and_head = rest.split(" ", 1)[1]
        text = prefix + existentials_and_head
    again = parse_tgd(text)
    assert again.body == tgd.body
    assert again.head == tgd.head
