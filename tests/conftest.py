"""Shared test fixtures.

Observability state (the span tracer, the metrics registry, the query
log, the event journal, the trace sampler, the health monitor, the
estimator config, and the process-wide enabled flag) is a process
singleton, so a test that enables tracing and fails mid-way would
otherwise leak spans, metrics, journal events, sampler counters, or a
running health thread into every later test's assertions.  The autouse
fixture below restores a clean state around *every* test;
``obs.reset()`` covers the tracer, the registry, the query log, the
journal (including its JSONL sink), the sampler (re-reading
``REPRO_TRACE_SAMPLE``), the health monitor (stopping its periodic
thread), and the estimator tunables.

Setting ``REPRO_OBSERVABILITY=1`` runs the whole suite with
observability *enabled* instead (the CI lane that catches state-leak
and guard-ordering bugs the disabled-default runs can't see), and
``REPRO_TRACE_SAMPLE=1`` additionally activates the trace sampler in
keep-all mode; tests that assert on the disabled default manage the
flag themselves via their own fixtures, which run after this one.
"""

import os

import pytest

import repro.observability as obs

_FORCED = os.environ.get("REPRO_OBSERVABILITY", "").strip() not in ("", "0")


@pytest.fixture(autouse=True)
def _reset_observability():
    """Guarantee each test starts and ends with empty observability
    state (disabled by default; enabled under REPRO_OBSERVABILITY=1),
    so span/metric/query-log/journal/sampler/health assertions cannot
    leak across tests."""
    obs.reset()
    if _FORCED:
        obs.enable()
    else:
        obs.disable()
    yield
    obs.disable()
    obs.reset()
