"""Shared test fixtures.

Observability state (the span tracer, the metrics registry, and the
process-wide enabled flag) is a process singleton, so a test that
enables tracing and fails mid-way would otherwise leak spans and
metrics into every later test's assertions.  The autouse fixture below
restores the disabled, empty state around *every* test.
"""

import pytest

import repro.observability as obs


@pytest.fixture(autouse=True)
def _reset_observability():
    """Guarantee each test starts and ends with observability disabled
    and empty, so span/metric assertions cannot leak across tests."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
