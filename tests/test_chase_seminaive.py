"""Semi-naive chase: equivalence with the naive engine, budget
semantics, stats, weak-acyclicity edge cases, and the instance-layer
index/view contracts the engine relies on."""

import pytest

from repro.errors import ChaseFailure, ChaseNonTermination
from repro.instances import Instance, InstanceGenerator
from repro.instances.database import RowsView, hashable_key
from repro.instances.labeled_null import LabeledNull
from repro.logic import (
    EGD,
    TGD,
    ChaseStats,
    Var,
    are_hom_equivalent,
    chase,
    is_weakly_acyclic,
    naive_chase,
    parse_egd,
    parse_tgd,
)
from repro.logic.formulas import Atom
from repro.mappings import interpret_as_tgds
from repro.workloads import paper, synthetic


# ----------------------------------------------------------------------
# equivalence with the naive reference engine
# ----------------------------------------------------------------------
class TestHomEquivalence:
    def assert_equivalent(self, instance, dependencies):
        semi = chase(instance, dependencies)
        naive = naive_chase(instance, dependencies)
        assert are_hom_equivalent(semi.instance, naive.instance)
        return semi, naive

    def test_figure4_workload(self):
        mapping = interpret_as_tgds(paper.figure4_correspondences())
        semi, _ = self.assert_equivalent(
            paper.figure4_source_instance(), mapping.tgds
        )
        staff = semi.instance.rows("Staff")
        assert {(r["SID"], r["Name"], r["City"]) for r in staff} == {
            (1, "Ann", "Rome"),
            (2, "Bob", "Oslo"),
        }

    def test_figure2_key_enforced_exchange(self):
        # Figure 2's mapping itself is bidirectional-equality, so the
        # chase sees it through its tgd reading plus target keys.
        db = paper.figure2_sql_instance()
        tgds = [
            parse_tgd(
                "HR_Employees(id=i, name=n) -> Person(Id=i, Name=n)"
            ),
            parse_egd(
                "Person(Id=i, Name=a) & Person(Id=i, Name=b) -> a = b"
            ),
        ]
        self.assert_equivalent(db, tgds)

    def test_figure6_composition_workload(self):
        db = paper.figure6_s_instance()
        self.assert_equivalent(db, paper.figure6_map_s_sprime().tgds)

    @pytest.mark.parametrize("density", [0.0, 0.5, 1.0])
    def test_synthetic_exchange(self, density):
        source, _, tgds = synthetic.exchange_tgds(
            relations=3, existential_fraction=density, seed=9
        )
        db = InstanceGenerator(source, seed=9).generate(40)
        semi, naive = self.assert_equivalent(db, tgds)
        assert semi.instance.cardinality("T0") == 40
        if density == 0.0:
            assert semi.nulls_created == 0

    def test_tgd_egd_interaction(self):
        db = Instance()
        db.add("Emp", name="ann", dept="sales")
        db.add("Emp", name="bob", dept="sales")
        deps = [
            parse_tgd("Emp(name=n, dept=d) -> Dept(did=e, name=d)"),
            parse_egd(
                "Dept(did=a, name=n) & Dept(did=b, name=n) -> a = b"
            ),
        ]
        semi, naive = self.assert_equivalent(db, deps)
        assert semi.instance.cardinality("Dept") == naive.instance.cardinality(
            "Dept"
        )

    def test_chain_workload(self):
        # R0 → R1 → … → R5, dependencies listed in reverse order: the
        # worst case for Gauss–Seidel sweeps, a plain cascade for the
        # delta engine.
        db = Instance()
        for i in range(20):
            db.add("R0", a=i)
        tgds = [
            parse_tgd(f"R{k}(a=x) -> R{k + 1}(a=x)") for k in range(5)
        ][::-1]
        semi, naive = self.assert_equivalent(db, tgds)
        assert semi.instance.cardinality("R5") == 20

    def test_rechase_is_idempotent(self):
        mapping = interpret_as_tgds(paper.figure4_correspondences())
        once = chase(paper.figure4_source_instance(), mapping.tgds)
        again = chase(once.instance, mapping.tgds)
        assert again.steps == 0


# ----------------------------------------------------------------------
# max_steps budget is exact
# ----------------------------------------------------------------------
class TestMaxSteps:
    def _workload(self, rows=5):
        db = Instance()
        for i in range(rows):
            db.add("A", x=i)
        return db, [parse_tgd("A(x=v) -> B(x=v)")]

    def test_budget_never_overshoots(self):
        db, tgds = self._workload(5)
        with pytest.raises(ChaseNonTermination):
            chase(db, tgds, max_steps=1, copy=False)
        # The old engine applied the whole round (5 rows) before
        # noticing; the budget must now be exact.
        assert db.cardinality("B") <= 1

    def test_budget_exactly_sufficient(self):
        db, tgds = self._workload(5)
        result = chase(db, tgds, max_steps=5)
        assert result.steps == 5

    def test_zero_budget(self):
        db, tgds = self._workload(1)
        with pytest.raises(ChaseNonTermination):
            chase(db, tgds, max_steps=0)

    def test_egd_budget(self):
        db = Instance()
        null_a, null_b = LabeledNull(0), LabeledNull(1)
        db.add("R", k=1, v=null_a)
        db.add("R", k=1, v=null_b)
        egd = parse_egd("R(k=x, v=a) & R(k=x, v=b) -> a = b")
        with pytest.raises(ChaseNonTermination):
            chase(db, [egd], max_steps=0)


# ----------------------------------------------------------------------
# fired-key collisions
# ----------------------------------------------------------------------
def test_fired_keys_distinct_for_same_prefix():
    # Two unnamed tgds whose str() agrees beyond 60 characters: their
    # firing counts must not be merged under one key.
    long_attr = "attribute_with_a_very_long_name_that_pads_the_prefix"
    db = Instance()
    db.add("SomeVeryLongRelationName", **{long_attr: 1})
    tgd_a = parse_tgd(
        f"SomeVeryLongRelationName({long_attr}=x) -> OutA({long_attr}=x)"
    )
    tgd_b = parse_tgd(
        f"SomeVeryLongRelationName({long_attr}=x) -> OutB({long_attr}=x)"
    )
    assert str(tgd_a)[:60] == str(tgd_b)[:60]
    result = chase(db, [tgd_a, tgd_b])
    assert len(result.fired) == 2
    assert all(count == 1 for count in result.fired.values())


# ----------------------------------------------------------------------
# ChaseStats
# ----------------------------------------------------------------------
def test_chase_stats_populated():
    db = Instance()
    for i in range(10):
        db.add("S", a=i)
    result = chase(db, [parse_tgd("S(a=x) -> T(a=x, b=y)")])
    stats = result.stats
    assert isinstance(stats, ChaseStats)
    assert stats.rounds >= 2  # work round + fixpoint round
    assert stats.delta_sizes[-1] == 0
    assert sum(stats.delta_sizes) == 10
    assert sum(stats.triggers_examined.values()) >= 10
    assert stats.wall_time > 0
    assert "rounds" in stats.describe()


def test_chase_stats_counts_egd_merges():
    db = Instance()
    db.add("R", k=1, v=LabeledNull(0))
    db.add("R", k=1, v=LabeledNull(1))
    result = chase(db, [parse_egd("R(k=x, v=a) & R(k=x, v=b) -> a = b")])
    assert result.stats.merges == 1


# ----------------------------------------------------------------------
# weak acyclicity edge cases
# ----------------------------------------------------------------------
class TestWeaklyAcyclicEdgeCases:
    def test_special_edge_self_loop(self):
        # R.b ⇒∃ R.a with R.a feeding back: the special edge closes a
        # cycle on a single position pair (src == dst case included).
        tgd = TGD(
            body=(Atom("R", (("a", Var("x")), ("b", Var("u")))),),
            head=(Atom("R", (("a", Var("z")), ("b", Var("x")))),),
        )
        assert not is_weakly_acyclic([tgd])

    def test_special_edge_same_position(self):
        # src == dst exactly: frontier variable x at body position R.a,
        # existential y at head position R.a — the self-loop special
        # edge must be reported without needing a multi-edge cycle.
        tgd = parse_tgd("R(a=x) -> R(a=y) & S(b=x)")
        assert not is_weakly_acyclic([tgd])

    def test_non_frontier_existential_is_acyclic(self):
        # x never reaches the head, so no edges exist at all: the
        # restricted chase never fires this tgd (its head is satisfied
        # by any witness row) and the set is weakly acyclic.
        tgd = parse_tgd("R(a=x) -> R(a=y)")
        assert is_weakly_acyclic([tgd])
        db = Instance()
        db.add("R", a=1)
        assert chase(db, [tgd]).steps == 0

    def test_constants_only_tgd(self):
        tgd = parse_tgd("Trigger(on=x) -> Out(flag=1)")
        assert is_weakly_acyclic([tgd])
        db = Instance()
        db.add("Trigger", on="yes")
        result = chase(db, [tgd])
        assert result.instance.rows("Out") == [{"flag": 1}]

    def test_acyclic_set_terminates_within_budget(self):
        # A 12-stage copy chain over 30 rows is weakly acyclic; the
        # naive engine needed up to rows × stages × sweeps trigger
        # enumerations, the delta engine exactly rows × stages firings.
        tgds = [
            parse_tgd(f"L{k}(a=x) -> L{k + 1}(a=x)") for k in range(12)
        ][::-1]
        assert is_weakly_acyclic(tgds)
        db = Instance()
        for i in range(30):
            db.add("L0", a=i)
        result = chase(db, tgds, max_steps=12 * 30)
        assert result.steps == 12 * 30
        assert result.instance.cardinality("L12") == 30


# ----------------------------------------------------------------------
# instance-layer contracts the engine relies on
# ----------------------------------------------------------------------
class TestRowsView:
    def test_compares_equal_to_lists(self):
        db = Instance()
        db.add("R", a=1)
        assert db.rows("R") == [{"a": 1}]
        assert db.rows("absent") == []

    def test_is_read_only(self):
        db = Instance()
        db.add("R", a=1)
        view = db.rows("R")
        assert isinstance(view, RowsView)
        with pytest.raises(AttributeError):
            view.append({"a": 2})
        with pytest.raises(TypeError):
            view[0] = {"a": 2}

    def test_is_live(self):
        db = Instance()
        view = db.rows("R")
        assert len(view) == 0
        db.add("R", a=1)
        assert db.rows("R") == [{"a": 1}]

    def test_slicing_returns_copies(self):
        db = Instance()
        db.add("R", a=1)
        db.add("R", a=2)
        assert db.rows("R")[:1] == [{"a": 1}]
        assert isinstance(db.rows("R")[:], list)


class TestDeleteDropsEmptyRelation:
    def test_emptied_relation_key_removed(self):
        db = Instance()
        db.add("R", a=1)
        removed = db.delete("R", lambda r: True)
        assert removed == [{"a": 1}]
        assert "R" not in db.relations
        assert db.rows("R") == []

    def test_partial_delete_keeps_key(self):
        db = Instance()
        db.add("R", a=1)
        db.add("R", a=2)
        db.delete("R", lambda r: r["a"] == 1)
        assert "R" in db.relations
        assert db.rows("R") == [{"a": 2}]


class TestHashableKeySentinels:
    def test_tuple_value_does_not_collide_with_null(self):
        assert hashable_key(("⊥", 3)) != hashable_key(LabeledNull(3))

    def test_index_keeps_them_separate(self):
        db = Instance()
        db.add("R", v=("⊥", 3))
        db.add("R", v=LabeledNull(3))
        assert db.index_lookup("R", "v", ("⊥", 3)) == [{"v": ("⊥", 3)}]
        assert db.index_lookup("R", "v", LabeledNull(3)) == [
            {"v": LabeledNull(3)}
        ]

    def test_null_keys_stable(self):
        assert hashable_key(LabeledNull(3)) == hashable_key(LabeledNull(3))


class TestIndexMaintenance:
    def test_incremental_extension(self):
        db = Instance()
        db.add("R", a=1)
        assert len(db.index_lookup("R", "a", 1)) == 1
        db.add("R", a=1)
        assert len(db.index_lookup("R", "a", 1)) == 2
        assert db.index_stats["extends"] >= 1

    def test_repeat_lookup_hits_cache(self):
        db = Instance()
        db.add("R", a=1)
        db.index_lookup("R", "a", 1)
        before = db.index_stats["hits"]
        db.index_lookup("R", "a", 1)
        assert db.index_stats["hits"] == before + 1

    def test_mark_dirty_forces_rebuild(self):
        db = Instance()
        row = db.add("R", a=1)
        assert len(db.index_lookup("R", "a", 1)) == 1
        row["a"] = 2  # in-place mutation: caller must declare it
        db.mark_dirty()
        assert db.index_lookup("R", "a", 1) == []
        assert len(db.index_lookup("R", "a", 2)) == 1

    def test_delete_invalidates(self):
        db = Instance()
        db.add("R", a=1)
        db.add("R", a=2)
        assert len(db.index_lookup("R", "a", 1)) == 1
        db.delete("R", lambda r: r["a"] == 1)
        assert db.index_lookup("R", "a", 1) == []

    def test_projection_member(self):
        db = Instance()
        db.add("R", a=1, b=2, c=3)
        assert db.projection_member("R", ("a", "b"), (1, 2))
        assert not db.projection_member("R", ("a", "b"), (1, 9))
        assert not db.projection_member("R", ("a", "zz"), (1, 2))
        assert not db.projection_member("absent", ("a",), (1,))


# ----------------------------------------------------------------------
# egd batching keeps the naive failure semantics
# ----------------------------------------------------------------------
class TestEgdBatching:
    def test_transitive_constant_conflict_fails(self):
        # x = 1 via one row pair, x = 2 via another: the union-find must
        # surface the conflict even though no single trigger equates the
        # two constants directly.
        null = LabeledNull(0)
        db = Instance()
        db.add("R", k=1, v=null)
        db.add("R", k=1, v="left")
        db.add("R", k=1, v="right")
        egd = parse_egd("R(k=x, v=a) & R(k=x, v=b) -> a = b")
        with pytest.raises(ChaseFailure):
            chase(db, [egd])

    def test_null_chain_collapses_to_constant(self):
        nulls = [LabeledNull(i) for i in range(4)]
        db = Instance()
        for left, right in zip(nulls, nulls[1:]):
            db.add("Link", a=left, b=right)
        db.add("Link", a=nulls[3], b="anchor")
        egd = parse_egd("Link(a=x, b=y) -> x = y")
        result = chase(db, [egd])
        assert not result.instance.nulls()
        for row in result.instance.rows("Link"):
            assert row == {"a": "anchor", "b": "anchor"}

    def test_matches_naive_on_merge_cascade(self):
        nulls = [LabeledNull(i) for i in range(6)]
        db = Instance()
        for i, null in enumerate(nulls):
            db.add("R", k=i % 2, v=null)
        egd = parse_egd("R(k=x, v=a) & R(k=x, v=b) -> a = b")
        semi = chase(db, [egd])
        naive = naive_chase(db, [egd])
        assert are_hom_equivalent(semi.instance, naive.instance)
        assert len(semi.instance.nulls()) == len(naive.instance.nulls()) == 2
