"""Setup shim.

The offline environment lacks the ``wheel`` package, so PEP 517 builds
fail with "invalid command 'bdist_wheel'"; this shim lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path, which needs only setuptools.
"""

from setuptools import setup

setup()
