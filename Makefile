PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint trace-smoke query-smoke updates-smoke \
	optimizer-smoke shard-smoke health-smoke bench-smoke bench-chase \
	bench bench-query bench-updates bench-optimizer bench-shard \
	bench-json bench-check bench-check-smoke

# Tier-1: the whole unit/integration suite, after the static, tracing,
# query-engine, incremental-maintenance, optimizer, shard and health
# smoke gates.
test: lint trace-smoke query-smoke updates-smoke optimizer-smoke \
		shard-smoke health-smoke
	$(PYTHON) -m pytest -x -q

# Static checks: ruff with the pinned config in pyproject.toml.
# Skips gracefully when ruff is not installed (the CI image does not
# bake it in); never a silent pass when it is present.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks; \
	elif command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "lint: ruff not installed, skipping (config pinned in pyproject.toml)"; \
	fi

# Run the Figure-5 evolution script under tracing and assert the
# exported trace is non-empty and covers several operators.
trace-smoke:
	@$(PYTHON) -m repro trace examples/schema_evolution.py --quiet \
		--out .trace-smoke.jsonl >/dev/null
	@$(PYTHON) -c "import json,sys; \
spans=[json.loads(l) for l in open('.trace-smoke.jsonl')]; \
ops={s['name'] for s in spans if s['name'].startswith(('op.','engine.'))}; \
assert len(spans) >= 10, f'only {len(spans)} spans'; \
assert len(ops) >= 4, f'only {sorted(ops)}'; \
print(f'trace-smoke: {len(spans)} spans, {len(ops)} operators ok')"
	@rm -f .trace-smoke.jsonl

# Differential smoke for the three query engines: runs the
# view-unfolding workload at the smallest size, asserting
# vectorized/compiled/interpreted row parity and that warm plan caches
# never recompile.  No JSON rewrite.  CI pins
# REPRO_QUERY_ENGINE=vectorized on this gate (see ci.yml).
query-smoke:
	$(PYTHON) benchmarks/bench_query_executor.py --smoke

# Parity gate for incremental maintenance: smallest size only, every
# batch equivalence-checked against a full re-exchange (tgd and egd
# lanes).  No JSON rewrite.
updates-smoke:
	$(PYTHON) benchmarks/bench_incremental_exchange.py --smoke

# Cost-based optimizer gate: differential oracle (heuristic ≡
# cost-based × 3 engines) plus an end-to-end adaptive re-optimization
# at reduced sizes.  Timing bars are skipped in smoke mode; the full
# `make bench-optimizer` enforces them.  No JSON rewrite.
optimizer-smoke:
	$(PYTHON) benchmarks/bench_optimizer.py --smoke

# Shard-parallel chase gate: small chain chased sequentially and at
# 2/4 shards, results equivalence-checked (speedup floor enforced on
# full `make bench-shard` runs only).  No JSON rewrite.
shard-smoke:
	$(PYTHON) benchmarks/bench_sharded_chase.py --smoke

# Health-monitor gate: `repro health` must exit 0 on a healthy
# workload and nonzero when a threshold is deliberately breached
# (slow_query_rate_max=-1 makes any logged query an alert).
health-smoke:
	@$(PYTHON) -m repro health examples/schema_evolution.py --quiet \
		>/dev/null || (echo "health-smoke: healthy run alerted" && exit 1)
	@if $(PYTHON) -m repro health examples/schema_evolution.py --quiet \
		--threshold slow_query_rate_max=-1 \
		--threshold min_query_samples=1 >/dev/null; then \
		echo "health-smoke: breached threshold did not alert"; exit 1; \
	fi
	@echo "health-smoke: exit codes ok"

# Fast perf sanity after tier-1: smallest size only, no JSON rewrite.
bench-smoke: test
	$(PYTHON) benchmarks/bench_chase_scaling.py --smoke

# Full query-executor shootout: rewrites BENCH_query.json at three
# sizes (interpreted / compiled row / vectorized lanes, cold and warm)
# and enforces the acceptance bars at 4k rows: 3x compiled vs
# interpreted, 10x vectorized vs interpreted, 2x vectorized vs
# compiled.
#
# Re-baselining workflow after a legitimate perf change:
#   1. make bench-query            # rewrite BENCH_query.json in place
#   2. $(PYTHON) -m repro bench diff --fresh-dir .
#      (or `make bench-check`)     # confirm the new baseline diffs
#                                  # clean before committing it
bench-query:
	$(PYTHON) benchmarks/bench_query_executor.py

# Full chase trajectory: rewrites BENCH_chase.json at three sizes.
bench-chase:
	$(PYTHON) benchmarks/bench_chase_scaling.py

# Incremental maintenance vs full re-exchange: rewrites
# BENCH_updates.json at three sizes plus the egd merge/rollback lane,
# enforcing the 5x acceptance bar at 4k rows.
bench-updates:
	$(PYTHON) benchmarks/bench_incremental_exchange.py

# Cost-based join ordering + adaptive re-optimization: rewrites
# BENCH_optimizer.json, enforcing the ≥2x skewed-suite win and the
# ≥2x re-optimization win as absolute floors (also judged by the
# regression watchdog via the payload's "floors" section).
bench-optimizer:
	$(PYTHON) benchmarks/bench_optimizer.py --out BENCH_optimizer.json

# Shard-parallel chase vs sequential at 100k–300k rows: rewrites
# BENCH_shard.json, enforcing the ≥2x speedup floor at 4 shards (also
# judged by the regression watchdog via the payload's "floors").
bench-shard:
	$(PYTHON) benchmarks/bench_sharded_chase.py --out BENCH_shard.json

# The whole pytest-benchmark suite (slow), incremental maintenance
# included via benchmarks/bench_incremental_exchange.py.
bench:
	$(PYTHON) -m pytest benchmarks -q

# Regression watchdog: re-run the query/updates/observability suites
# into a temp dir and diff against the committed BENCH_*.json
# baselines (generous step-change thresholds; exit 1 on regression).
bench-check:
	$(PYTHON) benchmarks/regression.py check

# Fast watchdog variant for CI: smallest size only, report-only (the
# committed baselines were recorded on different hardware).
bench-check-smoke:
	$(PYTHON) benchmarks/regression.py check --smoke --report-only

# Every benchmark's machine-readable BENCH_*.json via the harness.
bench-json:
	@for f in benchmarks/bench_*.py; do \
		echo "== $$f"; \
		$(PYTHON) $$f || exit 1; \
	done
