PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke bench-chase bench

# Tier-1: the whole unit/integration suite.
test:
	$(PYTHON) -m pytest -x -q

# Fast perf sanity after tier-1: smallest size only, no JSON rewrite.
bench-smoke: test
	$(PYTHON) benchmarks/bench_chase_scaling.py --smoke

# Full chase trajectory: rewrites BENCH_chase.json at three sizes.
bench-chase:
	$(PYTHON) benchmarks/bench_chase_scaling.py

# The whole pytest-benchmark suite (slow).
bench:
	$(PYTHON) -m pytest benchmarks -q
