"""Benchmark harness: uniform machine-readable BENCH_*.json emission.

Every ``bench_*.py`` suite keeps its pytest-benchmark tests, but its
``main()`` now routes through this harness, which

* runs the suite's report function(s) with a stub ``benchmark``
  callable (timing is recorded into the metrics registry instead of
  pytest-benchmark's calibrated loops),
* captures every ``print_table`` call as structured rows,
* enables the engine's observability layer for the duration, so the
  emitted JSON carries the span/metric telemetry of the run,
* writes ``BENCH_<name>.json`` with the tables plus a registry
  snapshot — one uniform format across all benchmarks.

Standalone usage (every bench file)::

    python benchmarks/bench_fig5_evolution.py [--smoke] [--out PATH]

``--smoke`` runs the suite but skips the JSON rewrite unless ``--out``
is given — the CI sanity mode.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Callable, Optional, Sequence


class _StubBenchmark:
    """pytest-benchmark-compatible callable: one timed invocation,
    recorded into the harness instead of calibrated rounds."""

    def __init__(self, harness: "Harness", label: str):
        self._harness = harness
        self._label = label

    def __call__(self, fn, *args, **kwargs):
        return self._harness.timed(self._label, fn, *args, **kwargs)


class Harness:
    """Collects tables, timings and engine telemetry for one suite."""

    def __init__(self, name: str, observe: bool = True):
        self.name = name
        self.observe = observe
        self.tables: list[dict] = []
        self.results: list[dict] = []
        self.timings: dict[str, float] = {}
        self.floors: dict[str, float] = {}

    # ------------------------------------------------------------------
    def timed(self, label: str, fn: Callable, *args, **kwargs):
        """Run ``fn`` once, record wall seconds under ``label`` (and in
        the metrics registry when observing)."""
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        seconds = time.perf_counter() - start
        self.timings[label] = round(seconds, 6)
        if self.observe:
            from repro.observability import registry

            registry.histogram(f"bench.{self.name}.{label}.ms").observe(
                seconds * 1000.0
            )
        return result

    def record(self, **row) -> None:
        """Append one machine-readable result row."""
        self.results.append(row)

    def floor(self, key: str, minimum: float) -> None:
        """Declare an absolute floor for one extracted metric key
        (``"<row label>/<header>"`` of a table cell).  The regression
        watchdog judges floored metrics against ``minimum`` regardless
        of the baseline — e.g. the optimizer suite's ≥2× skewed-join
        speedup contract."""
        self.floors[key] = float(minimum)

    def capture_table(self, title: str, headers: list[str],
                      rows: list[list]) -> None:
        self.tables.append(
            {"title": title, "headers": headers,
             "rows": [list(r) for r in rows]}
        )

    # ------------------------------------------------------------------
    def run_report(self, report_fn: Callable) -> None:
        """Run a ``test_*_report(benchmark)`` function standalone:
        stub the benchmark fixture, intercept its ``print_table``."""
        module_globals = report_fn.__globals__
        original = module_globals.get("print_table")

        def capturing_print_table(title, headers, rows):
            self.capture_table(title, headers, rows)
            if original is not None:
                original(title, headers, rows)

        module_globals["print_table"] = capturing_print_table
        try:
            report_fn(_StubBenchmark(self, report_fn.__name__))
        finally:
            if original is not None:
                module_globals["print_table"] = original

    # ------------------------------------------------------------------
    def payload(self) -> dict:
        data = {
            "benchmark": self.name,
            "format": "harness-v1",
            "results": self.results,
            "tables": self.tables,
            "timings_seconds": self.timings,
        }
        if self.floors:
            data["floors"] = dict(self.floors)
        if self.observe:
            from repro.observability import registry

            data["metrics"] = registry.snapshot()
        return data

    def emit(self, out: Optional[Path] = None) -> Path:
        if out is None:
            out = Path(__file__).resolve().parent.parent / (
                f"BENCH_{self.name}.json"
            )
        out = Path(out)
        out.write_text(json.dumps(self.payload(), indent=2,
                                  default=str) + "\n")
        print(f"wrote {out}")
        return out


def run_standalone(
    name: str,
    report_fns: Sequence[Callable],
    argv: Optional[Sequence[str]] = None,
    observe: bool = True,
) -> int:
    """The shared ``main()`` body of every bench file."""
    parser = argparse.ArgumentParser(
        description=f"{name} benchmark → BENCH_{name}.json"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the suite but skip the JSON rewrite unless --out is "
             "given (CI sanity)",
    )
    parser.add_argument("--out", type=Path, default=None,
                        help=f"output path (default: BENCH_{name}.json "
                             "at the repo root)")
    args = parser.parse_args(argv)

    harness = Harness(name, observe=observe)
    if observe:
        import repro.observability as obs

        obs.reset()
        obs.enable()
    try:
        for report_fn in report_fns:
            harness.run_report(report_fn)
    finally:
        if observe:
            obs.disable()

    if args.out is not None or not args.smoke:
        harness.emit(args.out)
    return 0
