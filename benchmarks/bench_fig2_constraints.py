"""F2 — Figure 2: the ER ↔ SQL inheritance mapping constraints.

Reproduces the figure's artifact: the three equality constraints
between the Person hierarchy and the HR/Empl/Client tables, checked
under instance-level semantics (the mapping as a subset of D1 × D2).
Measures constraint checking as the instance grows — the cost of the
"precisely specified and tested" discipline of engineered mappings.
"""

import pytest

from repro.instances import Instance
from repro.workloads import paper

from conftest import print_table


def _scaled_instances(people: int):
    """Paper-shaped data scaled to ``people`` persons (⅓ per type)."""
    sql = Instance(paper.figure2_sql_schema())
    er = Instance(paper.figure2_er_schema())
    for i in range(people):
        kind = i % 3
        if kind == 0:
            sql.add("HR", Id=i, Name=f"P{i}")
            er.insert_object("Person", Id=i, Name=f"P{i}")
        elif kind == 1:
            sql.add("HR", Id=i, Name=f"E{i}")
            sql.add("Empl", Id=i, Dept=f"D{i % 5}")
            er.insert_object("Employee", Id=i, Name=f"E{i}", Dept=f"D{i % 5}")
        else:
            sql.add("Client", Id=i, Name=f"C{i}", Score=600 + i % 200,
                    Addr=f"{i} Main St")
            er.insert_object("Customer", Id=i, Name=f"C{i}",
                             CreditScore=600 + i % 200,
                             BillingAddr=f"{i} Main St")
    return sql, er


def test_figure2_paper_instances(benchmark):
    """The exact paper artifact: constraints hold on the worked data."""
    mapping = paper.figure2_mapping()
    sql = paper.figure2_sql_instance()
    er = paper.figure2_er_instance()

    holds = benchmark(mapping.holds_for, sql, er)
    assert holds


@pytest.mark.parametrize("people", [30, 90, 270])
def test_constraint_check_scaling(benchmark, people):
    mapping = paper.figure2_mapping()
    sql, er = _scaled_instances(people)

    holds = benchmark(mapping.holds_for, sql, er)
    assert holds


def test_violation_detected(benchmark):
    """Checking must also *fail* fast on inconsistent pairs."""
    mapping = paper.figure2_mapping()
    sql, er = _scaled_instances(90)
    er.insert_object("Person", Id=10_001, Name="Ghost")

    holds = benchmark(mapping.holds_for, sql, er)
    assert not holds


def test_figure2_report(benchmark):
    mapping = paper.figure2_mapping()
    rows = []
    for people in (30, 90, 270):
        sql, er = _scaled_instances(people)
        assert mapping.holds_for(sql, er)
        rows.append([people, sql.total_rows(), er.total_rows(), "holds"])
    benchmark(mapping.holds_for, *_scaled_instances(30))
    print_table(
        "F2: Figure 2 constraints under instance-level semantics",
        ["persons", "table rows", "entity rows", "verdict"],
        rows,
    )


# ----------------------------------------------------------------------
# standalone run -> BENCH_fig2_constraints.json (see benchmarks/harness.py)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    from harness import run_standalone

    return run_standalone("fig2_constraints", [test_figure2_report], argv)


if __name__ == "__main__":
    raise SystemExit(main())
