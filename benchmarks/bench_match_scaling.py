"""E1 — §3.1.1: matcher quality and the top-k claim.

The paper argues that for engineered mappings "a better goal … is to
ensure that a matcher returns all viable candidates for a given
element, rather than only the best one".  The experiment matches
schemas against renamed copies with increasing noise and reports, per
matcher and for the ensemble, precision / recall / F1 of the proposal
set and the *top-k hit rate* — the fraction of elements whose candidate
list contains the right answer.  Expected shape: top-3 hit rate stays
high as best-1 precision degrades with noise, and the ensemble beats
every single matcher.
"""

import pytest

from repro.operators.match import (
    MatchConfig,
    evaluate_against_truth,
    match,
)
from repro.workloads import synthetic

from conftest import print_table


def _workload(noise: float, seed: int = 11):
    schema = synthetic.snowflake_schema("M", depth=1, branching=3,
                                        attributes_per_entity=4, seed=seed)
    copy, truth = synthetic.perturbed_copy(schema, rename_probability=noise,
                                           seed=seed + 1)
    return schema, copy, truth


_SINGLE_MATCHER_WEIGHTS = {
    "lexical": {"lexical": 1.0},
    "thesaurus": {"thesaurus": 1.0},
    "flooding": {"similarity-flooding": 1.0},
    "datatype": {"datatype": 1.0},
}


@pytest.mark.parametrize("noise", [0.3, 0.6, 0.9])
def test_ensemble_matching(benchmark, noise):
    schema, copy, truth = _workload(noise)
    config = MatchConfig(top_k=3, threshold=0.1)

    correspondences = benchmark(match, schema, copy, config)
    quality = evaluate_against_truth(correspondences, truth)
    assert quality.top_k_hit_rate > 0.5


@pytest.mark.parametrize("matcher", sorted(_SINGLE_MATCHER_WEIGHTS))
def test_single_matcher(benchmark, matcher):
    schema, copy, truth = _workload(0.6)
    config = MatchConfig(weights=_SINGLE_MATCHER_WEIGHTS[matcher],
                         top_k=3, threshold=0.05)

    correspondences = benchmark(match, schema, copy, config)
    assert len(correspondences) > 0


@pytest.mark.parametrize("size", [2, 3, 4])
def test_match_time_scaling(benchmark, size):
    schema = synthetic.snowflake_schema("Big", depth=1, branching=size,
                                        attributes_per_entity=4, seed=3)
    copy, _ = synthetic.perturbed_copy(schema, 0.5, seed=4)

    benchmark(match, schema, copy, MatchConfig(top_k=3))


def test_match_quality_report(benchmark):
    """The E1 table: quality per matcher per noise level."""
    rows = []
    for noise in (0.3, 0.6, 0.9):
        schema, copy, truth = _workload(noise)
        for label, weights in sorted(_SINGLE_MATCHER_WEIGHTS.items()):
            quality = evaluate_against_truth(
                match(schema, copy,
                      MatchConfig(weights=weights, top_k=3, threshold=0.05)),
                truth,
            )
            rows.append([noise, label, quality.precision, quality.recall,
                         quality.f1, quality.top_k_hit_rate])
        ensemble_all = match(schema, copy, MatchConfig(top_k=3,
                                                       threshold=0.1))
        ensemble = evaluate_against_truth(ensemble_all, truth)
        rows.append([noise, "ENSEMBLE top-3", ensemble.precision,
                     ensemble.recall, ensemble.f1, ensemble.top_k_hit_rate])
        best_one = evaluate_against_truth(ensemble_all.best_one_to_one(),
                                          truth)
        rows.append([noise, "ENSEMBLE best-1", best_one.precision,
                     best_one.recall, best_one.f1, best_one.top_k_hit_rate])
    schema, copy, _ = _workload(0.6)
    benchmark(match, schema, copy, MatchConfig(top_k=3))
    print_table(
        "E1: matcher quality vs rename noise "
        "(paper's claim: keep top-k candidates, not best-1)",
        ["noise", "matcher", "precision", "recall", "F1", "top-k hit"],
        rows,
    )


# ----------------------------------------------------------------------
# standalone run -> BENCH_match.json (see benchmarks/harness.py)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    from harness import run_standalone

    return run_standalone("match", [test_match_quality_report], argv)


if __name__ == "__main__":
    raise SystemExit(main())
