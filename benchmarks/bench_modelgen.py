"""E7 — §3.2: ModelGen genericity across metamodels.

Atzeni & Torlone's rule-repertoire idea: translation = eliminate the
constructs the target metamodel lacks.  The experiment walks schemas
around the metamodel square (ER → relational → OO → relational →
nested → relational) counting constructs eliminated/introduced per
hop, and checks that the relational projections of a schema remain
stable across round trips (the information survives).
"""

import pytest

from repro.operators import InheritanceStrategy, modelgen
from repro.workloads import paper, synthetic

from conftest import print_table


def _rich_er_schema():
    from repro.metamodel import Cardinality, INT, STRING, SchemaBuilder

    return (
        SchemaBuilder("Campus", metamodel="er")
        .entity("Person", key=["pid"]).attribute("pid", INT)
        .attribute("name", STRING)
        .entity("Student", parent="Person").attribute("year", INT)
        .entity("Staff", parent="Person").attribute("salary", INT)
        .entity("Course", key=["cid"]).attribute("cid", INT)
        .attribute("title", STRING)
        .association("Enrolled", "Student", "Course",
                     source_cardinality=Cardinality(0, None),
                     target_cardinality=Cardinality(0, None))
        .build()
    )


_HOPS = [
    ("er", "relational"),
    ("relational", "oo"),
    ("oo", "relational"),
    ("relational", "nested"),
    ("nested", "relational"),
    ("relational", "er"),
]


@pytest.mark.parametrize("target", ["relational", "oo", "nested", "er"])
def test_modelgen_to_each_metamodel(benchmark, target):
    source = paper.figure4_source_schema()

    result = benchmark(modelgen, source, target)
    assert result.schema.metamodel == target
    result.schema.check_metamodel()


def test_er_to_relational_rich(benchmark):
    schema = _rich_er_schema()

    result = benchmark(modelgen, schema, "relational")
    assert "Enrolled" in result.schema.entities  # M:N became a join table
    result.schema.check_metamodel()


@pytest.mark.parametrize("depth", [1, 2, 3])
def test_hierarchy_size_scaling(benchmark, depth):
    schema = synthetic.inheritance_schema("MG", depth=depth, branching=2)

    result = benchmark(modelgen, schema, "relational",
                       InheritanceStrategy.TPT)
    assert len(result.schema.entities) == len(schema.entities)


def test_metamodel_walk_report(benchmark):
    rows = []
    current = _rich_er_schema()
    for source_mm, target_mm in _HOPS:
        if current.metamodel != source_mm:
            continue
        before = current.constructs_used()
        result = modelgen(current, target_mm)
        after = result.schema.constructs_used()
        rows.append([
            f"{source_mm} → {target_mm}",
            len(current.entities),
            len(result.schema.entities),
            ", ".join(sorted(before - after)) or "-",
            ", ".join(sorted(after - before)) or "-",
        ])
        current = result.schema
    benchmark(modelgen, _rich_er_schema(), "relational")
    print_table(
        "E7: walking the metamodel square (constructs eliminated / "
        "introduced per hop)",
        ["hop", "entities in", "entities out", "eliminated", "introduced"],
        rows,
    )


# ----------------------------------------------------------------------
# standalone run -> BENCH_modelgen.json (see benchmarks/harness.py)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    from harness import run_standalone

    return run_standalone("modelgen", [test_metamodel_walk_report], argv)


if __name__ == "__main__":
    raise SystemExit(main())
