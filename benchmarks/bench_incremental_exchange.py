"""E10 — §5: incremental materialized exchange vs full re-exchange.

The paper's runtime services all re-execute mappings when data
changes; :class:`~repro.runtime.incremental.MaterializedExchange`
maintains the chased target under :class:`UpdateSet` batches instead
— delta chase for inserts, counting/DRed over-delete-and-rederive for
deletes.  Expected shape: maintenance cost tracks the batch size
(constant down the column) while full re-exchange tracks the instance
size, so the speedup widens with scale.  Every measured batch is
equivalence-checked against a fresh full exchange (``set_equal`` up
to null renaming), including delete-heavy batches and an egd series
that exercises merge rollback.

Acceptance: ≥ 5x for single-batch maintenance vs full re-exchange at
the 4k-row scale.
"""

import random
import time

import pytest

from repro.instances import Instance
from repro.logic import parse_tgd
from repro.mappings import Mapping
from repro.metamodel import INT, STRING, SchemaBuilder
from repro.operators.transgen import ExchangeTransformation
from repro.runtime import (
    MaterializedExchange,
    UpdateSet,
    set_equal_modulo_nulls,
)
from repro.runtime.updates import apply_update

from conftest import print_table

SIZES = (250, 1000, 4000)
BATCH = 16
BATCHES = 4
ACCEPTANCE_SPEEDUP = 5.0


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
def _tgd_mapping(tag: str) -> Mapping:
    source = (
        SchemaBuilder(f"S{tag}")
        .entity("Ord").attribute("oid", INT).attribute("cust", INT)
        .attribute("amount", INT)
        .entity("Cust").attribute("cid", INT).attribute("name", STRING)
        .build()
    )
    target = (
        SchemaBuilder(f"T{tag}")
        .entity("Sale").attribute("oid", INT).attribute("name", STRING)
        .entity("Client").attribute("cid", INT).attribute("name", STRING)
        .attribute("tier", INT, nullable=True)
        .entity("Audit").attribute("oid", INT)
        .build()
    )
    return Mapping(source, target, [
        parse_tgd("Ord(oid=o, cust=c, amount=a) & Cust(cid=c, name=n) "
                  "-> Sale(oid=o, name=n)"),
        parse_tgd("Cust(cid=c, name=n) -> Client(cid=c, name=n, tier=t)"),
        parse_tgd("Sale(oid=o, name=n) -> Audit(oid=o)"),
    ])


def _tgd_source(rows: int) -> Instance:
    db = Instance()
    customers = max(4, rows // 4)
    for i in range(customers):
        db.insert("Cust", {"cid": i, "name": f"c{i % 97}"})
    for i in range(rows):
        db.insert("Ord", {"oid": i, "cust": i % customers, "amount": i})
    return db


def _tgd_batch(rng: random.Random, current: Instance,
               next_id: int) -> UpdateSet:
    """A mixed batch: half inserts (joining orders + fresh customers),
    half deletes of existing rows (exercising the DRed cascade)."""
    update = UpdateSet()
    half = BATCH // 2
    for k in range(half):
        if k % 3 == 2:
            update.insert("Cust", cid=next_id + k, name=f"c{k}")
        else:
            existing = current.rows("Cust")
            cid = rng.choice(existing)["cid"] if existing else next_id + k
            update.insert("Ord", oid=next_id + k, cust=cid,
                          amount=rng.randint(0, 999))
    orders = current.rows("Ord")
    for row in rng.sample(orders, min(half, len(orders))):
        update.deletes.setdefault("Ord", []).append(dict(row))
    return update


def _egd_mapping(tag: str) -> Mapping:
    source = (
        SchemaBuilder(f"Se{tag}")
        .entity("A").attribute("eid", INT)
        .entity("B").attribute("eid", INT).attribute("office", STRING)
        .build()
    )
    target = (
        SchemaBuilder(f"Te{tag}")
        .entity("Assign", key=("eid",))
        .attribute("eid", INT).attribute("office", STRING, nullable=True)
        .entity("Room").attribute("office", STRING)
        .build()
    )
    return Mapping(source, target, [
        parse_tgd("A(eid=e) -> Assign(eid=e, office=o)"),
        parse_tgd("B(eid=e, office=f) -> Assign(eid=e, office=f)"),
        parse_tgd("Assign(eid=e, office=f) -> Room(office=f)"),
    ])


def _egd_source(rows: int) -> Instance:
    db = Instance()
    for i in range(rows):
        db.insert("A", {"eid": i})
        if i % 2 == 0:
            db.insert("B", {"eid": i, "office": f"off{i % 5}"})
    return db


def _egd_batch(rng: random.Random, current: Instance,
               next_id: int) -> UpdateSet:
    """Inserts that trigger key merges plus deletes that orphan them
    (exercising the union-find rollback path)."""
    update = UpdateSet()
    for k in range(BATCH // 2):
        eid = rng.randint(0, next_id + k)
        if k % 2 == 0:
            update.insert("A", eid=eid)
        else:
            update.insert("B", eid=eid, office=f"off{eid % 5}")
    for relation in ("B", "A"):
        rows = current.rows(relation)
        for row in rng.sample(rows, min(BATCH // 4, len(rows))):
            update.deletes.setdefault(relation, []).append(dict(row))
    return update


# ----------------------------------------------------------------------
# measured series (shared by the report and the pytest benchmarks)
# ----------------------------------------------------------------------
def _series(size: int, make_mapping, make_source, make_batch,
            enforce_target_keys: bool = False):
    """Run BATCHES maintenance rounds at one scale; return median
    per-batch maintenance and full re-exchange times plus the
    exchange's counters.  Asserts equivalence after every batch."""
    mapping = make_mapping(f"{size}")
    base = make_source(size)
    materialized = MaterializedExchange(
        mapping, base, enforce_target_keys=enforce_target_keys
    )
    current = base
    rng = random.Random(size)
    maintain_s: list[float] = []
    full_s: list[float] = []
    for batch_no in range(BATCHES):
        update = make_batch(rng, current, 10 ** 6 + batch_no * BATCH)
        start = time.perf_counter()
        materialized.apply(update)
        maintain_s.append(time.perf_counter() - start)
        current = apply_update(current, update)
        full_exchange = ExchangeTransformation(
            mapping, enforce_target_keys=enforce_target_keys
        )
        start = time.perf_counter()
        full = full_exchange.apply(current)
        full_s.append(time.perf_counter() - start)
        assert set_equal_modulo_nulls(materialized.target_instance(),
                                      full), (
            f"maintenance diverged from full re-exchange at size {size}, "
            f"batch {batch_no}"
        )
        assert materialized.source_instance().set_equal(current)
    maintain_s.sort()
    full_s.sort()
    median_maintain = maintain_s[len(maintain_s) // 2]
    median_full = full_s[len(full_s) // 2]
    return median_maintain, median_full, materialized.stats


# ----------------------------------------------------------------------
# pytest-benchmark entry points (make bench)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("size", [250])
def test_maintenance_batch(benchmark, size):
    mapping = _tgd_mapping(f"m{size}")
    materialized = MaterializedExchange(mapping, _tgd_source(size))
    rng = random.Random(7)
    counter = iter(range(10 ** 6))

    def one_batch():
        start = 2 * 10 ** 6 + next(counter) * BATCH
        update = _tgd_batch(
            rng, materialized.source_instance(copy=False), start
        )
        return materialized.apply(update)

    benchmark(one_batch)
    assert materialized.stats["applies"] >= 1


@pytest.mark.parametrize("size", [250])
def test_full_reexchange_batch(benchmark, size):
    mapping = _tgd_mapping(f"f{size}")
    current = _tgd_source(size)
    rng = random.Random(7)
    counter = iter(range(10 ** 6))

    def one_batch():
        start = 2 * 10 ** 6 + next(counter) * BATCH
        update = _tgd_batch(rng, current, start)
        return ExchangeTransformation(mapping).apply(
            apply_update(current, update)
        )

    result = benchmark(one_batch)
    assert result.total_rows() > 0


def test_egd_series_equivalent():
    """Merge/rollback lane stays equivalent to full re-exchange."""
    _series(120, _egd_mapping, _egd_source, _egd_batch,
            enforce_target_keys=True)


# ----------------------------------------------------------------------
# harness report -> BENCH_updates.json
# ----------------------------------------------------------------------
def test_incremental_exchange_report(benchmark):
    rows = []
    acceptance = None
    for size in SIZES:
        maintain, full, stats = _series(
            size, _tgd_mapping, _tgd_source, _tgd_batch
        )
        speedup = full / maintain if maintain else float("inf")
        rows.append([
            size, BATCH, f"{maintain * 1000:.2f} ms",
            f"{full * 1000:.2f} ms", f"{speedup:.1f}x",
            stats["overdeleted"], stats["rederived"],
            stats["reused_rows"],
        ])
        if size == max(SIZES):
            acceptance = speedup
    egd_size = 120
    maintain, full, stats = _series(
        egd_size, _egd_mapping, _egd_source, _egd_batch,
        enforce_target_keys=True,
    )
    rows.append([
        f"{egd_size} (egd)", BATCH, f"{maintain * 1000:.2f} ms",
        f"{full * 1000:.2f} ms",
        f"{full / maintain if maintain else float('inf'):.1f}x",
        stats["overdeleted"], stats["rederived"], stats["reused_rows"],
    ])
    # One timed op for the harness: a single maintenance batch at the
    # smallest scale.
    mapping = _tgd_mapping("rep")
    materialized = MaterializedExchange(mapping, _tgd_source(SIZES[0]))
    rng = random.Random(3)
    update = _tgd_batch(
        rng, materialized.source_instance(copy=False), 3 * 10 ** 6
    )
    benchmark(materialized.apply, update)
    print_table(
        "E10: incremental maintenance vs full re-exchange per "
        f"{BATCH}-row mixed batch (equivalence-checked every batch)",
        ["source rows", "batch", "maintain", "re-exchange", "speedup",
         "overdeleted", "rederived", "reused rows"],
        rows,
    )
    if acceptance is not None and max(SIZES) >= 4000:
        assert acceptance >= ACCEPTANCE_SPEEDUP, (
            f"maintenance speedup {acceptance:.1f}x below the "
            f"{ACCEPTANCE_SPEEDUP}x acceptance bar at {max(SIZES)} rows"
        )


# ----------------------------------------------------------------------
# standalone run -> BENCH_updates.json (see benchmarks/harness.py)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    import sys

    from harness import run_standalone

    if argv is None:
        argv = sys.argv[1:]
    if "--smoke" in argv:
        # CI parity gate: smallest size only, equivalence asserts and
        # the egd lane still run; no JSON rewrite.
        global SIZES
        SIZES = (250,)
    return run_standalone("updates", [test_incremental_exchange_report],
                          argv)


if __name__ == "__main__":
    raise SystemExit(main())
