"""E4 — §4 / ADO.NET: inheritance-mapping strategies and
roundtripping.

For hierarchies of growing size, each strategy (TPH, TPT, TPC) is run
through ModelGen → TransGen → roundtrip verification, measuring the
generated view's size and the cost of the losslessness check.  This is
the ablation DESIGN.md calls out: the strategy is a design choice with
measurable consequences — TPT's views grow with hierarchy depth (one
join per level), TPH's stay flat but its table gets wide, TPC
duplicates inherited columns.
"""

import pytest

from repro.instances import InstanceGenerator
from repro.operators import InheritanceStrategy, modelgen, transgen
from repro.workloads import synthetic

from conftest import print_table


def _hierarchy(depth: int, branching: int = 2):
    return synthetic.inheritance_schema(
        f"H{depth}x{branching}", depth=depth, branching=branching,
        attributes_per_entity=2,
    )


@pytest.mark.parametrize("strategy", list(InheritanceStrategy))
def test_modelgen_per_strategy(benchmark, strategy):
    schema = _hierarchy(2)

    result = benchmark(modelgen, schema, "relational", strategy)
    assert result.mapping.equalities


@pytest.mark.parametrize("strategy", list(InheritanceStrategy))
def test_roundtrip_per_strategy(benchmark, strategy):
    schema = _hierarchy(2)
    views = transgen(modelgen(schema, "relational", strategy).mapping)
    db = InstanceGenerator(schema, seed=7).generate(40)

    benchmark(views.verify_roundtrip, db)


@pytest.mark.parametrize("depth", [1, 2, 3])
def test_depth_scaling_tpt(benchmark, depth):
    schema = _hierarchy(depth)
    mapping = modelgen(schema, "relational", InheritanceStrategy.TPT).mapping

    views = benchmark(transgen, mapping)
    views.verify_roundtrip(
        InstanceGenerator(schema, seed=2).generate(20)
    )


def test_strategy_report(benchmark):
    rows = []
    for depth in (1, 2, 3):
        schema = _hierarchy(depth)
        for strategy in InheritanceStrategy:
            result = modelgen(schema, "relational", strategy)
            views = transgen(result.mapping)
            tables = len(result.schema.entities)
            columns = sum(
                len(e.attributes) for e in result.schema.entities.values()
            )
            rows.append([
                depth,
                strategy.name,
                tables,
                columns,
                views.query_view.size(),
                "yes",
            ])
            views.verify_roundtrip(
                InstanceGenerator(schema, seed=3).generate(15)
            )
    schema = _hierarchy(2)
    mapping = modelgen(schema, "relational", InheritanceStrategy.TPT).mapping
    benchmark(transgen, mapping)
    print_table(
        "E4: inheritance strategies — schema shape, view size, "
        "roundtrip (TPT: many narrow tables + joins; TPH: one wide "
        "table; TPC: duplicated columns)",
        ["depth", "strategy", "tables", "total columns",
         "query-view nodes", "roundtrips"],
        rows,
    )


# ----------------------------------------------------------------------
# standalone run -> BENCH_roundtrip.json (see benchmarks/harness.py)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    from harness import run_standalone

    return run_standalone("roundtrip", [test_strategy_report], argv)


if __name__ == "__main__":
    raise SystemExit(main())
