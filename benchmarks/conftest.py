"""Shared helpers for the benchmark harness.

Every benchmark prints the table/series its experiment in DESIGN.md
reports, so that ``pytest benchmarks/ --benchmark-only`` regenerates
the EXPERIMENTS.md numbers.
"""

from __future__ import annotations


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Fixed-width table printer used by every experiment's report."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    print(f"\n### {title}")
    print("  " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  " + "-+-".join("-" * w for w in widths))
    for row in rendered:
        print("  " + " | ".join(c.ljust(w) for c, w in zip(row, widths)))


def _cell(value) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.1f}"
        return f"{value:.4f}"
    return str(value)
