"""E6 — §6.2–6.4: Diff, Extract, Merge and Inverse under growing
evolution deltas.

For schemas with n new attributes added by evolution: Diff must report
exactly the new parts (and Extract ⊎ Diff must cover the schema);
Merge's output grows additively; the inverse-existence rate over random
tgd mappings quantifies how often the exact inverse exists — the
paper's point that most practical mappings are lossy and need
quasi-inverses.
"""

import random

import pytest

from repro.errors import InversionError
from repro.logic.dependencies import TGD
from repro.logic.formulas import Atom
from repro.logic.terms import Var
from repro.mappings import CorrespondenceSet, Mapping
from repro.metamodel import Attribute, INT, STRING, SchemaBuilder
from repro.operators import diff, extract, inverse, merge, quasi_inverse
from repro.workloads import paper

from conftest import print_table


def _evolved_pair(new_attributes: int):
    base = paper.figure6_s_prime_schema()
    for i in range(new_attributes):
        base.entity("Foreign").add_attribute(
            Attribute(f"extra_{i}", STRING, nullable=True)
        )
    mapping = Mapping(
        paper.figure6_s_schema(), base,
        paper.figure6_map_s_sprime().constraints, name="evolved",
    )
    return base, mapping


@pytest.mark.parametrize("new_attributes", [1, 4, 16])
def test_diff_scaling(benchmark, new_attributes):
    schema, mapping = _evolved_pair(new_attributes)

    slice_ = benchmark(diff, schema, mapping.invert())
    assert len([p for p in slice_.participating if "extra" in p]) == (
        new_attributes
    )


@pytest.mark.parametrize("new_attributes", [1, 4, 16])
def test_extract_scaling(benchmark, new_attributes):
    schema, mapping = _evolved_pair(new_attributes)

    slice_ = benchmark(extract, schema, mapping.invert())
    assert "Foreign.Country" in slice_.participating


@pytest.mark.parametrize("entities", [4, 8, 16])
def test_merge_scaling(benchmark, entities):
    first = SchemaBuilder("MA")
    second = SchemaBuilder("MB")
    for i in range(entities):
        first.entity(f"E{i}", key=["id"]).attribute("id", INT) \
            .attribute(f"a{i}", STRING)
        second.entity(f"F{i}", key=["id"]).attribute("id", INT) \
            .attribute(f"b{i}", STRING)
    schema_a, schema_b = first.build(), second.build()
    correspondences = CorrespondenceSet(schema_a, schema_b)
    for i in range(entities // 2):  # half the entities correspond
        correspondences.add_pair(f"E{i}", f"F{i}")
        correspondences.add_pair(f"E{i}.id", f"F{i}.id")

    result = benchmark(merge, schema_a, schema_b, correspondences)
    assert len(result.schema.entities) == entities + entities // 2


def _random_mapping(seed: int):
    """A random single-tgd mapping that may or may not be lossless."""
    rng = random.Random(seed)
    attributes = ["a", "b", "c"]
    source = SchemaBuilder(f"RS{seed}").entity("R", key=["a"])
    for attr in attributes:
        source.attribute(attr, INT)
    target = SchemaBuilder(f"RT{seed}").entity("T", key=["a"])
    for attr in attributes:
        target.attribute(attr, INT, nullable=True)
    source_schema, target_schema = source.build(), target.build()
    body_vars = {attr: Var(attr) for attr in attributes}
    head_args = []
    for attr in attributes:
        choice = rng.random()
        if choice < 0.6:
            head_args.append((attr, body_vars[attr]))  # copied
        elif choice < 0.8:
            head_args.append((attr, Var(f"e_{attr}")))  # invented
        else:
            head_args.append((attr, body_vars["a"]))  # collapsed
    tgd = TGD(
        body=(Atom("R", tuple((a, body_vars[a]) for a in attributes)),),
        head=(Atom("T", tuple(head_args)),),
        name=f"rnd{seed}",
    )
    return Mapping(source_schema, target_schema, [tgd])


def test_inverse_existence_rate(benchmark):
    """How often does an exact inverse exist for random mappings?"""

    def survey():
        exact = 0
        for seed in range(40):
            mapping = _random_mapping(seed)
            try:
                inverse(mapping)
                exact += 1
            except InversionError:
                quasi_inverse(mapping)  # always constructible
        return exact

    exact = benchmark(survey)
    assert 0 < exact < 40  # some lossless, most lossy


def test_evolution_report(benchmark):
    rows = []
    for new_attributes in (1, 4, 16):
        schema, mapping = _evolved_pair(new_attributes)
        inverted = mapping.invert()
        new_parts = diff(schema, inverted)
        kept = extract(schema, inverted)
        all_attrs = {
            f"{e.name}.{a.name}"
            for e in schema.entities.values() for a in e.attributes
        }
        covered = set()
        for piece in (new_parts.schema, kept.schema):
            for entity in piece.entities.values():
                for attribute in entity.attributes:
                    covered.add(f"{entity.name}.{attribute.name}")
        rows.append([
            new_attributes,
            len(new_parts.participating),
            len(kept.participating),
            "yes" if covered == all_attrs else "NO",
        ])
    exact = sum(
        1 for seed in range(40)
        if _try_inverse(_random_mapping(seed))
    )
    schema, mapping = _evolved_pair(4)
    benchmark(diff, schema, mapping.invert())
    print_table(
        "E6: Diff/Extract coverage under evolution deltas",
        ["new attrs", "Diff attrs", "Extract attrs",
         "Extract ⊎ Diff covers schema"],
        rows,
    )
    print_table(
        "E6b: exact-inverse existence over 40 random single-tgd mappings",
        ["exact inverses", "quasi-inverse only"],
        [[exact, 40 - exact]],
    )


def _try_inverse(mapping) -> bool:
    try:
        inverse(mapping)
        return True
    except InversionError:
        return False


# ----------------------------------------------------------------------
# standalone run -> BENCH_evolution_operators.json (see benchmarks/harness.py)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    from harness import run_standalone

    return run_standalone("evolution_operators", [test_evolution_report], argv)


if __name__ == "__main__":
    raise SystemExit(main())
