"""F6 — Figure 6: composition for schema evolution, checked against
the paper's stated result.

The paper derives, by hand::

    Students = π[Name,Address,Country](Names′ ⋈ (Local×{'US'} ∪ Foreign))

The benchmark runs Compose on mapV-S and mapS-S′ and verifies the
machine-composed view is *extensionally identical* to the paper's
expression on the migrated database, then measures composition cost on
both the equality language (view unfolding) and the tgd encoding of
the same scenario.
"""

from repro.algebra import evaluate
from repro.instances import Instance, freeze_row
from repro.logic import parse_tgd
from repro.mappings import Mapping
from repro.operators import compose
from repro.workloads import paper

from conftest import print_table


def test_figure6_composition(benchmark):
    composed = benchmark(
        compose, paper.figure6_map_v_s(), paper.figure6_map_s_sprime()
    )
    s_prime = paper.figure6_s_prime_instance()
    ours = evaluate(composed.equalities[0].target_expr, s_prime)
    stated = evaluate(paper.figure6_composed_view_expr(), s_prime)
    assert {freeze_row(r) for r in ours} == {freeze_row(r) for r in stated}


def test_figure6_composed_evaluation(benchmark):
    composed = compose(paper.figure6_map_v_s(), paper.figure6_map_s_sprime())
    expr = composed.equalities[0].target_expr
    s_prime = paper.figure6_s_prime_instance()

    rows = benchmark(evaluate, expr, s_prime)
    assert len(rows) == 3


def _tgd_version():
    """The conjunctive core of Figure 6 as tgds (the σ≠ split is not
    conjunctive, so the tgd encoding keeps Foreign only)."""
    map_v_s = Mapping(
        paper.figure6_view_schema(), paper.figure6_s_schema(),
        [parse_tgd(
            "Students(Name=n, Address=a, Country=c) -> "
            "Names(SID=s, Name=n) & Addresses(SID=s, Address=a, Country=c)"
        )],
        name="mapV-S-tgd",
    )
    map_s_sp = Mapping(
        paper.figure6_s_schema(), paper.figure6_s_prime_schema(),
        [
            parse_tgd("Names(SID=s, Name=n) -> NamesP(SID=s, Name=n)"),
            parse_tgd("Addresses(SID=s, Address=a, Country='US') -> "
                      "Local(SID=s, Address=a)"),
            parse_tgd("Addresses(SID=s, Address=a, Country=c) -> "
                      "Foreign(SID=s, Address=a, Country=c)"),
        ],
        name="mapS-Sprime-tgd",
    )
    return map_v_s, map_s_sp


def test_figure6_tgd_composition(benchmark):
    map_v_s, map_s_sp = _tgd_version()

    composed = benchmark(compose, map_v_s, map_s_sp)
    assert composed.source.name == "V"
    assert composed.target.name == "Sprime"
    # One view tgd × three evolution tgds, filtered to satisfiable
    # combinations.
    assert composed.constraint_count() >= 2


def test_figure6_report(benchmark):
    composed = benchmark(
        compose, paper.figure6_map_v_s(), paper.figure6_map_s_sprime()
    )
    expr = composed.equalities[0].target_expr
    stated = paper.figure6_composed_view_expr()
    s_prime = paper.figure6_s_prime_instance()
    ours_rows = evaluate(expr, s_prime)
    print_table(
        "F6: machine-composed mapping vs the paper's hand derivation",
        ["quantity", "value"],
        [
            ["paper's composed view", repr(stated)],
            ["engine's composed view", repr(expr)],
            ["rows on migrated DB (both)", len(ours_rows)],
            ["extensional match", "yes"],
            ["composed language", composed.language.value],
        ],
    )


# ----------------------------------------------------------------------
# standalone run -> BENCH_fig6_composition.json (see benchmarks/harness.py)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    from harness import run_standalone

    return run_standalone("fig6_composition", [test_figure6_report], argv)


if __name__ == "__main__":
    raise SystemExit(main())
