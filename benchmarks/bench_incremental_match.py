"""E9 (extension) — §3.1.1 / [18]: incremental matching.

The interactive loop: the architect decides candidates one at a time,
each decision re-ranking the rest.  Measured: how many *decisions* the
session needs before every truth pair is confirmed when the architect
always accepts the top candidate if it is correct and rejects it
otherwise — compared against the oracle minimum (#elements).  Expected
shape: the re-ranking keeps wasted decisions (rejections) low, and
fewer are wasted than with a frozen (non-re-ranking) candidate list.
"""

import pytest

from repro.operators.match import MatchConfig
from repro.operators.match.incremental import IncrementalMatcher
from repro.workloads import synthetic

from conftest import print_table


def _workload(noise: float, seed: int = 21):
    schema = synthetic.snowflake_schema("IM", depth=1, branching=3,
                                        attributes_per_entity=3, seed=seed)
    copy, truth = synthetic.perturbed_copy(schema, rename_probability=noise,
                                           seed=seed + 1)
    return schema, copy, truth


def _drive_session(session: IncrementalMatcher,
                   truth: set[tuple[str, str]]) -> tuple[int, int]:
    """Simulated architect: accept correct top candidates, reject wrong
    ones.  Returns (decisions, confirmed)."""
    wanted = dict()
    for source_path, target_path in truth:
        wanted.setdefault(source_path, set()).add(target_path)
    decisions = 0
    for _ in range(400):
        path = session.next_undecided()
        if path is None:
            break
        candidates = session.candidates(path)
        if not candidates:
            session._confirmed.add((path, "(none)"))
            continue
        top = candidates[0][0]
        decisions += 1
        if top in wanted.get(path, set()):
            session.accept(path, top)
        else:
            session.reject(path, top)
    confirmed = sum(
        1 for s, t in session._confirmed if t in wanted.get(s, set())
    )
    return decisions, confirmed


@pytest.mark.parametrize("noise", [0.4, 0.8])
def test_incremental_session(benchmark, noise):
    schema, copy, truth = _workload(noise)

    def run():
        session = IncrementalMatcher(schema, copy,
                                     MatchConfig(top_k=3, threshold=0.05))
        return _drive_session(session, truth)

    decisions, confirmed = benchmark(run)
    assert confirmed >= 0.8 * len({s for s, _ in truth})


def test_incremental_report(benchmark):
    rows = []
    for noise in (0.4, 0.8):
        schema, copy, truth = _workload(noise)
        session = IncrementalMatcher(schema, copy,
                                     MatchConfig(top_k=3, threshold=0.05))
        decisions, confirmed = _drive_session(session, truth)
        elements = len({s for s, _ in truth})
        rows.append([
            noise, elements, decisions, confirmed,
            decisions - confirmed,  # wasted (rejections)
        ])
    schema, copy, truth = _workload(0.4)
    benchmark(
        lambda: _drive_session(
            IncrementalMatcher(schema, copy,
                               MatchConfig(top_k=3, threshold=0.05)),
            truth,
        )
    )
    print_table(
        "E9: incremental matching — decisions until convergence "
        "(oracle minimum = elements)",
        ["noise", "elements", "decisions", "confirmed", "rejections"],
        rows,
    )


# ----------------------------------------------------------------------
# standalone run -> BENCH_incremental_match.json (see benchmarks/harness.py)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    from harness import run_standalone

    return run_standalone("incremental_match", [test_incremental_report], argv)


if __name__ == "__main__":
    raise SystemExit(main())
