"""E2 — §6.1 / Fagin et al. [40]: composition blow-up.

The cited result: SO-tgd composition has an exponential lower bound —
"the size of the output may be exponential".  Two workload families
make the dichotomy visible:

* **linear** — chains of k copy mappings: composed size stays constant
  per step, time grows linearly in k;
* **exponential** — the alternatives construction (each middle
  relation has 2 origins; one target rule joins n of them): the
  composition must enumerate 2ⁿ origin combinations.

Expected shape: implication count exactly 2ⁿ in the second family, and
near-flat constraint counts in the first.
"""

import pytest

from repro.operators import compose
from repro.workloads import synthetic

from conftest import print_table


def _compose_chain(mappings):
    current = mappings[0]
    for mapping in mappings[1:]:
        current = compose(current, mapping)
    return current


@pytest.mark.parametrize("steps", [2, 4, 8])
def test_linear_chain(benchmark, steps):
    mappings = synthetic.composition_chain_linear(steps, relations=3)

    composed = benchmark(_compose_chain, mappings)
    assert composed.constraint_count() == 3  # one per relation, flat


@pytest.mark.parametrize("width", [2, 4, 6, 8])
def test_exponential_family(benchmark, width):
    m12, m23 = synthetic.composition_pair_exponential(width)

    composed = benchmark(compose, m12, m23, False)
    assert len(composed.so_tgd.implications) == 2 ** width


def test_deskolemization_cost(benchmark):
    """First-order recovery is an extra pass over every implication."""
    m12, m23 = synthetic.composition_pair_exponential(6)

    composed = benchmark(compose, m12, m23, True)
    # These compositions de-Skolemize (origins are full tgds).
    assert composed.so_tgd is None


def test_compose_report(benchmark):
    rows = []
    for steps in (2, 4, 8):
        mappings = synthetic.composition_chain_linear(steps, relations=3)
        composed = _compose_chain(mappings)
        rows.append(["linear", steps, composed.constraint_count(),
                     composed.language.value])
    for width in (2, 4, 6, 8, 10):
        m12, m23 = synthetic.composition_pair_exponential(width)
        composed = compose(m12, m23, prefer_first_order=False)
        rows.append(["exponential", width,
                     len(composed.so_tgd.implications), "so-tgd"])
    m12, m23 = synthetic.composition_pair_exponential(4)
    benchmark(compose, m12, m23, False)
    print_table(
        "E2: composition output size (linear chains vs the 2ⁿ "
        "alternatives family — Fagin et al.'s lower bound)",
        ["family", "k / n", "output constraints", "language"],
        rows,
    )


# ----------------------------------------------------------------------
# standalone run -> BENCH_compose.json (see benchmarks/harness.py)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    from harness import run_standalone

    return run_standalone("compose", [test_compose_report], argv)


if __name__ == "__main__":
    raise SystemExit(main())
