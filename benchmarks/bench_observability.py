"""Observability overhead: the disabled-by-default contract, measured.

The tracing/metrics layer (``repro.observability``) instruments every
operator entry point, the chase, and the runtime services.  Its
contract is that a *disabled* instrumented call costs one guard check.
This suite verifies the contract two ways:

* **chase micro-benchmark** — ``chase()`` (instrumented entry) vs the
  bare ``_SemiNaiveChase`` engine it delegates to, tracing off.  The
  acceptance bound is < 5% overhead;
* **no-op call micro-benchmark** — a trivial function plain vs
  ``@instrumented``-wrapped with tracing off, in ns/call;
* **enabled overhead** — the same chase workload with tracing on, for
  reference (this one is allowed to cost something).

Standalone (``python benchmarks/bench_observability.py``) emits
``BENCH_observability.json`` and exits nonzero if the disabled bound
is violated.  The pytest entries assert the same bound, with slack for
noisy CI machines.
"""

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

import repro.observability as obs
from repro.instances import Instance
from repro.logic import parse_tgd
from repro.logic.chase import _SemiNaiveChase, _fresh_factory, chase
from repro.observability.instrument import instrumented

from conftest import print_table


def _chain_workload(rows: int = 200, stages: int = 8):
    db = Instance()
    for i in range(rows):
        db.add("R0", a=i, b=i % 7)
    tgds = [
        parse_tgd(f"R{k}(a=x, b=y) -> R{k + 1}(a=x, b=y)")
        for k in range(stages)
    ][::-1]
    return db, tgds


def _bare_chase(db, tgds):
    """Exactly :func:`chase` minus the instrumentation wrapper."""
    working = db.copy()
    return _SemiNaiveChase(working, tgds, _fresh_factory(working),
                           100_000).run()


def _best_of(fn, repeat: int = 5) -> float:
    fn()  # warmup: exclude allocator/cache cold-start from the best
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_chase_overhead(rows: int = 200, repeat: int = 5) -> dict:
    """Disabled + enabled chase overhead vs the bare engine."""
    db, tgds = _chain_workload(rows)
    obs.disable()
    bare = _best_of(lambda: _bare_chase(db, tgds), repeat)
    disabled = _best_of(lambda: chase(db, tgds), repeat)
    obs.reset()
    obs.enable()
    enabled = _best_of(lambda: chase(db, tgds), repeat)
    obs.disable()
    return {
        "workload": f"chain(rows={rows}, stages=8)",
        "bare_seconds": round(bare, 6),
        "disabled_seconds": round(disabled, 6),
        "enabled_seconds": round(enabled, 6),
        "disabled_overhead_percent": round((disabled - bare) / bare * 100, 2),
        "enabled_overhead_percent": round((enabled - bare) / bare * 100, 2),
    }


def measure_noop_overhead(calls: int = 200_000) -> dict:
    """ns/call of a disabled instrumented wrapper vs a plain call."""

    def plain(x):
        return x

    @instrumented("bench.noop")
    def wrapped(x):
        return x

    obs.disable()

    def loop(fn):
        def run():
            for i in range(calls):
                fn(i)
        return run

    plain_seconds = _best_of(loop(plain), repeat=5)
    wrapped_seconds = _best_of(loop(wrapped), repeat=5)
    return {
        "calls": calls,
        "plain_ns_per_call": round(plain_seconds / calls * 1e9, 1),
        "disabled_ns_per_call": round(wrapped_seconds / calls * 1e9, 1),
        "added_ns_per_call": round(
            (wrapped_seconds - plain_seconds) / calls * 1e9, 1
        ),
    }


# ----------------------------------------------------------------------
# pytest suite
# ----------------------------------------------------------------------
def test_disabled_chase_overhead_bound(benchmark):
    entry = measure_chase_overhead(rows=100, repeat=3)
    benchmark(lambda: chase(*_chain_workload(100)))
    # CI slack: the acceptance bound is 5% best-of-5 (standalone run);
    # under pytest-benchmark's machine load allow 15%.
    assert entry["disabled_overhead_percent"] < 15.0, entry


def test_enabled_tracing_records_chase(benchmark):
    db, tgds = _chain_workload(50)
    obs.reset()
    obs.enable()
    try:
        benchmark(chase, db, tgds)
    finally:
        obs.disable()
    assert "chase.runs" in obs.registry
    assert any(s.name == "logic.chase" for s in obs.tracer.iter_spans())
    obs.reset()


def test_observability_report(benchmark):
    chase_entry = measure_chase_overhead(rows=100, repeat=3)
    noop_entry = measure_noop_overhead(calls=50_000)
    benchmark(lambda: chase(*_chain_workload(50)))
    print_table(
        "Observability overhead (tracing off unless noted)",
        ["quantity", "value"],
        [
            ["bare chase (s)", chase_entry["bare_seconds"]],
            ["instrumented, disabled (s)", chase_entry["disabled_seconds"]],
            ["instrumented, enabled (s)", chase_entry["enabled_seconds"]],
            ["disabled overhead (%)",
             chase_entry["disabled_overhead_percent"]],
            ["enabled overhead (%)",
             chase_entry["enabled_overhead_percent"]],
            ["no-op plain (ns/call)", noop_entry["plain_ns_per_call"]],
            ["no-op disabled (ns/call)",
             noop_entry["disabled_ns_per_call"]],
        ],
    )


# ----------------------------------------------------------------------
# standalone run -> BENCH_observability.json
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Observability overhead → BENCH_observability.json"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="smaller workload, no JSON rewrite unless "
                             "--out is given")
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)

    rows = 100 if args.smoke else 400
    chase_entry = measure_chase_overhead(rows=rows)
    noop_entry = measure_noop_overhead(
        calls=50_000 if args.smoke else 500_000
    )
    print(
        f"chase rows={rows}: bare={chase_entry['bare_seconds']:.4f}s  "
        f"disabled={chase_entry['disabled_seconds']:.4f}s "
        f"({chase_entry['disabled_overhead_percent']:+.2f}%)  "
        f"enabled={chase_entry['enabled_seconds']:.4f}s "
        f"({chase_entry['enabled_overhead_percent']:+.2f}%)"
    )
    print(
        f"no-op: plain={noop_entry['plain_ns_per_call']}ns/call  "
        f"disabled wrapper={noop_entry['disabled_ns_per_call']}ns/call"
    )

    out = args.out
    if out is None and not args.smoke:
        out = Path(__file__).resolve().parent.parent / (
            "BENCH_observability.json"
        )
    if out is not None:
        payload = {
            "benchmark": "observability",
            "contract": "disabled instrumented call < 5% over bare",
            "chase": chase_entry,
            "noop_call": noop_entry,
        }
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")

    # The 5% contract is judged on the full 400-row measurement; the
    # 100-row smoke run is noise-dominated (a ~7ms denominator), so it
    # gets the same relaxed bound the pytest check uses.
    limit = 15.0 if args.smoke else 5.0
    if chase_entry["disabled_overhead_percent"] >= limit:
        print(f"ERROR: disabled overhead exceeds the {limit:g}% contract")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
