"""Observability overhead: the disabled-by-default contract, measured.

The tracing/metrics layer (``repro.observability``) instruments every
operator entry point, the chase, and the runtime services.  Its
contract is that a *disabled* instrumented call costs one guard check.
This suite verifies the contract two ways:

* **chase micro-benchmark** — ``chase()`` (instrumented entry) vs the
  bare ``_SemiNaiveChase`` engine it delegates to, tracing off.  The
  acceptance bound is < 5% overhead;
* **no-op call micro-benchmark** — a trivial function plain vs
  ``@instrumented``-wrapped with tracing off, in ns/call;
* **enabled overhead** — the same chase workload with tracing on, for
  reference (this one is allowed to cost something);
* **stats / query-path overhead** — a warm-cache query workload with
  observability on (statistics service + cardinality estimator +
  query log + per-node profiling) vs off.  The acceptance bound is
  < 10% overhead, plus an informational ns/row figure for absorbing
  appended rows into a warm ``RelationStats`` cache;
* **sampled query-path overhead** — the same workload with the trace
  sampler active at a 10% keep rate (the recommended production
  setting): head-dropped traces still pay span construction for
  tail-keep, and the bound is the same < 10% contract.

Standalone (``python benchmarks/bench_observability.py``) emits
``BENCH_observability.json`` and exits nonzero if the disabled bound
is violated.  The pytest entries assert the same bound, with slack for
noisy CI machines.
"""

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

import repro.observability as obs
from repro.instances import Instance
from repro.logic import parse_tgd
from repro.logic.chase import _SemiNaiveChase, _fresh_factory, chase
from repro.observability.instrument import instrumented

from conftest import print_table


def _chain_workload(rows: int = 200, stages: int = 8):
    db = Instance()
    for i in range(rows):
        db.add("R0", a=i, b=i % 7)
    tgds = [
        parse_tgd(f"R{k}(a=x, b=y) -> R{k + 1}(a=x, b=y)")
        for k in range(stages)
    ][::-1]
    return db, tgds


def _bare_chase(db, tgds):
    """Exactly :func:`chase` minus the instrumentation wrapper."""
    working = db.copy()
    return _SemiNaiveChase(working, tgds, _fresh_factory(working),
                           100_000).run()


def _best_of(fn, repeat: int = 5) -> float:
    fn()  # warmup: exclude allocator/cache cold-start from the best
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _ab_best(fn, setup_a, setup_b, repeat: int = 5, inner: int = 4) -> tuple:
    """Interleaved A/B best-of: alternate the two configurations every
    iteration so slow machine drift (thermal, background load) hits
    both sides equally instead of landing on whichever was measured
    second.  Each timed sample runs ``inner`` calls (a sub-ms workload
    alone is scheduler-tick noise), the collector is paused during the
    timed windows (and run between them), and setup calls run outside
    the timed window.  Returns per-call (best_a, best_b)."""
    import gc

    setup_a()
    fn()  # warmup both configurations
    setup_b()
    fn()
    best_a = best_b = float("inf")
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(repeat):
            setup_a()
            gc.collect()
            gc.disable()
            start = time.perf_counter()
            for _ in range(inner):
                fn()
            best_a = min(best_a, time.perf_counter() - start)
            if gc_was_enabled:
                gc.enable()
            setup_b()
            gc.collect()
            gc.disable()
            start = time.perf_counter()
            for _ in range(inner):
                fn()
            best_b = min(best_b, time.perf_counter() - start)
            if gc_was_enabled:
                gc.enable()
    finally:
        if gc_was_enabled:
            gc.enable()
    return best_a / inner, best_b / inner


def measure_chase_overhead(rows: int = 200, repeat: int = 5) -> dict:
    """Disabled + enabled chase overhead vs the bare engine."""
    db, tgds = _chain_workload(rows)
    obs.disable()
    bare = _best_of(lambda: _bare_chase(db, tgds), repeat)
    disabled = _best_of(lambda: chase(db, tgds), repeat)
    obs.reset()
    obs.enable()
    enabled = _best_of(lambda: chase(db, tgds), repeat)
    obs.disable()
    return {
        "workload": f"chain(rows={rows}, stages=8)",
        "bare_seconds": round(bare, 6),
        "disabled_seconds": round(disabled, 6),
        "enabled_seconds": round(enabled, 6),
        "disabled_overhead_percent": round((disabled - bare) / bare * 100, 2),
        "enabled_overhead_percent": round((enabled - bare) / bare * 100, 2),
    }


def measure_noop_overhead(calls: int = 200_000) -> dict:
    """ns/call of a disabled instrumented wrapper vs a plain call."""

    def plain(x):
        return x

    @instrumented("bench.noop")
    def wrapped(x):
        return x

    obs.disable()

    def loop(fn):
        def run():
            for i in range(calls):
                fn(i)
        return run

    plain_seconds = _best_of(loop(plain), repeat=5)
    wrapped_seconds = _best_of(loop(wrapped), repeat=5)
    return {
        "calls": calls,
        "plain_ns_per_call": round(plain_seconds / calls * 1e9, 1),
        "disabled_ns_per_call": round(wrapped_seconds / calls * 1e9, 1),
        "added_ns_per_call": round(
            (wrapped_seconds - plain_seconds) / calls * 1e9, 1
        ),
    }


def measure_stats_overhead(rows: int = 4000, repeat: int = 7) -> dict:
    """Enabled query-path overhead: statistics + estimator + query log.

    A warm-plan-cache select+join workload, best-of-``repeat``, with
    observability off vs on.  The enabled run pays for the per-node
    profiled pipeline, the cardinality estimator (statistics served
    from the validated cache), and the query-log append — the whole
    estimate↔actual telemetry path.  Separately reports the absolute
    cost of absorbing appended rows into a warm stats cache.
    """
    from repro.algebra import expressions as E
    from repro.algebra import scalars as S
    from repro.algebra.evaluator import evaluate

    db = Instance()
    for i in range(rows):
        db.insert("emp", {"id": i, "dept": i % 40, "salary": 1000 + i})
    for d in range(40):
        db.insert("dept", {"dept": d, "dname": f"d{d}"})
    query = E.Join(
        E.Select(E.Scan("emp"),
                 S.Comparison("<", S.Col("salary"), S.Lit(rows))),
        E.Scan("dept"),
        E._JoinEq("dept", "dept"),
    )

    obs.reset()
    disabled, enabled = _ab_best(
        lambda: evaluate(query, db), obs.disable, obs.enable, repeat
    )
    obs.disable()
    obs.reset()

    # Absolute maintenance cost: extend a warm RelationStats in place
    # over a batch of appended rows (the validation contract's
    # stats_extends path).
    db.relation_stats("emp")
    batch_rows = 1000
    db.insert_all(
        "emp",
        [{"id": i, "dept": i % 40, "salary": i} for i in range(batch_rows)],
    )
    start = time.perf_counter()
    db.relation_stats("emp")
    extend_seconds = time.perf_counter() - start

    return {
        "workload": f"select+join over {rows} rows, warm plan cache",
        "disabled_seconds": round(disabled, 6),
        "enabled_seconds": round(enabled, 6),
        "stats_overhead_percent": round(
            (enabled - disabled) / disabled * 100, 2
        ),
        "stats_extend_ns_per_row": round(
            extend_seconds / batch_rows * 1e9, 1
        ),
    }


def measure_sampled_overhead(rows: int = 4000, repeat: int = 7) -> dict:
    """Enabled + head-sampled query-path overhead.

    The same warm-cache workload as :func:`measure_stats_overhead`,
    but with the trace sampler active at a 10% keep rate — the
    recommended production configuration.  Head-dropped traces still
    pay span construction (tail-keep needs their timings) but stay off
    the retained-roots list; the acceptance bound is the same < 10%
    contract as the unsampled enabled path.
    """
    from repro.algebra import expressions as E
    from repro.algebra import scalars as S
    from repro.algebra.evaluator import evaluate
    from repro.observability.sampling import SAMPLER

    db = Instance()
    for i in range(rows):
        db.insert("emp", {"id": i, "dept": i % 40, "salary": 1000 + i})
    for d in range(40):
        db.insert("dept", {"dept": d, "dname": f"d{d}"})
    query = E.Join(
        E.Select(E.Scan("emp"),
                 S.Comparison("<", S.Col("salary"), S.Lit(rows))),
        E.Scan("dept"),
        E._JoinEq("dept", "dept"),
    )

    obs.reset()
    SAMPLER.configure(default_rate=0.1)

    def run():
        evaluate(query, db)
        # Keep the retained-roots list bounded so the measurement
        # doesn't degrade into list-append pressure across repeats.
        if len(obs.tracer.roots) > 64:
            obs.tracer.roots.clear()

    disabled, sampled = _ab_best(run, obs.disable, obs.enable, repeat)
    snapshot = SAMPLER.snapshot()
    obs.disable()
    obs.reset()
    return {
        "workload": f"select+join over {rows} rows, sampler rate=0.1",
        "disabled_seconds": round(disabled, 6),
        "sampled_seconds": round(sampled, 6),
        "sampled_overhead_percent": round(
            (sampled - disabled) / disabled * 100, 2
        ),
        "sampler_kept": snapshot["kept"],
        "sampler_dropped": snapshot["dropped"],
    }


# ----------------------------------------------------------------------
# pytest suite
# ----------------------------------------------------------------------
def test_disabled_chase_overhead_bound(benchmark):
    entry = measure_chase_overhead(rows=100, repeat=3)
    benchmark(lambda: chase(*_chain_workload(100)))
    # CI slack: the acceptance bound is 5% best-of-5 (standalone run);
    # under pytest-benchmark's machine load allow 15%.
    assert entry["disabled_overhead_percent"] < 15.0, entry


def test_enabled_tracing_records_chase(benchmark):
    db, tgds = _chain_workload(50)
    obs.reset()
    obs.enable()
    try:
        benchmark(chase, db, tgds)
    finally:
        obs.disable()
    assert "chase.runs" in obs.registry
    assert any(s.name == "logic.chase" for s in obs.tracer.iter_spans())
    obs.reset()


def test_stats_query_overhead_bound(benchmark):
    # Full-size workload: the overhead is a fixed per-query cost, so a
    # smaller query would inflate the percentage into meaninglessness.
    entry = measure_stats_overhead(rows=4000, repeat=3)
    benchmark(lambda: chase(*_chain_workload(50)))
    # CI slack: the acceptance bound is 10% best-of-7 (standalone
    # run); under pytest-benchmark's machine load allow 30%.
    assert entry["stats_overhead_percent"] < 30.0, entry


def test_sampled_query_overhead_bound(benchmark):
    entry = measure_sampled_overhead(rows=4000, repeat=3)
    benchmark(lambda: chase(*_chain_workload(50)))
    # Sampling drops 9/10 traces, so the sampled path must not cost
    # more than the unsampled enabled path's CI bound.
    assert entry["sampled_overhead_percent"] < 30.0, entry
    assert entry["sampler_dropped"] > entry["sampler_kept"]


def test_observability_report(benchmark):
    chase_entry = measure_chase_overhead(rows=100, repeat=3)
    noop_entry = measure_noop_overhead(calls=50_000)
    benchmark(lambda: chase(*_chain_workload(50)))
    print_table(
        "Observability overhead (tracing off unless noted)",
        ["quantity", "value"],
        [
            ["bare chase (s)", chase_entry["bare_seconds"]],
            ["instrumented, disabled (s)", chase_entry["disabled_seconds"]],
            ["instrumented, enabled (s)", chase_entry["enabled_seconds"]],
            ["disabled overhead (%)",
             chase_entry["disabled_overhead_percent"]],
            ["enabled overhead (%)",
             chase_entry["enabled_overhead_percent"]],
            ["no-op plain (ns/call)", noop_entry["plain_ns_per_call"]],
            ["no-op disabled (ns/call)",
             noop_entry["disabled_ns_per_call"]],
        ],
    )


# ----------------------------------------------------------------------
# standalone run -> BENCH_observability.json
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Observability overhead → BENCH_observability.json"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="smaller workload, no JSON rewrite unless "
                             "--out is given")
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)

    rows = 100 if args.smoke else 400
    chase_entry = measure_chase_overhead(rows=rows)
    noop_entry = measure_noop_overhead(
        calls=50_000 if args.smoke else 500_000
    )
    # Always full-size rows: the overhead is a fixed per-query cost,
    # so a smaller query would inflate the percentage.
    stats_entry = measure_stats_overhead(
        rows=4000, repeat=3 if args.smoke else 7
    )
    sampled_entry = measure_sampled_overhead(
        rows=4000, repeat=3 if args.smoke else 7
    )
    print(
        f"chase rows={rows}: bare={chase_entry['bare_seconds']:.4f}s  "
        f"disabled={chase_entry['disabled_seconds']:.4f}s "
        f"({chase_entry['disabled_overhead_percent']:+.2f}%)  "
        f"enabled={chase_entry['enabled_seconds']:.4f}s "
        f"({chase_entry['enabled_overhead_percent']:+.2f}%)"
    )
    print(
        f"no-op: plain={noop_entry['plain_ns_per_call']}ns/call  "
        f"disabled wrapper={noop_entry['disabled_ns_per_call']}ns/call"
    )
    print(
        f"stats query path: disabled={stats_entry['disabled_seconds']:.4f}s  "
        f"enabled={stats_entry['enabled_seconds']:.4f}s "
        f"({stats_entry['stats_overhead_percent']:+.2f}%)  "
        f"extend={stats_entry['stats_extend_ns_per_row']}ns/row"
    )
    print(
        f"sampled query path (rate=0.1): "
        f"disabled={sampled_entry['disabled_seconds']:.4f}s  "
        f"sampled={sampled_entry['sampled_seconds']:.4f}s "
        f"({sampled_entry['sampled_overhead_percent']:+.2f}%)  "
        f"kept={sampled_entry['sampler_kept']} "
        f"dropped={sampled_entry['sampler_dropped']}"
    )

    out = args.out
    if out is None and not args.smoke:
        out = Path(__file__).resolve().parent.parent / (
            "BENCH_observability.json"
        )
    if out is not None:
        payload = {
            "benchmark": "observability",
            "contract": "disabled instrumented call < 5% over bare; "
                        "enabled stats/query path < 10% over disabled; "
                        "sampled (rate=0.1) query path < 10% over "
                        "disabled",
            "chase": chase_entry,
            "noop_call": noop_entry,
            "stats": stats_entry,
            "sampled": sampled_entry,
        }
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")

    # The 5% contract is judged on the full 400-row measurement; the
    # 100-row smoke run is noise-dominated (a ~7ms denominator), so it
    # gets the same relaxed bound the pytest check uses.
    limit = 15.0 if args.smoke else 5.0
    if chase_entry["disabled_overhead_percent"] >= limit:
        print(f"ERROR: disabled overhead exceeds the {limit:g}% contract")
        return 1
    stats_limit = 25.0 if args.smoke else 10.0
    if stats_entry["stats_overhead_percent"] >= stats_limit:
        print(f"ERROR: enabled stats/query-path overhead exceeds the "
              f"{stats_limit:g}% contract")
        return 1
    if sampled_entry["sampled_overhead_percent"] >= stats_limit:
        print(f"ERROR: sampled query-path overhead exceeds the "
              f"{stats_limit:g}% contract")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
