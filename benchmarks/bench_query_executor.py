"""Query-executor shootout: the vectorized columnar executor and the
compiled row-closure executor vs the reference tree-walking
interpreter (ISSUE: "Columnar batch storage and a vectorized compiled
executor").

The workload is the paper's central runtime pattern — *view
unfolding*: target queries over the Figure 2 object views rewritten to
the SQL tables and executed directly.  Each plan runs on all three
engines at 250 → 4000 persons, with the two compiled engines measured
both *cold* (first call, plan compilation included) and *warm*
(plan-cache hit).  The report asserts the engines agree row-for-row,
that the warm paths never recompile, and that on the 4k-row unfolding
the vectorized executor clears both acceptance bars: ≥10× over the
interpreter and ≥2× over the compiled row engine.  EXPLAIN ANALYZE
acceptance additionally pins that the vectorized per-node profile
reports exactly the same rows at every node as the row engine's.
"""

import gc
import time

import pytest

from repro.algebra import (
    Col,
    Scan,
    Select,
    clear_plan_cache,
    eq,
    evaluate,
    optimize,
    plan_cache_stats,
    project_names,
    vector_plan_cache_stats,
)
from repro.instances import Instance
from repro.operators.compose import unfold_scans
from repro.operators.transgen import transgen
from repro.workloads import paper

from conftest import print_table

SIZES = (250, 1000, 4000)
# compiled row engine vs interpreter (the historical bar)
ACCEPTANCE_SPEEDUP = 3.0
# vectorized engine vs interpreter / vs compiled row engine, at 4k
VEC_VS_INTERPRETED = 10.0
VEC_VS_COMPILED = 2.0

ENGINES = ("interpreted", "compiled", "vectorized")


def _scaled_sql(people: int) -> Instance:
    """Figure 2 SQL-side data scaled to ``people`` persons."""
    sql = Instance(paper.figure2_sql_schema())
    for i in range(people):
        kind = i % 3
        if kind == 0:
            sql.add("HR", Id=i, Name=f"P{i}")
        elif kind == 1:
            sql.add("HR", Id=i, Name=f"E{i}")
            sql.add("Empl", Id=i, Dept=f"D{i % 5}")
        else:
            sql.add("Client", Id=i, Name=f"C{i}", Score=600 + i % 200,
                    Addr=f"{i} Main St")
    return sql


def _unfolded_queries():
    """Target queries rewritten against the source tables."""
    views = transgen(paper.figure2_mapping())
    definitions = dict(views.query_view.rules)
    extent = unfold_scans(project_names(Scan("Person"), ["Id", "Name"]),
                          definitions)
    selective = optimize(unfold_scans(
        Select(project_names(Scan("Person"), ["Id", "Name"]),
               eq(Col("Id"), 7)),
        definitions,
    ))
    return [("unfold-extent", extent), ("unfold-selective", selective)]


def _best_of(fn, repeats: int = 3) -> float:
    """Best wall-clock milliseconds over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def _canon(rows):
    return sorted(tuple(sorted(r.items())) for r in rows)


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", list(ENGINES))
def test_unfolded_extent(benchmark, engine):
    _, extent = _unfolded_queries()[0]
    sql = _scaled_sql(1000)
    evaluate(extent, sql, engine=engine)  # warm the plan cache
    rows = benchmark(evaluate, extent, sql, engine=engine)
    assert len(rows) == 1000


@pytest.mark.parametrize("engine", list(ENGINES))
def test_unfolded_selective(benchmark, engine):
    _, selective = _unfolded_queries()[1]
    sql = _scaled_sql(1000)
    evaluate(selective, sql, engine=engine)
    rows = benchmark(evaluate, selective, sql, engine=engine)
    assert len(rows) == 1


# ----------------------------------------------------------------------
# harness report -> BENCH_query.json
# ----------------------------------------------------------------------
def test_query_executor_report(benchmark):
    from repro.observability import is_enabled, registry

    queries = _unfolded_queries()
    rows = []
    acceptance = {}
    for people in SIZES:
        sql = _scaled_sql(people)
        for label, plan in queries:
            interpreted_ms = _best_of(
                lambda: evaluate(plan, sql, engine="interpreted")
            )
            clear_plan_cache()
            # The cold lanes are single-shot: collect first so ambient
            # allocation debt from earlier lanes doesn't land a GC
            # pause inside the one timed call.
            gc.collect()
            compiles_before = (
                registry.counter("span.query.compile.calls").value
                if is_enabled() else None
            )
            cold_ms = _best_of(
                lambda: evaluate(plan, sql, engine="compiled"), repeats=1
            )
            warm_ms = _best_of(
                lambda: evaluate(plan, sql, engine="compiled")
            )
            gc.collect()
            vec_cold_ms = _best_of(
                lambda: evaluate(plan, sql, engine="vectorized"), repeats=1
            )
            vec_warm_ms = _best_of(
                lambda: evaluate(plan, sql, engine="vectorized")
            )
            if is_enabled():
                compiled_count = (
                    registry.counter("span.query.compile.calls").value
                    - compiles_before
                )
                # one row compilation + one vectorized lowering; the
                # warm runs hit their plan caches
                assert compiled_count == 2, (
                    f"warm caches recompiled: {compiled_count} compilations"
                )
            stats = plan_cache_stats()
            assert stats["hits"] >= 3, stats
            vec_stats = vector_plan_cache_stats()
            assert vec_stats["hits"] >= 3, vec_stats
            baseline = _canon(evaluate(plan, sql, engine="interpreted"))
            assert _canon(
                evaluate(plan, sql, engine="compiled")
            ) == baseline, f"compiled disagrees on {label} at {people}"
            assert _canon(
                evaluate(plan, sql, engine="vectorized")
            ) == baseline, f"vectorized disagrees on {label} at {people}"
            speedup = interpreted_ms / warm_ms if warm_ms else float("inf")
            vec_vs_interp = (
                interpreted_ms / vec_warm_ms if vec_warm_ms else float("inf")
            )
            vec_vs_compiled = (
                warm_ms / vec_warm_ms if vec_warm_ms else float("inf")
            )
            if label == "unfold-extent" and people == max(SIZES):
                acceptance = {
                    "compiled_vs_interpreted": speedup,
                    "vec_vs_interpreted": vec_vs_interp,
                    "vec_vs_compiled": vec_vs_compiled,
                }
            rows.append([
                people, label, f"{interpreted_ms:.2f} ms",
                f"{warm_ms:.2f} ms", f"{vec_cold_ms:.2f} ms",
                f"{vec_warm_ms:.2f} ms",
                f"{vec_vs_interp:.1f}x", f"{vec_vs_compiled:.1f}x",
            ])
    _, extent = queries[0]
    sql = _scaled_sql(SIZES[0])
    benchmark(evaluate, extent, sql, engine="vectorized")
    print_table(
        "Query executor: view unfolding, vectorized vs compiled vs "
        f"interpreted ({SIZES[0]}-{SIZES[-1]} persons)",
        ["persons", "query", "interpreted", "compiled warm",
         "vectorized cold", "vectorized warm", "vec/interp", "vec/compiled"],
        rows,
    )
    if acceptance and max(SIZES) >= 4000:
        assert acceptance["compiled_vs_interpreted"] >= ACCEPTANCE_SPEEDUP, (
            f"compiled/interpreted speedup "
            f"{acceptance['compiled_vs_interpreted']:.1f}x below the "
            f"{ACCEPTANCE_SPEEDUP}x acceptance bar"
        )
        assert acceptance["vec_vs_interpreted"] >= VEC_VS_INTERPRETED, (
            f"vectorized/interpreted speedup "
            f"{acceptance['vec_vs_interpreted']:.1f}x below the "
            f"{VEC_VS_INTERPRETED}x acceptance bar"
        )
        assert acceptance["vec_vs_compiled"] >= VEC_VS_COMPILED, (
            f"vectorized/compiled speedup "
            f"{acceptance['vec_vs_compiled']:.1f}x below the "
            f"{VEC_VS_COMPILED}x acceptance bar"
        )
    _check_explain_analyze()


def _check_explain_analyze() -> None:
    """EXPLAIN ANALYZE acceptance: on the view-unfolding extent query
    at the largest size the per-node profile reports the result rows
    at the root, a total that agrees (within tolerance) with the
    measured ``query.execute`` span, and — for the vectorized engine —
    exactly the same per-node row counts as the row engine's profile."""
    from repro.algebra import explain_analyze
    from repro.observability import is_enabled, tracer

    _, extent = _unfolded_queries()[0]
    people = max(SIZES)
    sql = _scaled_sql(people)
    result = explain_analyze(extent, sql, engine="compiled")
    profile = result.profile
    assert profile.result_rows == len(result.rows) == people
    assert profile.rows_out(profile.root_id) == people
    # charge-once self times telescope exactly to the root inclusive
    assert abs(sum(profile.self_time_ms())
               - profile.time_ms(profile.root_id)) < 1e-6
    vec = explain_analyze(extent, sql, engine="vectorized")
    assert _canon(vec.rows) == _canon(result.rows)
    assert vec.profile.result_rows == profile.result_rows
    assert len(vec.plan.nodes) == len(result.plan.nodes)
    for row_node, vec_node in zip(result.plan.nodes, vec.plan.nodes):
        assert row_node.node_id == vec_node.node_id
        assert vec.profile.rows_out(vec_node.node_id) == profile.rows_out(
            row_node.node_id
        ), (
            f"node #{row_node.node_id} ({row_node.label}): vectorized "
            f"rows {vec.profile.rows_out(vec_node.node_id)} != row-engine "
            f"rows {profile.rows_out(row_node.node_id)}"
        )
        assert vec.profile.calls(vec_node.node_id) == profile.calls(
            row_node.node_id
        )
    # estimate↔actual telemetry: every node carries a cardinality
    # estimate, all three engine views of the tree agree
    # estimate-for-estimate, and the render pairs est= with div=×.
    interp = explain_analyze(extent, sql, engine="interpreted")
    for view in (result, vec, interp):
        assert view.estimates is not None
        assert all(est is not None for est in view.estimates)
        assert view.worst is not None
        text = view.render()
        assert "est=" in text and "div=×" in text
        assert "worst divergence:" in text
    assert vec.estimates == result.estimates == interp.estimates
    if is_enabled():
        execute_spans = [
            s for s in tracer.iter_spans()
            if s.name == "query.execute" and s.wall_ms is not None
        ]
        assert execute_spans, "explain_analyze emitted no query.execute span"
        wall = execute_spans[-1].wall_ms
        assert vec.profile.total_ms <= wall + 0.1, (
            f"profile total {vec.profile.total_ms:.3f}ms exceeds the "
            f"query.execute span {wall:.3f}ms"
        )


# ----------------------------------------------------------------------
# standalone run -> BENCH_query.json (see benchmarks/harness.py)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    import sys

    from harness import run_standalone

    if argv is None:
        argv = sys.argv[1:]
    if "--smoke" in argv:
        # CI sanity: smallest size only, parity asserts still run.
        global SIZES
        SIZES = (250,)
    return run_standalone("query", [test_query_executor_report], argv)


if __name__ == "__main__":
    raise SystemExit(main())
