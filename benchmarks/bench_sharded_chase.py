"""Shard-parallel chase benchmark → ``BENCH_shard.json``.

Measures the shard-parallel engine (:mod:`repro.logic.sharding`)
against the sequential semi-naive chase on a hash-partitionable
workload: a deep copy chain whose dependencies are listed in reverse
(worst-case frontier ordering), keyed on an attribute every tgd
preserves — the shape the co-location planner accepts.

Reported per source size:

* sequential wall seconds (``shards=1`` — the unchanged engine);
* sharded wall seconds and speedup at 2 and 4 shards;
* rows produced and equivalence of the results.

The ≥2× speedup floor at 4 shards (full sizes only) is the PR's perf
contract; the regression watchdog enforces it via ``harness.floor``.
On a single-core container the speedup comes from the sharded fast
lane's lower per-row cost (fused scan/probe/fire loop, batched budget
accounting), not hardware parallelism — on multi-core hosts the shard
workers additionally overlap.

Run standalone (``python benchmarks/bench_sharded_chase.py``) to emit
``BENCH_shard.json``; ``--smoke`` runs a small size and skips the
floor (smoke sizes are coordination-dominated).
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

from repro.instances import Instance
from repro.logic import chase, parse_tgd
from repro.runtime.incremental import set_equal_modulo_nulls

from conftest import print_table

_SMOKE = False

#: Full-run source sizes; the floor applies to the largest.
_SIZES = (100_000, 300_000)
_SMOKE_SIZE = 2_000
_STAGES = 4
_SHARD_COUNTS = (2, 4)
#: The PR's perf contract: ≥2× at 4 shards on 100k+ row chains.
MIN_SPEEDUP_AT_4 = 2.0


def _chain_workload(rows: int, stages: int = _STAGES):
    """Copy chain R0 → … → R{stages}, keyed on ``a`` in every atom
    (co-location-feasible), dependencies reversed so every stage costs
    a frontier round."""
    db = Instance()
    db.insert_all("R0", [{"a": i, "b": i % 97} for i in range(rows)])
    deps = [
        parse_tgd(f"R{k}(a=x, b=y) -> R{k + 1}(a=x, b=y)")
        for k in range(stages)
    ]
    deps.reverse()
    return db, deps


def _run(rows: int, shards: int):
    db, deps = _chain_workload(rows)
    start = time.perf_counter()
    result = chase(db, deps, max_steps=100_000_000, shards=shards)
    return time.perf_counter() - start, result


def _floor(benchmark, key: str, value: float) -> None:
    harness = getattr(benchmark, "_harness", None)
    if harness is not None and hasattr(harness, "floor"):
        harness.floor(key, value)


# ----------------------------------------------------------------------
# pytest-benchmark suite
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [1, 4])
def test_sharded_chain_small(benchmark, shards):
    db, deps = _chain_workload(2_000)
    result = benchmark(chase, db, deps, max_steps=100_000_000,
                       shards=shards)
    assert result.instance.total_rows() == 2_000 * (_STAGES + 1)


def test_sharded_matches_sequential(benchmark):
    _, sequential = _run(2_000, shards=1)
    seconds, sharded = _run(2_000, shards=4)
    benchmark(lambda: seconds)
    assert set_equal_modulo_nulls(sequential.instance, sharded.instance)
    assert sequential.steps == sharded.steps


# ----------------------------------------------------------------------
# report → BENCH_shard.json
# ----------------------------------------------------------------------
def test_shard_report(benchmark):
    sizes = (_SMOKE_SIZE,) if _SMOKE else _SIZES
    table = []
    produced_table = []
    for rows in sizes:
        seq_seconds, seq_result = _run(rows, shards=1)
        produced = seq_result.instance.total_rows()
        produced_table.append([f"chain({rows})", produced])
        row = [f"chain({rows})", f"{seq_seconds:.3f} s"]
        for shards in _SHARD_COUNTS:
            shard_seconds, shard_result = _run(rows, shards)
            assert shard_result.instance.total_rows() == produced, (
                f"sharded({shards}) produced "
                f"{shard_result.instance.total_rows()} rows, "
                f"sequential {produced}"
            )
            speedup = seq_seconds / max(shard_seconds, 1e-9)
            row.append(f"{shard_seconds:.3f} s")
            row.append(f"{speedup:.2f}x")
            if shards == max(_SHARD_COUNTS) and rows == max(sizes):
                assert _SMOKE or speedup >= MIN_SPEEDUP_AT_4, (
                    f"chain({rows}): only {speedup:.2f}x at {shards} "
                    f"shards (bar {MIN_SPEEDUP_AT_4}x)"
                )
                _floor(benchmark, f"chain({rows})/speedup@4",
                       MIN_SPEEDUP_AT_4)
        table.append(row)
    # Equivalence spot-check at the smallest size (cheap; the big
    # sizes are covered by the row-count assertion above and the
    # differential test suite).
    _, sequential = _run(sizes[0], shards=1)
    _, sharded = _run(sizes[0], shards=4)
    equivalent = set_equal_modulo_nulls(sequential.instance,
                                        sharded.instance)
    assert equivalent
    benchmark(lambda: None)
    print_table(
        "Shard-parallel chase vs sequential (copy chain, reversed deps)",
        ["workload", "sequential",
         "2 shards", "speedup@2", "4 shards", "speedup@4"],
        table,
    )
    print_table(
        "Rows produced (sharded row counts asserted equal)",
        ["workload", "rows produced"],
        produced_table,
    )
    print_table(
        "Equivalence",
        ["check", "result"],
        [["sharded ≡ sequential (modulo nulls)", str(equivalent)]],
    )


# ----------------------------------------------------------------------
def main(argv=None) -> int:
    from harness import run_standalone

    global _SMOKE
    args = list(sys.argv[1:] if argv is None else argv)
    _SMOKE = "--smoke" in args
    return run_standalone("shard", [test_shard_report], args)


if __name__ == "__main__":
    raise SystemExit(main())
