"""F1 — Figure 1: one engine, many tools.

The paper's architecture claim is qualitative: a single model
management engine should serve ETL, wrapper generation, query
mediation, message mapping and report writing "with relatively modest
customization".  This benchmark drives all five tools through one
engine instance on shared mappings, measuring the end-to-end cost of
each tool's core operation on identical data — the quantitative
footprint of the reuse claim.
"""

from repro import ModelManagementEngine
from repro.algebra import Scan, project_names
from repro.instances import Instance
from repro.logic import parse_tgd
from repro.mappings import Mapping
from repro.metamodel import INT, STRING, SchemaBuilder
from repro.tools import (
    EtlPipeline,
    QueryMediator,
    ReportSpec,
    ReportWriter,
    WrapperGenerator,
)
from repro.workloads import paper

from conftest import print_table

ENGINE = ModelManagementEngine()


def _etl_setup():
    source = (
        SchemaBuilder("Src1", metamodel="relational")
        .entity("Raw", key=["id"]).attribute("id", INT)
        .attribute("v", INT).build()
    )
    target = (
        SchemaBuilder("Wh1", metamodel="relational")
        .entity("Fact", key=["id"]).attribute("id", INT)
        .attribute("v", INT).build()
    )
    mapping = Mapping(source, target,
                      [parse_tgd("Raw(id=i, v=v) -> Fact(id=i, v=v)")])
    data = Instance(source)
    for i in range(200):
        data.add("Raw", id=i, v=i * 3)
    return mapping, data


def test_tool_etl(benchmark):
    mapping, data = _etl_setup()
    pipeline = EtlPipeline().add_step(mapping)

    result, _ = benchmark(pipeline.run, data)
    assert result.cardinality("Fact") == 200


def test_tool_wrapper(benchmark):
    def run():
        wrapper, _ = WrapperGenerator().generate_from_mapping(
            paper.figure2_mapping(), paper.figure2_sql_instance()
        )
        return wrapper.all("Person")

    rows = benchmark(run)
    assert len(rows) == 5


def test_tool_mediator(benchmark):
    mapping, data = _etl_setup()
    mediator = QueryMediator(mapping.target)
    mediator.add_source("s1", mapping, data)
    query = project_names(Scan("Fact"), ["id", "v"])

    rows = benchmark(mediator.answer, query)
    assert len(rows) == 200


def test_tool_report(benchmark):
    writer = ReportWriter(paper.figure2_mapping(), paper.figure2_sql_instance())
    spec = ReportSpec(entity="Person", columns=["Id", "Name"], typed=True,
                      order_by=["Id"])

    text = benchmark(writer.render_text, spec)
    assert "(5 rows)" in text


def test_architecture_summary(benchmark):
    """One full engine pass: match → interpret → transgen → exchange →
    query — the Figure 1 data path, end to end."""

    def full_pass():
        correspondences = paper.figure4_correspondences()
        mapping = ENGINE.interpret(correspondences)
        result = ENGINE.exchange(mapping, paper.figure4_source_instance())
        return result.cardinality("Staff")

    count = benchmark(full_pass)
    assert count == 2
    print_table(
        "F1: tools sharing one engine (see per-test timings above)",
        ["tool", "engine facilities used"],
        [
            ["ETL pipeline", "TransGen(exchange) + validation"],
            ["wrapper generator", "TransGen(views) + updates + errors"],
            ["query mediator", "QueryProcessor per source"],
            ["report writer", "QueryProcessor(view unfolding)"],
            ["message mapper", "nested flatten + exchange + nest"],
        ],
    )


# ----------------------------------------------------------------------
# standalone run -> BENCH_fig1_architecture.json (see benchmarks/harness.py)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    from harness import run_standalone

    return run_standalone("fig1_architecture", [test_tool_report], argv)


if __name__ == "__main__":
    raise SystemExit(main())
