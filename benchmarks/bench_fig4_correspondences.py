"""F4 — Figure 4: interpreting correspondences as constraints.

The figure's point: between snowflake schemas with a root
correspondence, correspondences have an *unambiguous* interpretation as
projection-join equalities.  The benchmark reproduces the figure's
three constraints verbatim, measures interpretation as snowflakes
deepen, and contrasts it with the Clio-style tgd interpretation.
"""

import pytest

from repro.mappings import CorrespondenceSet, interpret_as_tgds, interpret_snowflake
from repro.workloads import paper, synthetic

from conftest import print_table


def test_figure4_interpretation(benchmark):
    correspondences = paper.figure4_correspondences()

    mapping = benchmark(interpret_snowflake, correspondences)
    # Figure 4 lists three constraints; we add the root-key identity.
    assert len(mapping.equalities) == 4
    city = next(c for c in mapping.equalities if "City" in c.name)
    assert city.source_expr.relations() == {"Empl", "Addr"}


def test_figure4_constraints_hold(benchmark):
    from repro.instances import Instance

    mapping = interpret_snowflake(paper.figure4_correspondences())
    source = paper.figure4_source_instance()
    target = Instance(paper.figure4_target_schema())
    target.insert_all("Staff", [
        {"SID": 1, "Name": "Ann", "BirthDate": None, "City": "Rome"},
        {"SID": 2, "Name": "Bob", "BirthDate": None, "City": "Oslo"},
    ])

    holds = benchmark(mapping.holds_for, source, target)
    assert holds


def test_tgd_interpretation(benchmark):
    correspondences = paper.figure4_correspondences()

    mapping = benchmark(interpret_as_tgds, correspondences)
    assert len(mapping.tgds) == 1


@pytest.mark.parametrize("depth", [1, 2, 3])
def test_snowflake_depth_scaling(benchmark, depth):
    source = synthetic.snowflake_schema("Sf", depth=depth, branching=2,
                                        attributes_per_entity=2, seed=1)
    target = synthetic.snowflake_schema("Tf", depth=0, branching=0,
                                        attributes_per_entity=2, seed=2)
    correspondences = CorrespondenceSet(source, target)
    correspondences.add_pair("fact", "fact")
    # Map one attribute from each source entity onto a target attribute.
    target_attrs = [
        a.name for a in target.entity("fact").attributes
        if a.name != "fact_id"
    ]
    for index, entity in enumerate(source.entities.values()):
        non_key = [a for a in entity.attributes
                   if a.name != f"{entity.name}_id"
                   and not a.name.endswith("_ref")]
        if non_key and target_attrs:
            correspondences.add_pair(
                f"{entity.name}.{non_key[0].name}",
                f"fact.{target_attrs[index % len(target_attrs)]}",
            )

    mapping = benchmark(interpret_snowflake, correspondences,
                        "fact", "fact")
    assert mapping.equalities


def test_figure4_report(benchmark):
    mapping = benchmark(interpret_snowflake, paper.figure4_correspondences())
    rows = []
    for constraint in mapping.equalities:
        rows.append([
            constraint.name,
            repr(constraint.source_expr),
            repr(constraint.target_expr),
        ])
    print_table(
        "F4: correspondences interpreted as constraints (paper's 1–3 "
        "plus the root-key identity)",
        ["constraint", "source side", "target side"],
        rows,
    )


# ----------------------------------------------------------------------
# standalone run -> BENCH_fig4_correspondences.json (see benchmarks/harness.py)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    from harness import run_standalone

    return run_standalone("fig4_correspondences", [test_figure4_report], argv)


if __name__ == "__main__":
    raise SystemExit(main())
