"""E3 — §4 / Fagin et al. [38][39]: chase-based exchange, universal
solutions, cores, certain answers.

Measures, as the source grows:

* chase time and universal-solution size;
* semi-naive (delta-driven) engine vs the naive Gauss–Seidel baseline;
* how many labeled nulls a mapping with existential density e invents;
* core computation — how much smaller the core is than the raw chase
  result when redundant derivations exist;
* certain-answer evaluation over the universal solution.

Expected shape: chase time grows with source size and with existential
density; the semi-naive engine's advantage grows with the number of
dependency "stages" (its per-round cost tracks the delta, the naive
engine's the whole instance); the core shrinks the redundant workload's
output but never the irredundant one's.

Run standalone (``python benchmarks/bench_chase_scaling.py``) to emit
``BENCH_chase.json`` — rows/sec, rounds and speedup at three instance
sizes — so successive PRs leave a perf trajectory.  ``--smoke`` runs
only the smallest size (the ``make bench-smoke`` target).
"""

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

from repro.instances import Instance, InstanceGenerator
from repro.logic import (
    certain_answers,
    chase,
    core_of,
    naive_chase,
    parse_query,
    parse_tgd,
)
from repro.logic.homomorphism import are_hom_equivalent
from repro.workloads import synthetic

from conftest import print_table


def _exchange_workload(rows: int, existential_fraction: float, seed: int = 5):
    source, target, tgds = synthetic.exchange_tgds(
        relations=3, existential_fraction=existential_fraction, seed=seed
    )
    db = InstanceGenerator(source, seed=seed).generate(rows)
    return db, tgds


def _chain_workload(rows: int, stages: int = 8):
    """A copy chain R0 → R1 → … with the dependencies listed in
    *reverse* order — the naive engine needs ``stages`` full sweeps
    (each re-enumerating every trigger of every tgd), the semi-naive
    engine does delta-sized work per round."""
    db = Instance()
    for i in range(rows):
        db.add("R0", a=i, b=i % 7)
    tgds = [
        parse_tgd(f"R{k}(a=x, b=y) -> R{k + 1}(a=x, b=y)")
        for k in range(stages)
    ][::-1]
    return db, tgds


# ----------------------------------------------------------------------
# pytest-benchmark suite
# ----------------------------------------------------------------------
@pytest.mark.parametrize("rows", [50, 100, 200])
def test_chase_time_scaling(benchmark, rows):
    db, tgds = _exchange_workload(rows, existential_fraction=0.5)

    result = benchmark(chase, db, tgds)
    assert result.instance.cardinality("T0") == rows


@pytest.mark.parametrize("density", [0.0, 0.5, 1.0])
def test_existential_density(benchmark, density):
    db, tgds = _exchange_workload(100, existential_fraction=density, seed=9)

    result = benchmark(chase, db, tgds)
    if density == 0.0:
        assert result.nulls_created == 0


def test_seminaive_vs_naive_chain(benchmark):
    db, tgds = _chain_workload(200)

    result = benchmark(chase, db, tgds)
    assert result.instance.cardinality("R8") == 200
    assert are_hom_equivalent(
        result.instance, naive_chase(db, tgds).instance
    )


def _redundant_workload(rows: int):
    """Two tgds derive overlapping target rows: one with a null, one
    with a constant — cores collapse the null rows."""
    db = Instance()
    for i in range(rows):
        db.add("S", a=i)
    tgds = [
        parse_tgd("S(a=x) -> T(a=x, b=y)"),
        parse_tgd("S(a=x) -> T(a=x, b=0)"),
    ]
    return db, tgds


@pytest.mark.parametrize("rows", [10, 20, 40])
def test_core_computation(benchmark, rows):
    db, tgds = _redundant_workload(rows)
    chased = chase(db, tgds).instance
    target = Instance()
    target.relations["T"] = chased.relations["T"]

    core = benchmark(core_of, target)
    assert core.cardinality("T") == rows  # nulls collapsed away
    assert not core.nulls()


def test_certain_answers(benchmark):
    db, tgds = _exchange_workload(100, existential_fraction=0.5)
    universal = chase(db, tgds).instance
    query = parse_query("q(k) :- T0(T0_k=k, T0_a0=a)")

    answers = benchmark(certain_answers, query, universal)
    assert len(answers) == 100


def test_chase_report(benchmark):
    rows_table = []
    for rows in (50, 100, 200):
        for density in (0.0, 0.5, 1.0):
            db, tgds = _exchange_workload(rows, density, seed=9)
            result = chase(db, tgds)
            rows_table.append([
                rows, density, result.steps,
                result.instance.total_rows() - db.total_rows(),
                result.nulls_created,
            ])
    db, tgds = _redundant_workload(20)
    chased = chase(db, tgds).instance
    target = Instance()
    target.relations["T"] = chased.relations["T"]
    core = core_of(target)
    benchmark(chase, db, tgds)
    print_table(
        "E3: chase-based exchange (universal solutions)",
        ["source rows", "∃-density", "chase steps", "target rows",
         "labeled nulls"],
        rows_table,
    )
    print_table(
        "E3b: core of a redundant universal solution",
        ["quantity", "value"],
        [
            ["chase output rows", target.cardinality("T")],
            ["core rows", core.cardinality("T")],
            ["nulls before/after",
             f"{len(target.nulls())} → {len(core.nulls())}"],
        ],
    )


# ----------------------------------------------------------------------
# standalone trajectory run → BENCH_chase.json
# ----------------------------------------------------------------------
_SIZES = (250, 1000, 4000)


def _time(engine, db, tgds):
    start = time.perf_counter()
    result = engine(db, tgds)
    return time.perf_counter() - start, result


def _measure(rows: int, check_equivalence: bool) -> dict:
    # The gap between engines scales with the number of stages (naive
    # sweeps cost O(stages² · rows), delta rounds O(stages · rows)):
    # 12 stages is the depth of the composition-chain workloads.
    db, tgds = _chain_workload(rows, stages=12)
    naive_seconds, naive_result = _time(naive_chase, db, tgds)
    semi_seconds, semi_result = _time(chase, db, tgds)
    entry = {
        "workload": "chain(stages=12)",
        "source_rows": rows,
        "rows_produced": semi_result.steps,
        "rounds": semi_result.stats.rounds,
        "seminaive_seconds": round(semi_seconds, 4),
        "seminaive_rows_per_sec": round(semi_result.steps / semi_seconds)
        if semi_seconds
        else None,
        "naive_seconds": round(naive_seconds, 4),
        "naive_rows_per_sec": round(naive_result.steps / naive_seconds)
        if naive_seconds
        else None,
        "speedup": round(naive_seconds / semi_seconds, 2)
        if semi_seconds
        else None,
        "delta_sizes": semi_result.stats.delta_sizes,
    }
    if check_equivalence:
        entry["hom_equivalent"] = are_hom_equivalent(
            semi_result.instance, naive_result.instance
        )
    return entry


def _measure_exchange(rows: int, check_equivalence: bool) -> dict:
    db, tgds = _exchange_workload(rows, existential_fraction=0.5, seed=9)
    naive_seconds, naive_result = _time(naive_chase, db, tgds)
    semi_seconds, semi_result = _time(chase, db, tgds)
    entry = {
        "workload": "exchange(∃=0.5)",
        "source_rows": rows,
        "rows_produced": semi_result.steps,
        "rounds": semi_result.stats.rounds,
        "seminaive_seconds": round(semi_seconds, 4),
        "naive_seconds": round(naive_seconds, 4),
        "speedup": round(naive_seconds / semi_seconds, 2)
        if semi_seconds
        else None,
    }
    if check_equivalence:
        entry["hom_equivalent"] = are_hom_equivalent(
            semi_result.instance, naive_result.instance
        )
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Chase scaling trajectory → BENCH_chase.json"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run only the smallest size (CI sanity, no JSON rewrite "
             "unless --out is given)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="output path (default: BENCH_chase.json next to the repo "
             "root on full runs)",
    )
    args = parser.parse_args(argv)

    sizes = _SIZES[:1] if args.smoke else _SIZES
    results = []
    for index, rows in enumerate(sizes):
        entry = _measure(rows, check_equivalence=(index == 0))
        results.append(entry)
        print(
            f"chain  rows={rows:>5}  semi={entry['seminaive_seconds']:.4f}s"
            f"  naive={entry['naive_seconds']:.4f}s"
            f"  speedup={entry['speedup']}×"
        )
    for index, rows in enumerate(sizes):
        entry = _measure_exchange(rows, check_equivalence=(index == 0))
        results.append(entry)
        print(
            f"exchange rows={rows:>4}  semi={entry['seminaive_seconds']:.4f}s"
            f"  naive={entry['naive_seconds']:.4f}s"
            f"  speedup={entry['speedup']}×"
        )

    out = args.out
    if out is None and not args.smoke:
        out = Path(__file__).resolve().parent.parent / "BENCH_chase.json"
    if out is not None:
        payload = {
            "benchmark": "chase_scaling",
            "engine": "semi-naive delta-driven chase",
            "baseline": "naive Gauss–Seidel chase (seed)",
            "results": results,
        }
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")

    failures = [
        r for r in results if r.get("hom_equivalent") is False
    ]
    if failures:
        print("ERROR: semi-naive result not hom-equivalent to naive")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
