"""E3 — §4 / Fagin et al. [38][39]: chase-based exchange, universal
solutions, cores, certain answers.

Measures, as the source grows:

* chase time and universal-solution size;
* how many labeled nulls a mapping with existential density e invents;
* core computation — how much smaller the core is than the raw chase
  result when redundant derivations exist;
* certain-answer evaluation over the universal solution.

Expected shape: chase time grows with source size and with existential
density; the core shrinks the redundant workload's output but never
the irredundant one's.
"""

import pytest

from repro.instances import Instance, InstanceGenerator
from repro.logic import certain_answers, chase, core_of, parse_query, parse_tgd
from repro.mappings import Mapping
from repro.metamodel import INT, SchemaBuilder
from repro.workloads import synthetic

from conftest import print_table


def _exchange_workload(rows: int, existential_fraction: float, seed: int = 5):
    source, target, tgds = synthetic.exchange_tgds(
        relations=3, existential_fraction=existential_fraction, seed=seed
    )
    db = InstanceGenerator(source, seed=seed).generate(rows)
    return db, tgds


@pytest.mark.parametrize("rows", [50, 100, 200])
def test_chase_time_scaling(benchmark, rows):
    db, tgds = _exchange_workload(rows, existential_fraction=0.5)

    result = benchmark(chase, db, tgds)
    assert result.instance.cardinality("T0") == rows


@pytest.mark.parametrize("density", [0.0, 0.5, 1.0])
def test_existential_density(benchmark, density):
    db, tgds = _exchange_workload(100, existential_fraction=density, seed=9)

    result = benchmark(chase, db, tgds)
    if density == 0.0:
        assert result.nulls_created == 0


def _redundant_workload(rows: int):
    """Two tgds derive overlapping target rows: one with a null, one
    with a constant — cores collapse the null rows."""
    db = Instance()
    for i in range(rows):
        db.add("S", a=i)
    tgds = [
        parse_tgd("S(a=x) -> T(a=x, b=y)"),
        parse_tgd("S(a=x) -> T(a=x, b=0)"),
    ]
    return db, tgds


@pytest.mark.parametrize("rows", [10, 20, 40])
def test_core_computation(benchmark, rows):
    db, tgds = _redundant_workload(rows)
    chased = chase(db, tgds).instance
    target = Instance()
    target.relations["T"] = chased.relations["T"]

    core = benchmark(core_of, target)
    assert core.cardinality("T") == rows  # nulls collapsed away
    assert not core.nulls()


def test_certain_answers(benchmark):
    db, tgds = _exchange_workload(100, existential_fraction=0.5)
    universal = chase(db, tgds).instance
    query = parse_query("q(k) :- T0(T0_k=k, T0_a0=a)")

    answers = benchmark(certain_answers, query, universal)
    assert len(answers) == 100


def test_chase_report(benchmark):
    rows_table = []
    for rows in (50, 100, 200):
        for density in (0.0, 0.5, 1.0):
            db, tgds = _exchange_workload(rows, density, seed=9)
            result = chase(db, tgds)
            rows_table.append([
                rows, density, result.steps,
                result.instance.total_rows() - db.total_rows(),
                result.nulls_created,
            ])
    db, tgds = _redundant_workload(20)
    chased = chase(db, tgds).instance
    target = Instance()
    target.relations["T"] = chased.relations["T"]
    core = core_of(target)
    benchmark(chase, db, tgds)
    print_table(
        "E3: chase-based exchange (universal solutions)",
        ["source rows", "∃-density", "chase steps", "target rows",
         "labeled nulls"],
        rows_table,
    )
    print_table(
        "E3b: core of a redundant universal solution",
        ["quantity", "value"],
        [
            ["chase output rows", target.cardinality("T")],
            ["core rows", core.cardinality("T")],
            ["nulls before/after",
             f"{len(target.nulls())} → {len(core.nulls())}"],
        ],
    )
