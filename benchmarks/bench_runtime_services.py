"""E5 — §5: the mapping runtime's services.

The paper's revised vision adds the runtime as a first-class component;
this experiment quantifies its design choices:

* **incremental vs recompute** maintenance of a materialized target
  (the §5 "Notifications" service): expected shape — incremental cost
  tracks the delta size, recompute cost tracks the database size, so
  the gap widens as the base grows;
* **update propagation** through update views as target size grows;
* **provenance** lookups and full routes;
* **view unfolding vs exchange-then-query** for answering one query;
* **peer chains**: hop-by-hop propagation vs composing the chain first.
"""

import pytest

from repro.algebra import Col, Scan, Select, eq, project_names
from repro.instances import Instance
from repro.logic import parse_tgd
from repro.mappings import Mapping
from repro.metamodel import INT, STRING, SchemaBuilder
from repro.runtime import (
    MaterializedTarget,
    PeerNetwork,
    QueryProcessor,
    UpdatePropagator,
    UpdateSet,
    exchange,
    lineage,
)
from repro.workloads import paper

from conftest import print_table


def _copy_mapping(tag: str):
    source = (
        SchemaBuilder(f"S{tag}").entity("Ord", key=["oid"])
        .attribute("oid", INT).attribute("cust", INT).build()
    )
    target = (
        SchemaBuilder(f"T{tag}").entity("Wh", key=["oid"])
        .attribute("oid", INT).attribute("cust", INT).build()
    )
    return Mapping(source, target,
                   [parse_tgd("Ord(oid=o, cust=c) -> Wh(oid=o, cust=c)")])


def _base(rows: int) -> Instance:
    db = Instance()
    for i in range(rows):
        db.add("Ord", oid=i, cust=i % 17)
    return db


@pytest.mark.parametrize("base_rows", [100, 400])
def test_incremental_maintenance(benchmark, base_rows):
    mapping = _copy_mapping(f"i{base_rows}")
    materialized = MaterializedTarget(mapping, _base(base_rows))
    counter = iter(range(10**6))

    def one_insert():
        i = base_rows + next(counter)
        return materialized.on_source_change(
            UpdateSet().insert("Ord", oid=i, cust=1)
        )

    delta = benchmark(one_insert)
    assert not delta.recomputed


@pytest.mark.parametrize("base_rows", [100, 400])
def test_incremental_mixed_maintenance(benchmark, base_rows):
    """Mixed insert+delete batches are maintained incrementally too
    (the counting/DRed path); this lane used to fall back to full
    recomputation."""
    mapping = _copy_mapping(f"m{base_rows}")
    materialized = MaterializedTarget(mapping, _base(base_rows))
    counter = iter(range(10**6))

    def one_mixed_change():
        i = next(counter)
        return materialized.on_source_change(
            UpdateSet()
            .insert("Ord", oid=base_rows + 10**5 + i, cust=1)
            .delete("Ord", oid=i % base_rows)
        )

    delta = benchmark(one_mixed_change)
    assert not delta.recomputed


@pytest.mark.parametrize("base_rows", [100, 400])
def test_recompute_maintenance(benchmark, base_rows):
    mapping = _copy_mapping(f"r{base_rows}")
    materialized = MaterializedTarget(mapping, _base(base_rows),
                                      incremental=False)
    counter = iter(range(10**6))

    def one_mixed_change():
        i = next(counter)
        return materialized.on_source_change(
            UpdateSet()
            .insert("Ord", oid=base_rows + 10**5 + i, cust=1)
            .delete("Ord", oid=i % base_rows)
        )

    delta = benchmark(one_mixed_change)
    assert delta.recomputed


def test_update_propagation(benchmark):
    mapping = paper.figure2_mapping()
    propagator = UpdatePropagator(mapping)
    er = Instance(mapping.target)
    for i in range(60):
        er.insert_object("Employee", Id=i, Name=f"E{i}", Dept="D")
    counter = iter(range(10**6))

    def propagate_one():
        i = 10_000 + next(counter)
        update = UpdateSet().insert_object("Employee", Id=i, Name="N",
                                           Dept="D")
        return propagator.propagate(er, update)

    source_update, _, _ = benchmark(propagate_one)
    assert source_update.size() >= 2  # HR and Empl both gain a row


def test_provenance_lookup(benchmark):
    source = Instance()
    for i in range(100):
        source.add("Empl", EID=i, AID=i % 10)
        if i < 10:
            source.add("Addr", AID=i, City=f"C{i}")
    tgd = parse_tgd(
        "Empl(EID=e, AID=a) & Addr(AID=a, City=c) -> Staff(SID=e, City=c)"
    )

    entries = benchmark(lineage, {"SID": 42, "City": "C2"}, "Staff",
                        source, [tgd])
    assert len(entries) == 1


def test_view_unfolding_vs_exchange(benchmark):
    """Answering one selective query: unfolding pushes the selection to
    the source; exchange materializes everything first."""
    mapping = paper.figure2_mapping()
    db = paper.figure2_sql_instance()
    processor = QueryProcessor(mapping, db)
    query = Select(project_names(Scan("Person"), ["Id", "Name"]),
                   eq(Col("Id"), 2))

    rows = benchmark(processor.answer_algebra, query)
    assert len(rows) == 1


def test_peer_chain_propagation(benchmark):
    network = _chain_network(4, rows=50)

    result = benchmark(network.propagate, "p0", "p3")
    assert result.cardinality("R3") == 50


def test_peer_chain_collapsed(benchmark):
    network = _chain_network(4, rows=50)
    collapsed = network.collapse_chain("p0", "p3")

    result = benchmark(exchange, collapsed, network.peers["p0"].data)
    assert result.cardinality("R3") == 50


def _chain_network(peers: int, rows: int) -> PeerNetwork:
    network = PeerNetwork()
    schemas = []
    for i in range(peers):
        schemas.append(
            SchemaBuilder(f"P{i}").entity(f"R{i}", key=["k"])
            .attribute("k", INT).attribute("v", INT).build()
        )
        data = None
        if i == 0:
            data = Instance()
            for r in range(rows):
                data.add("R0", k=r, v=r * 2)
        network.add_peer(f"p{i}", schemas[i], data)
    for i in range(peers - 1):
        network.add_mapping(
            f"p{i}", f"p{i+1}",
            Mapping(schemas[i], schemas[i + 1], [
                parse_tgd(f"R{i}(k=x, v=y) -> R{i+1}(k=x, v=y)")
            ]),
        )
    return network


def test_runtime_report(benchmark):
    import time

    rows = []
    for base_rows in (100, 400):
        mapping = _copy_mapping(f"rep{base_rows}")
        incremental = MaterializedTarget(mapping, _base(base_rows))
        start = time.perf_counter()
        for i in range(10):
            incremental.on_source_change(
                UpdateSet().insert("Ord", oid=10**6 + i, cust=1)
            )
        incremental_time = (time.perf_counter() - start) / 10
        recompute = MaterializedTarget(mapping, _base(base_rows),
                                       incremental=False)
        start = time.perf_counter()
        for i in range(5):
            recompute.on_source_change(
                UpdateSet().insert("Ord", oid=10**6 + i, cust=1)
                .delete("Ord", oid=i)
            )
        recompute_time = (time.perf_counter() - start) / 5
        rows.append([
            base_rows,
            f"{incremental_time * 1000:.2f} ms",
            f"{recompute_time * 1000:.2f} ms",
            f"{recompute_time / incremental_time:.1f}×",
        ])
    mapping = _copy_mapping("repx")
    benchmark(exchange, mapping, _base(100))
    print_table(
        "E5: incremental vs recompute maintenance per source change "
        "(expected: gap widens with base size)",
        ["base rows", "incremental", "recompute", "speedup"],
        rows,
    )


# ----------------------------------------------------------------------
# standalone run -> BENCH_runtime_services.json (see benchmarks/harness.py)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    from harness import run_standalone

    return run_standalone("runtime_services", [test_runtime_report], argv)


if __name__ == "__main__":
    raise SystemExit(main())
