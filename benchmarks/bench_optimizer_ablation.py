"""E8 (extension) — §4: "generating efficient transformations … is
likely to expose a wealth of optimization opportunities".

Ablation of the algebra optimizer on the transformations the engine
actually generates: evaluate the Figure 3 query view and unfolded
target queries with and without optimization, and measure the
rewriting's effect on expression size and evaluation time.  Expected
shape: selective queries benefit most (selections pushed below unions
and projections shrink intermediate results); full scans benefit
little.
"""

import pytest

from repro.algebra import Col, Scan, Select, eq, evaluate, optimize, project_names
from repro.operators.compose import unfold_scans
from repro.operators.transgen import transgen
from repro.workloads import paper

from bench_fig2_constraints import _scaled_instances
from conftest import print_table


def _unoptimized_views():
    """TransGen output with the optimizer pass undone — rebuilt by
    re-running generation and skipping optimize (the rules are
    optimized at construction, so we re-derive the raw unfolded
    query instead)."""
    return transgen(paper.figure2_mapping())


def _selective_query():
    return Select(
        project_names(Scan("Person"), ["Id", "Name"]), eq(Col("Id"), 7)
    )


@pytest.mark.parametrize("optimized", [False, True],
                         ids=["raw", "optimized"])
def test_unfolded_selective_query(benchmark, optimized):
    views = transgen(paper.figure2_mapping())
    definitions = dict(views.query_view.rules)
    unfolded = unfold_scans(_selective_query(), definitions)
    if optimized:
        unfolded = optimize(unfolded)
    sql, _ = _scaled_instances(270)

    rows = benchmark(evaluate, unfolded, sql)
    assert len(rows) == 1


@pytest.mark.parametrize("optimized", [False, True],
                         ids=["raw", "optimized"])
def test_full_extent_query(benchmark, optimized):
    views = transgen(paper.figure2_mapping())
    definitions = dict(views.query_view.rules)
    unfolded = unfold_scans(project_names(Scan("Person"), ["Id"]),
                            definitions)
    if optimized:
        unfolded = optimize(unfolded)
    sql, _ = _scaled_instances(270)

    rows = benchmark(evaluate, unfolded, sql)
    assert len(rows) == 270


def test_optimizer_report(benchmark):
    import time

    views = transgen(paper.figure2_mapping())
    definitions = dict(views.query_view.rules)
    sql, _ = _scaled_instances(270)
    rows = []
    for label, query in (
        ("σ[Id=7] π[Id,Name](Person)", _selective_query()),
        ("π[Id](Person)", project_names(Scan("Person"), ["Id"])),
    ):
        raw = unfold_scans(query, definitions)
        opt = optimize(raw)

        def timed(expr):
            start = time.perf_counter()
            for _ in range(20):
                evaluate(expr, sql)
            return (time.perf_counter() - start) / 20 * 1000

        rows.append([
            label, raw.size(), opt.size(),
            f"{timed(raw):.2f} ms", f"{timed(opt):.2f} ms",
        ])
    benchmark(optimize, unfold_scans(_selective_query(), definitions))
    print_table(
        "E8: optimizer ablation on unfolded Figure 2/3 queries "
        "(270 persons)",
        ["target query", "raw nodes", "optimized nodes",
         "raw eval", "optimized eval"],
        rows,
    )


# ----------------------------------------------------------------------
# standalone run -> BENCH_optimizer_ablation.json (harness.py).  The
# plain "optimizer" name belongs to bench_optimizer.py, the cost-based
# join-ordering suite wired into the regression watchdog.
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    from harness import run_standalone

    return run_standalone(
        "optimizer_ablation", [test_optimizer_report], argv
    )


if __name__ == "__main__":
    raise SystemExit(main())
