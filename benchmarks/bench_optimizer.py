"""Cost-based join ordering + adaptive re-optimization (ISSUE 8).

Two suites, both over mapping-runtime-shaped join pipelines:

* **join-order** — skewed and uniform chain/star workloads executed
  with the heuristic plans (``COST.enabled = False``, the written join
  order) and with the cost-based optimizer.  On the skewed workloads
  the written order materializes a fat many-many intermediate that the
  statistics clearly predict, so the cost-based order must win ≥2×
  (enforced as an absolute *floor* in BENCH_optimizer.json — see
  ``Harness.floor``); on the uniform workloads every order is fine and
  the cost-based plan must stay within noise.
* **reopt** — a workload whose *value* skew hides from the
  distinct-count estimator: the optimizer's first plan builds a
  360k-row intermediate it estimated at ~2.4k.  The first execution is
  flagged by the estimate↔actual divergence telemetry, the adaptive
  plan cache re-optimizes with actuals-corrected cardinalities, and
  the second execution must be measurably faster (floored at 2×).

Every workload is also run through the differential oracle: the
heuristic and cost-based trees must produce identical row multisets on
all three engines (interpreted is the semantic reference).
"""

import time

from repro.algebra import clear_plan_cache, evaluate
from repro.algebra import expressions as E
from repro.algebra.optimizer import COST
from repro.algebra.plan_cache import GLOBAL_VECTOR_PLAN_CACHE
from repro.instances import Instance

from conftest import print_table

#: Divisor applied to workload sizes in --smoke mode (and always for
#: the interpreted-engine oracle, which walks every row).
SMOKE_DIVISOR = 8
_SMOKE = False

# Acceptance bars (BENCH floors / in-run asserts).
SKEWED_MIN_SPEEDUP = 2.0
REOPT_MIN_SPEEDUP = 2.0
#: Uniform workloads must not regress beyond noise.
UNIFORM_NOISE_FLOOR = 0.5

ENGINES = ("interpreted", "compiled", "vectorized")


def _scale(n: int) -> int:
    return max(8, n // SMOKE_DIVISOR) if _SMOKE else n


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
def _skewed_chain(divisor: int = 1) -> tuple[Instance, E.RelExpr]:
    """A ⋈j B is many-many (60×60 per key); A ⋈k C is selective.
    Written order joins the fat pair first."""
    n = _scale(3000) // divisor
    keys = max(n // 60, 1)
    db = Instance()
    db.insert_all("A", [{"j": i % keys, "k": i, "va": i} for i in range(n)])
    db.insert_all("B", [{"j": i % keys, "vb": i} for i in range(n)])
    db.insert_all("C", [{"k": i * 97 % n, "vc": i} for i in range(max(n // 100, 3))])
    query = E.Join(
        E.Join(E.Scan("A"), E.Scan("B"), E._JoinEq("j", "j")),
        E.Scan("C"),
        E._JoinEq("k", "k"),
    )
    return db, query


def _uniform_chain(divisor: int = 1) -> tuple[Instance, E.RelExpr]:
    """Same shape, unique join keys everywhere: any order is fine."""
    n = _scale(3000) // divisor
    db = Instance()
    db.insert_all("A", [{"j": i, "k": i, "va": i} for i in range(n)])
    db.insert_all("B", [{"j": i, "vb": i} for i in range(n)])
    db.insert_all("C", [{"k": i * 97 % n, "vc": i} for i in range(max(n // 100, 3))])
    query = E.Join(
        E.Join(E.Scan("A"), E.Scan("B"), E._JoinEq("j", "j")),
        E.Scan("C"),
        E._JoinEq("k", "k"),
    )
    return db, query


def _skewed_star(divisor: int = 1) -> tuple[Instance, E.RelExpr]:
    """Fact ⋈ fat dimension first (written order) vs the selective
    dimension first (what the estimates prefer)."""
    n = _scale(3000) // divisor
    keys = max(n // 60, 1)
    db = Instance()
    db.insert_all(
        "F", [{"k1": i % keys, "k2": i, "k3": i, "vf": i} for i in range(n)]
    )
    db.insert_all("D1", [{"k1": i % keys, "p1": i} for i in range(n)])
    db.insert_all("D2", [{"k2": i, "p2": i} for i in range(n)])
    db.insert_all(
        "DS", [{"k3": i * 113 % n, "p3": i} for i in range(max(n // 120, 3))]
    )
    query = E.Join(
        E.Join(
            E.Join(E.Scan("F"), E.Scan("D1"), E._JoinEq("k1", "k1")),
            E.Scan("D2"),
            E._JoinEq("k2", "k2"),
        ),
        E.Scan("DS"),
        E._JoinEq("k3", "k3"),
    )
    return db, query


def _uniform_star(divisor: int = 1) -> tuple[Instance, E.RelExpr]:
    n = _scale(3000) // divisor
    db = Instance()
    db.insert_all(
        "F", [{"k1": i, "k2": i, "k3": i, "vf": i} for i in range(n)]
    )
    db.insert_all("D1", [{"k1": i, "p1": i} for i in range(n)])
    db.insert_all("D2", [{"k2": i, "p2": i} for i in range(n)])
    db.insert_all(
        "DS", [{"k3": i * 113 % n, "p3": i} for i in range(max(n // 120, 3))]
    )
    query = E.Join(
        E.Join(
            E.Join(E.Scan("F"), E.Scan("D1"), E._JoinEq("k1", "k1")),
            E.Scan("D2"),
            E._JoinEq("k2", "k2"),
        ),
        E.Scan("DS"),
        E._JoinEq("k3", "k3"),
    )
    return db, query


WORKLOADS = [
    ("skewed-chain", _skewed_chain, True),
    ("skewed-star", _skewed_star, True),
    ("uniform-chain", _uniform_chain, False),
    ("uniform-star", _uniform_star, False),
]


def _reopt_workload() -> tuple[Instance, E.RelExpr]:
    """Value skew the distinct-count estimator cannot see: A ⋈j B has
    one value on half the rows (est ~2.4k, actual ~360k), while A ⋈k C
    *looks* expensive (few distincts on both sides) but is selective.
    The optimizer's first plan is the trap; only runtime actuals fix
    the order."""
    n = _scale(1200)
    half = n // 2
    db = Instance()
    rows_a = []
    for i in range(n):
        if i < half:
            rows_a.append({"j": 0, "k": 1 + i % 9, "va": i})
        else:
            # unique j; a tenth of these rows carry the overlap key 0
            k = 0 if i < half + max(n // 10, 1) else 1 + i % 9
            rows_a.append({"j": i, "k": k, "va": i})
    db.insert_all("A", rows_a)
    db.insert_all(
        "B", [{"j": 0 if i < half else i, "vb": i} for i in range(n)]
    )
    nc = max(n // 5, 8)
    db.insert_all(
        "C",
        [{"k": 0 if i < max(nc // 40, 2) else 1001 + i % 7, "vc": i}
         for i in range(nc)],
    )
    query = E.Join(
        E.Join(E.Scan("A"), E.Scan("B"), E._JoinEq("j", "j")),
        E.Scan("C"),
        E._JoinEq("k", "k"),
    )
    return db, query


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _canon(rows):
    return sorted(
        tuple(sorted((k, repr(v)) for k, v in row.items())) for row in rows
    )


def _timed_eval(expr, db, enabled: bool, repeats: int = 3) -> float:
    """Best-of warm wall ms on the vectorized engine with the
    cost-based phase toggled."""
    COST.enabled = enabled
    clear_plan_cache()
    evaluate(expr, db, engine="vectorized")  # warm: optimize + compile
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        evaluate(expr, db, engine="vectorized")
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def _floor(benchmark, key: str, value: float) -> None:
    harness = getattr(benchmark, "_harness", None)
    if harness is not None and hasattr(harness, "floor"):
        harness.floor(key, value)


# ----------------------------------------------------------------------
# report: heuristic vs cost-based join order
# ----------------------------------------------------------------------
def test_join_order_report(benchmark):
    rows = []
    try:
        for name, build, skewed in WORKLOADS:
            db, query = build()
            heuristic_ms = _timed_eval(query, db, enabled=False)
            cost_ms = _timed_eval(query, db, enabled=True)
            speedup = heuristic_ms / max(cost_ms, 1e-9)
            rows.append([
                name,
                f"{heuristic_ms:.1f} ms",
                f"{cost_ms:.1f} ms",
                f"{speedup:.1f}x",
            ])
            # Smoke sizes are planning-dominated; the timing bars only
            # mean something at full scale.
            if skewed:
                assert _SMOKE or speedup >= SKEWED_MIN_SPEEDUP, (
                    f"{name}: cost-based plan only {speedup:.2f}x over "
                    f"the written order (bar {SKEWED_MIN_SPEEDUP}x)"
                )
                _floor(benchmark, f"{name}/speedup", SKEWED_MIN_SPEEDUP)
            else:
                assert _SMOKE or speedup >= UNIFORM_NOISE_FLOOR, (
                    f"{name}: cost-based planning regressed the uniform "
                    f"workload to {speedup:.2f}x"
                )
    finally:
        COST.enabled = True
        clear_plan_cache()
    print_table(
        "join order: written (heuristic) vs cost-based plans "
        "(vectorized, warm)",
        ["workload", "heuristic", "cost-based", "speedup"],
        rows,
    )


# ----------------------------------------------------------------------
# report: differential oracle
# ----------------------------------------------------------------------
def test_differential_oracle_report(benchmark):
    """Heuristic and cost-based trees produce identical row multisets
    on all three engines (reduced sizes — the interpreter is the
    bottleneck, and plan *choice* is size-independent here)."""
    rows = []
    try:
        for name, build, _skewed in WORKLOADS:
            db, query = build(divisor=SMOKE_DIVISOR)
            results = {}
            for enabled in (False, True):
                COST.enabled = enabled
                clear_plan_cache()
                for engine in ENGINES:
                    results[(enabled, engine)] = _canon(
                        evaluate(query, db, engine=engine)
                    )
            reference = results[(False, "interpreted")]
            assert all(
                result == reference for result in results.values()
            ), f"{name}: engine/optimizer results diverge"
            rows.append([name, str(len(reference)), "ok"])
    finally:
        COST.enabled = True
        clear_plan_cache()
    print_table(
        "differential oracle: heuristic ≡ cost-based × 3 engines",
        ["workload", "rows", "verdict"],
        rows,
    )


# ----------------------------------------------------------------------
# report: adaptive re-optimization
# ----------------------------------------------------------------------
def test_reopt_report(benchmark):
    """The feedback loop end to end: mis-planned first execution →
    divergence flagged → cached plan evicted (reason=reopt) →
    re-planned with actuals → second execution measurably faster."""
    db, query = _reopt_workload()
    COST.enabled = True
    clear_plan_cache()
    walls = []
    canons = []
    for _ in range(4):
        start = time.perf_counter()
        result = evaluate(query, db, engine="vectorized")
        walls.append((time.perf_counter() - start) * 1000.0)
        canons.append(_canon(result))
    assert all(c == canons[0] for c in canons), (
        "re-optimized plan changed the result"
    )
    stats = GLOBAL_VECTOR_PLAN_CACHE.stats()
    assert stats["reopts"] >= 1, "divergence never scheduled a re-opt"
    assert stats["evictions_by_reason"]["reopt"] >= 1
    speedup = walls[0] / max(walls[1], 1e-9)
    assert _SMOKE or speedup >= REOPT_MIN_SPEEDUP, (
        f"re-optimized execution only {speedup:.2f}x faster "
        f"(bar {REOPT_MIN_SPEEDUP}x)"
    )
    _floor(benchmark, "reopt/speedup", REOPT_MIN_SPEEDUP)
    rows = [
        ["first (mis-planned)", f"{walls[0]:.1f} ms", ""],
        ["second (re-planned)", f"{walls[1]:.1f} ms", f"{speedup:.1f}x"],
        ["third (converged)", f"{walls[2]:.1f} ms", ""],
        ["fourth (cache hit)", f"{walls[3]:.1f} ms", ""],
    ]
    print_table(
        f"adaptive re-optimization ({stats['reopts']} re-opt(s), "
        f"rows={len(canons[0])})",
        ["execution", "wall", "speedup"],
        rows,
    )
    clear_plan_cache()


# ----------------------------------------------------------------------
# standalone run -> BENCH_optimizer.json (see benchmarks/harness.py)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    import sys

    from harness import run_standalone

    global _SMOKE
    args = list(sys.argv[1:] if argv is None else argv)
    _SMOKE = "--smoke" in args
    return run_standalone(
        "optimizer",
        [
            test_join_order_report,
            test_differential_oracle_report,
            test_reopt_report,
        ],
        args,
    )


if __name__ == "__main__":
    raise SystemExit(main())
