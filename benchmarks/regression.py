"""Benchmark regression watchdog: diff fresh BENCH_*.json runs against
the committed baselines.

Two modes::

    python benchmarks/regression.py diff --fresh-dir DIR [--json] [-v]
    python benchmarks/regression.py check [--suites query,updates,...]
                                          [--smoke] [--report-only]

``diff`` compares already-emitted files in ``--fresh-dir`` against the
committed baselines at the repo root.  ``check`` re-runs the selected
benchmark suites into a temporary directory first, then diffs — this
is what ``make bench-check`` (and CI, in ``--report-only`` mode) runs.

Thresholds and format handling live in
:mod:`repro.observability.benchdiff` — generous relative bounds tuned
to catch step-change regressions, not machine jitter; smoke runs diff
cleanly against full baselines because only the key intersection is
judged.  Exit status is 1 when any regression is found (0 always with
``--report-only``).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.observability.benchdiff import diff_dirs  # noqa: E402

#: suite name → (bench script, emitted file name)
SUITES = {
    "query": ("bench_query_executor.py", "BENCH_query.json"),
    "updates": ("bench_incremental_exchange.py", "BENCH_updates.json"),
    "observability": ("bench_observability.py", "BENCH_observability.json"),
    "chase": ("bench_chase_scaling.py", "BENCH_chase.json"),
    "optimizer": ("bench_optimizer.py", "BENCH_optimizer.json"),
    "shard": ("bench_sharded_chase.py", "BENCH_shard.json"),
}

#: ``check``'s default suites; ``chase`` is opt-in (it re-runs the
#: naive baseline engine at every size, which dominates the runtime).
DEFAULT_SUITES = ("query", "updates", "observability", "optimizer",
                  "shard")


def _report(reports, as_json: bool, verbose: bool) -> int:
    regressions = sum(len(r.regressions) for r in reports)
    if as_json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    else:
        if not reports:
            print("no BENCH_*.json pairs to compare")
        for report in reports:
            print(report.render(verbose=verbose))
        print(
            f"bench-diff: {sum(r.compared for r in reports)} metric(s) "
            f"across {len(reports)} file(s), {regressions} regression(s)"
        )
    return 1 if regressions else 0


def cmd_diff(args) -> int:
    names = None
    if args.suites:
        names = [SUITES[s][1] for s in args.suites.split(",")]
    reports = diff_dirs(args.baseline_dir, args.fresh_dir, names=names)
    return _report(reports, args.json, args.verbose)


def cmd_check(args) -> int:
    suites = (
        args.suites.split(",") if args.suites else list(DEFAULT_SUITES)
    )
    unknown = [s for s in suites if s not in SUITES]
    if unknown:
        print(f"unknown suite(s): {', '.join(unknown)} "
              f"(known: {', '.join(SUITES)})", file=sys.stderr)
        return 2
    with tempfile.TemporaryDirectory(prefix="bench-check-") as tmp:
        fresh_dir = Path(tmp)
        for suite in suites:
            script, out_name = SUITES[suite]
            command = [
                sys.executable,
                str(REPO_ROOT / "benchmarks" / script),
                "--out", str(fresh_dir / out_name),
            ]
            if args.smoke:
                command.append("--smoke")
            print(f"== running {suite}: {script}"
                  + (" --smoke" if args.smoke else ""))
            proc = subprocess.run(command, cwd=REPO_ROOT)
            if proc.returncode != 0:
                print(f"suite {suite} failed (exit {proc.returncode})",
                      file=sys.stderr)
                if not args.report_only:
                    return proc.returncode
                # report-only surfaces the failure and diffs whatever
                # the suite managed to write (possibly nothing)
        names = [SUITES[s][1] for s in suites]
        reports = diff_dirs(args.baseline_dir, fresh_dir, names=names)
        status = _report(reports, args.json, args.verbose)
    if args.report_only and status == 1:
        print("bench-check: regressions reported only (--report-only)")
        return 0
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="benchmark regression watchdog"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("diff", help="diff emitted files against baselines")
    p.add_argument("--fresh-dir", required=True,
                   help="directory holding freshly emitted BENCH_*.json")
    p.add_argument("--baseline-dir", default=str(REPO_ROOT),
                   help="committed baselines (default: repo root)")
    p.add_argument("--suites", help="comma-separated suite subset "
                   f"(known: {', '.join(SUITES)})")
    p.add_argument("--json", action="store_true",
                   help="machine-readable findings")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="also list unchanged metrics")
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser("check",
                       help="re-run suites into a temp dir, then diff")
    p.add_argument("--suites", help="comma-separated suites "
                   f"(default: {','.join(DEFAULT_SUITES)})")
    p.add_argument("--baseline-dir", default=str(REPO_ROOT))
    p.add_argument("--smoke", action="store_true",
                   help="run suites in smoke mode (smallest size only)")
    p.add_argument("--report-only", action="store_true",
                   help="print regressions but exit 0 (CI advisory mode)")
    p.add_argument("--json", action="store_true")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=cmd_check)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
