"""F5 — Figure 5: the schema-evolution scenario as an operator script.

S evolves to S′ while a view V and a database D depend on it.  The
script migrates D through mapS-S′ and re-targets V by composition —
the paper's Section 6.1 walk-through.  The benchmark measures the whole
script and its parts as the database grows, plus the Diff/Merge
variant of Sections 6.2–6.3.
"""

import pytest

from repro.core.scripts import evolve_view_script, migrate_script
from repro.instances import Instance
from repro.mappings import Mapping
from repro.metamodel import Attribute, STRING
from repro.workloads import paper

from conftest import print_table


def _scaled_s_instance(students: int) -> Instance:
    db = Instance(paper.figure6_s_schema())
    for i in range(students):
        db.add("Names", SID=i, Name=f"S{i}")
        country = "US" if i % 3 else f"C{i % 7}"
        db.add("Addresses", SID=i, Address=f"{i} Elm", Country=country)
    return db


def test_migration_script_paper_data(benchmark):
    result = benchmark(
        migrate_script,
        paper.figure6_map_v_s(),
        paper.figure6_map_s_sprime(),
        paper.figure6_s_instance(),
    )
    assert result.artifacts["database"].cardinality("Local") == 2


@pytest.mark.parametrize("students", [50, 150, 450])
def test_migration_scaling(benchmark, students):
    database = _scaled_s_instance(students)

    result = benchmark(
        migrate_script,
        paper.figure6_map_v_s(),
        paper.figure6_map_s_sprime(),
        database,
    )
    migrated = result.artifacts["database"]
    assert (
        migrated.cardinality("Local") + migrated.cardinality("Foreign")
        == students
    )


def test_evolve_view_script(benchmark):
    s_prime = paper.figure6_s_prime_schema()
    s_prime.entity("Foreign").add_attribute(
        Attribute("Visa", STRING, nullable=True)
    )
    mapping = Mapping(
        paper.figure6_s_schema(), s_prime,
        paper.figure6_map_s_sprime().constraints, name="mapS-Sprime",
    )

    result = benchmark(
        evolve_view_script,
        paper.figure6_view_schema(), paper.figure6_map_v_s(), mapping,
    )
    assert "Foreign.Visa" in result.artifacts["diff"].participating


def test_figure5_report(benchmark):
    result = benchmark(
        migrate_script,
        paper.figure6_map_v_s(),
        paper.figure6_map_s_sprime(),
        paper.figure6_s_instance(),
    )
    migrated = result.artifacts["database"]
    composed = result.artifacts["mapping"]
    print_table(
        "F5: the Figure 5 evolution script",
        ["step", "outcome"],
        [
            ["migrate D → D′", f"{migrated.total_rows()} rows in S′"],
            ["compose mapV-S ∘ mapS-S′",
             f"{composed.constraint_count()} constraint(s), "
             f"language={composed.language.value}"],
        ],
    )


# ----------------------------------------------------------------------
# standalone run -> BENCH_fig5_evolution.json (see benchmarks/harness.py)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    from harness import run_standalone

    return run_standalone("fig5_evolution", [test_figure5_report], argv)


if __name__ == "__main__":
    raise SystemExit(main())
