"""F3 — Figure 3: generating and running the query that populates the
Persons entity set.

The paper shows the "rather complex hard-to-understand query" implied
by Figure 2's constraints.  This benchmark measures (a) TransGen
deriving the query view + update view from the constraints, (b)
evaluating the query view (the Figure 3 execution), and (c) the
roundtrip verification the paper demands of lossless views — and
prints the size of the generated view, the analogue of the figure's
visual bulk.
"""

import pytest

from repro.algebra import to_sql
from repro.operators import transgen
from repro.workloads import paper

from bench_fig2_constraints import _scaled_instances
from conftest import print_table


def test_transgen_generation(benchmark):
    mapping = paper.figure2_mapping()

    views = benchmark(transgen, mapping)
    assert views.query_view.rules[0][0] == "Person"


def test_query_view_evaluation_paper_data(benchmark):
    views = transgen(paper.figure2_mapping())
    sql = paper.figure2_sql_instance()

    produced = benchmark(views.query_view.apply, sql)
    assert produced.set_equal(paper.figure2_er_instance())


@pytest.mark.parametrize("people", [30, 90, 270])
def test_query_view_scaling(benchmark, people):
    views = transgen(paper.figure2_mapping())
    sql, er = _scaled_instances(people)

    produced = benchmark(views.query_view.apply, sql)
    assert produced.set_equal(er)


def test_roundtrip_verification(benchmark):
    views = transgen(paper.figure2_mapping())
    er = paper.figure2_er_instance()

    benchmark(views.verify_roundtrip, er)


def test_figure3_report(benchmark):
    views = benchmark(transgen, paper.figure2_mapping())
    _, expr = views.query_view.rules[0]
    sql_text = to_sql(expr)
    print_table(
        "F3: the generated Figure 3 query view",
        ["metric", "value"],
        [
            ["algebra operator nodes", expr.size()],
            ["algebra tree depth", expr.depth()],
            ["rendered SQL characters", len(sql_text)],
            ["rendered SQL lines", sql_text.count("\n") + 1],
            ["update-view rules", len(views.update_view.rules)],
            ["roundtrips on paper data", "yes"],
        ],
    )


# ----------------------------------------------------------------------
# standalone run -> BENCH_fig3_transgen.json (see benchmarks/harness.py)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    from harness import run_standalone

    return run_standalone("fig3_transgen", [test_figure3_report], argv)


if __name__ == "__main__":
    raise SystemExit(main())
